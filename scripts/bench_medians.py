#!/usr/bin/env python
"""Reduce a pytest-benchmark JSON report to per-test medians.

CI uploads the result as a ``BENCH_*`` workflow artifact so the benchmark
trajectory can be compared across commits without storing full reports.

With ``--traffic OUT.json`` an additional summary artifact is written for
the prepared-query traffic experiment (E10): the prepared vs ad-hoc
medians, the resulting amortization speedup, and the per-path request
throughput — the numbers the ISSUE's >=3x acceptance gate is about.

When the report contains the E11 join-kernel benchmarks, the medians
summary additionally grows a ``kernels`` section pairing each workload's
compiled and interpreted medians with their speedup and the portfolio's
>=2x gate verdict.  When it also contains the columnar-kernel benchmarks,
a ``columnar`` section pairs each workload's columnar and tuple-kernel
medians and reports the wide/deep transitive-closure >=3x gate verdict.

When the report contains the E13 server benchmarks, the summary grows a
``server`` section: the durable-subprocess vs in-process execute round-trip
pair with its overhead ratio and 3x gate verdict, the mixed 90/10 cycle,
and the multi-process load driver's percentiles and throughput.

When the report contains the E15 parallel-fixpoint benchmarks, the
summary grows a ``parallel`` section: per-workload medians at each worker
count, the serial-over-N speedup curves, and the portfolio's 2-worker
ratio against the >=1.4x acceptance gate (informational on single-core
runners, where the gate test skips).

Usage: python scripts/bench_medians.py <pytest-benchmark.json> <out.json>
           [--traffic <traffic-out.json>]
"""

from __future__ import annotations

import argparse
import json
import sys

TRAFFIC_PREPARED = "test_prepared_magic_fresh_constant"
TRAFFIC_ADHOC = "test_adhoc_magic_fresh_constant"
TRAFFIC_EXTRAS = (
    "test_prepared_execute_many_window",
    "test_service_cached_traffic",
)

KERNEL_COMPILED_PREFIX = "test_compiled_kernels["
KERNEL_INTERPRETED_PREFIX = "test_interpreted_match_body["
KERNEL_COLUMNAR_PREFIX = "test_columnar_kernels["
COLUMNAR_GATE_LABELS = ("wide_tc", "deep_tc")

SERVER_ROUNDTRIP = "test_server_execute_roundtrip"
SERVER_INPROCESS = "test_inprocess_execute_roundtrip"
SERVER_MIXED = "test_server_mixed_traffic_cycle"
SERVER_LOAD = "test_server_load_bench"

GRAPH_WORKLOAD_PREFIX = "test_graph_workload["
GRAPH_GATE_COMPILED_PREFIX = "test_graph_workload_gate_compiled["
GRAPH_GATE_INTERPRETED_PREFIX = "test_graph_workload_interpreted["
GRAPH_COLUMNAR_PREFIX = "test_graph_workload_columnar["

PARALLEL_PREFIX = "test_parallel_fixpoint["

INCREMENTAL_MAINTAIN_PREFIX = "test_incremental_maintenance["
INCREMENTAL_RECOMPUTE_PREFIX = "test_full_recompute["
INCREMENTAL_SERVICE = (
    "test_service_mixed_rw_incremental",
    "test_service_mixed_rw_recompute",
)


def medians(report: dict) -> dict:
    """Map each benchmark's name to its median (seconds) and cost-model extras."""
    summary = {}
    for bench in report.get("benchmarks", ()):
        summary[bench["name"]] = {
            "median_seconds": bench["stats"]["median"],
            "rounds": bench["stats"]["rounds"],
            "extra_info": bench.get("extra_info", {}),
        }
    return summary


def traffic_summary(median_map: dict) -> dict:
    """The E10 traffic shape: amortization speedup and request throughput."""
    summary: dict = {"benchmarks": {}}
    for name, entry in median_map.items():
        if name in (TRAFFIC_PREPARED, TRAFFIC_ADHOC) or name in TRAFFIC_EXTRAS:
            seconds = entry["median_seconds"]
            summary["benchmarks"][name] = {
                "median_seconds": seconds,
                "requests_per_second": (1.0 / seconds) if seconds else None,
                "extra_info": entry["extra_info"],
            }
    prepared = median_map.get(TRAFFIC_PREPARED)
    adhoc = median_map.get(TRAFFIC_ADHOC)
    if prepared and adhoc and prepared["median_seconds"]:
        speedup = adhoc["median_seconds"] / prepared["median_seconds"]
        summary["prepared_vs_adhoc_speedup"] = speedup
        summary["meets_3x_gate"] = speedup >= 3.0
    window = median_map.get(TRAFFIC_EXTRAS[0])
    if window:
        size = window["extra_info"].get("window_size")
        if size:
            summary["execute_many_seconds_per_binding"] = (
                window["median_seconds"] / size
            )
    return summary


def kernels_summary(median_map: dict) -> dict:
    """The E11 shape: per-workload compiled-vs-interpreted kernel speedups.

    Pairs ``test_compiled_kernels[w]`` with ``test_interpreted_match_body[w]``
    and reports the per-workload and portfolio ratios the ISSUE's >=2x
    acceptance gate is about.  Empty when the report has no E11 benchmarks.
    """
    workloads: dict = {}
    for name, entry in median_map.items():
        if name.startswith(KERNEL_COMPILED_PREFIX) and name.endswith("]"):
            label = name[len(KERNEL_COMPILED_PREFIX) : -1]
            workloads.setdefault(label, {})["compiled_seconds"] = entry["median_seconds"]
        elif name.startswith(KERNEL_INTERPRETED_PREFIX) and name.endswith("]"):
            label = name[len(KERNEL_INTERPRETED_PREFIX) : -1]
            workloads.setdefault(label, {})["interpreted_seconds"] = entry["median_seconds"]
    summary: dict = {"workloads": workloads}
    compiled_total = interpreted_total = 0.0
    for label, entry in workloads.items():
        compiled = entry.get("compiled_seconds")
        interpreted = entry.get("interpreted_seconds")
        if compiled and interpreted:
            entry["speedup"] = interpreted / compiled
            compiled_total += compiled
            interpreted_total += interpreted
    if compiled_total:
        summary["portfolio_speedup"] = interpreted_total / compiled_total
        summary["meets_2x_gate"] = summary["portfolio_speedup"] >= 2.0
    return summary


def columnar_summary(median_map: dict) -> dict:
    """The PR 7 shape: columnar batch kernels vs the compiled tuple kernels.

    Pairs ``test_columnar_kernels[w]`` with ``test_compiled_kernels[w]``
    per workload, and reports the wide/deep transitive-closure pair's
    ratio against the ISSUE's >=3x acceptance gate.  Empty when the report
    has no columnar benchmarks.
    """
    workloads: dict = {}
    for name, entry in median_map.items():
        if name.startswith(KERNEL_COLUMNAR_PREFIX) and name.endswith("]"):
            label = name[len(KERNEL_COLUMNAR_PREFIX) : -1]
            workloads.setdefault(label, {})["columnar_seconds"] = entry["median_seconds"]
        elif name.startswith(KERNEL_COMPILED_PREFIX) and name.endswith("]"):
            label = name[len(KERNEL_COMPILED_PREFIX) : -1]
            workloads.setdefault(label, {})["tuple_seconds"] = entry["median_seconds"]
    workloads = {
        label: entry for label, entry in workloads.items() if "columnar_seconds" in entry
    }
    summary: dict = {"workloads": workloads}
    gate_columnar = gate_tuple = 0.0
    for label, entry in workloads.items():
        columnar = entry.get("columnar_seconds")
        tuple_side = entry.get("tuple_seconds")
        if columnar and tuple_side:
            entry["speedup"] = tuple_side / columnar
            if label in COLUMNAR_GATE_LABELS:
                gate_columnar += columnar
                gate_tuple += tuple_side
    if gate_columnar:
        summary["wide_deep_tc_speedup"] = gate_tuple / gate_columnar
        summary["meets_3x_gate"] = summary["wide_deep_tc_speedup"] >= 3.0
    return summary


def graph_summary(median_map: dict) -> dict:
    """The E14 shape: graph-analytics medians and the kernel gate.

    Lifts the timed portfolio (``test_graph_workload[w]``) with its
    cost-model extras, pairs the gate instances' compiled and interpreted
    medians, mirrors the columnar lanes, and reports the >=2x gate the
    ISSUE's acceptance criterion is about.  Empty when the report has no
    E14 benchmarks.
    """
    workloads: dict = {}
    for name, entry in median_map.items():
        if name.startswith(GRAPH_WORKLOAD_PREFIX) and name.endswith("]"):
            label = name[len(GRAPH_WORKLOAD_PREFIX) : -1]
            workloads[label] = {
                "median_seconds": entry["median_seconds"],
                "extra_info": entry["extra_info"],
            }
    gates: dict = {}
    for name, entry in median_map.items():
        if name.startswith(GRAPH_GATE_COMPILED_PREFIX) and name.endswith("]"):
            label = name[len(GRAPH_GATE_COMPILED_PREFIX) : -1]
            gates.setdefault(label, {})["compiled_seconds"] = entry["median_seconds"]
        elif name.startswith(GRAPH_GATE_INTERPRETED_PREFIX) and name.endswith("]"):
            label = name[len(GRAPH_GATE_INTERPRETED_PREFIX) : -1]
            gates.setdefault(label, {})["interpreted_seconds"] = entry["median_seconds"]
    summary: dict = {"workloads": workloads, "gate_workloads": gates}
    compiled_total = interpreted_total = 0.0
    for label, entry in gates.items():
        compiled = entry.get("compiled_seconds")
        interpreted = entry.get("interpreted_seconds")
        if compiled and interpreted:
            entry["speedup"] = interpreted / compiled
            compiled_total += compiled
            interpreted_total += interpreted
    if compiled_total:
        summary["gate_speedup"] = interpreted_total / compiled_total
        summary["meets_2x_gate"] = summary["gate_speedup"] >= 2.0
    columnar: dict = {}
    for name, entry in median_map.items():
        if name.startswith(GRAPH_COLUMNAR_PREFIX) and name.endswith("]"):
            label = name[len(GRAPH_COLUMNAR_PREFIX) : -1]
            columnar[label] = {"columnar_seconds": entry["median_seconds"]}
            timed = workloads.get(label)
            if timed and timed["median_seconds"]:
                columnar[label]["speedup"] = (
                    timed["median_seconds"] / entry["median_seconds"]
                )
    if columnar:
        summary["columnar_workloads"] = columnar
    return summary


def parallel_summary(median_map: dict) -> dict:
    """The E15 shape: sharded-fixpoint speedup curves per workload.

    Groups ``test_parallel_fixpoint[...]`` medians by workload and worker
    count (the count is recorded in ``extra_info``), derives each
    workload's serial-over-N speedup, and reports the portfolio's
    2-worker ratio against the ISSUE's >=1.4x acceptance gate.  On
    single-core runners the timed pairs still appear but the ratio is
    expected below 1 (two processes time-slicing one core); the gate
    test itself skips there, so the verdict here is informational.
    Empty when the report has no E15 benchmarks.
    """
    workloads: dict = {}
    for name, entry in median_map.items():
        if not (name.startswith(PARALLEL_PREFIX) and name.endswith("]")):
            continue
        workers = entry["extra_info"].get("workers")
        if workers is None:
            continue
        tokens = name[len(PARALLEL_PREFIX) : -1].split("-")
        label = next((t for t in tokens if not t.isdigit()), tokens[0])
        workloads.setdefault(label, {})[f"w{workers}_seconds"] = entry[
            "median_seconds"
        ]
    summary: dict = {"workloads": workloads}
    serial_total = sharded_total = 0.0
    for label, entry in workloads.items():
        serial = entry.get("w1_seconds")
        if not serial:
            continue
        for key in sorted(entry):
            if key in ("w1_seconds",) or not key.endswith("_seconds"):
                continue
            entry[f"speedup_{key[:-8]}"] = serial / entry[key]
        sharded = entry.get("w2_seconds")
        if sharded:
            serial_total += serial
            sharded_total += sharded
    if sharded_total:
        summary["portfolio_2worker_speedup"] = serial_total / sharded_total
        summary["meets_1_4x_gate"] = summary["portfolio_2worker_speedup"] >= 1.4
    return summary


def incremental_summary(median_map: dict) -> dict:
    """The E12 shape: per-workload maintenance-vs-recompute speedups.

    Pairs ``test_incremental_maintenance[w]`` with ``test_full_recompute[w]``
    and reports the per-workload and portfolio ratios the ISSUE's >=5x
    acceptance gate is about, plus the mixed read/write service pair.
    Empty when the report has no E12 benchmarks.
    """
    workloads: dict = {}
    for name, entry in median_map.items():
        if name.startswith(INCREMENTAL_MAINTAIN_PREFIX) and name.endswith("]"):
            label = name[len(INCREMENTAL_MAINTAIN_PREFIX) : -1]
            workloads.setdefault(label, {})["maintained_seconds"] = entry["median_seconds"]
        elif name.startswith(INCREMENTAL_RECOMPUTE_PREFIX) and name.endswith("]"):
            label = name[len(INCREMENTAL_RECOMPUTE_PREFIX) : -1]
            workloads.setdefault(label, {})["recomputed_seconds"] = entry["median_seconds"]
    summary: dict = {"workloads": workloads}
    maintained_total = recomputed_total = 0.0
    for label, entry in workloads.items():
        maintained = entry.get("maintained_seconds")
        recomputed = entry.get("recomputed_seconds")
        if maintained and recomputed:
            entry["speedup"] = recomputed / maintained
            maintained_total += maintained
            recomputed_total += recomputed
    if maintained_total:
        summary["portfolio_speedup"] = recomputed_total / maintained_total
        summary["meets_5x_gate"] = summary["portfolio_speedup"] >= 5.0
    live, cold = (median_map.get(name) for name in INCREMENTAL_SERVICE)
    if live and cold and live["median_seconds"]:
        summary["service_mixed_rw"] = {
            "incremental_seconds": live["median_seconds"],
            "recompute_seconds": cold["median_seconds"],
            "speedup": cold["median_seconds"] / live["median_seconds"],
        }
    return summary


def server_summary(median_map: dict) -> dict:
    """The E13 shape: durable-server overhead and load-driver percentiles.

    Pairs the subprocess round-trip with its in-process comparable (the
    ISSUE's <=3x latency gate), and lifts the multi-process load report's
    percentiles/throughput out of ``extra_info``.  Empty when the report
    has no E13 benchmarks.
    """
    summary: dict = {}
    served = median_map.get(SERVER_ROUNDTRIP)
    inprocess = median_map.get(SERVER_INPROCESS)
    if served and inprocess and inprocess["median_seconds"]:
        ratio = served["median_seconds"] / inprocess["median_seconds"]
        summary["execute_roundtrip"] = {
            "server_seconds": served["median_seconds"],
            "inprocess_seconds": inprocess["median_seconds"],
            "overhead_ratio": ratio,
            "meets_3x_gate": ratio <= 3.0,
        }
    mixed = median_map.get(SERVER_MIXED)
    if mixed:
        summary["mixed_cycle"] = {
            "median_seconds": mixed["median_seconds"],
            "extra_info": mixed["extra_info"],
        }
    load = median_map.get(SERVER_LOAD)
    if load:
        summary["load"] = dict(load["extra_info"])
        summary["load"]["wall_seconds"] = load["median_seconds"]
    return summary


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("source", help="pytest-benchmark JSON report")
    parser.add_argument("destination", help="medians output JSON")
    parser.add_argument(
        "--traffic",
        metavar="OUT.json",
        help="also write the E10 prepared-traffic summary artifact",
    )
    arguments = parser.parse_args(argv)
    with open(arguments.source, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    median_map = medians(report)
    summary = {
        "machine_info": report.get("machine_info", {}),
        "datetime": report.get("datetime"),
        "commit_info": report.get("commit_info", {}),
        "medians": median_map,
    }
    kernels = kernels_summary(median_map)
    if kernels["workloads"]:
        summary["kernels"] = kernels
    columnar = columnar_summary(median_map)
    if columnar["workloads"]:
        summary["columnar"] = columnar
    incremental = incremental_summary(median_map)
    if incremental["workloads"]:
        summary["incremental"] = incremental
    graph = graph_summary(median_map)
    if graph["workloads"] or graph["gate_workloads"]:
        summary["graph"] = graph
    server = server_summary(median_map)
    if server:
        summary["server"] = server
    parallel = parallel_summary(median_map)
    if parallel["workloads"]:
        summary["parallel"] = parallel
    with open(arguments.destination, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
    print(f"wrote {len(median_map)} medians to {arguments.destination}")
    ratio = kernels.get("portfolio_speedup")
    if ratio is not None:
        print(f"kernel portfolio speedup {ratio:.1f}x (gate >=2x: {kernels['meets_2x_gate']})")
    ratio = columnar.get("wide_deep_tc_speedup")
    if ratio is not None:
        print(
            f"columnar wide/deep TC speedup {ratio:.1f}x "
            f"(gate >=3x: {columnar['meets_3x_gate']})"
        )
    ratio = graph.get("gate_speedup")
    if ratio is not None:
        print(
            f"graph-analytics kernel speedup {ratio:.1f}x "
            f"(gate >=2x: {graph['meets_2x_gate']})"
        )
    ratio = incremental.get("portfolio_speedup")
    if ratio is not None:
        print(
            f"incremental portfolio speedup {ratio:.1f}x "
            f"(gate >=5x: {incremental['meets_5x_gate']})"
        )
    ratio = parallel.get("portfolio_2worker_speedup")
    if ratio is not None:
        print(
            f"parallel portfolio 2-worker speedup {ratio:.2f}x "
            f"(gate >=1.4x: {parallel['meets_1_4x_gate']})"
        )
    roundtrip = server.get("execute_roundtrip")
    if roundtrip is not None:
        print(
            f"server round-trip overhead {roundtrip['overhead_ratio']:.2f}x "
            f"(gate <=3x: {roundtrip['meets_3x_gate']})"
        )
    load = server.get("load")
    if load is not None:
        print(
            f"load driver: {load.get('requests_per_second', 0.0):.0f} req/s, "
            f"read p95 {load.get('read_p95', 0.0) * 1e3:.2f} ms "
            f"over {load.get('processes')} processes"
        )
    if arguments.traffic:
        traffic = {
            "machine_info": report.get("machine_info", {}),
            "datetime": report.get("datetime"),
            "commit_info": report.get("commit_info", {}),
        }
        traffic.update(traffic_summary(median_map))
        with open(arguments.traffic, "w", encoding="utf-8") as handle:
            json.dump(traffic, handle, indent=2, sort_keys=True)
        gate = traffic.get("prepared_vs_adhoc_speedup")
        detail = f" (speedup {gate:.1f}x)" if gate is not None else ""
        print(f"wrote traffic summary to {arguments.traffic}{detail}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
