#!/usr/bin/env python
"""Reduce a pytest-benchmark JSON report to per-test medians.

CI uploads the result as a ``BENCH_*`` workflow artifact so the benchmark
trajectory can be compared across commits without storing full reports.

Usage: python scripts/bench_medians.py <pytest-benchmark.json> <out.json>
"""

from __future__ import annotations

import json
import sys


def medians(report: dict) -> dict:
    """Map each benchmark's name to its median (seconds) and cost-model extras."""
    summary = {}
    for bench in report.get("benchmarks", ()):
        summary[bench["name"]] = {
            "median_seconds": bench["stats"]["median"],
            "rounds": bench["stats"]["rounds"],
            "extra_info": bench.get("extra_info", {}),
        }
    return summary


def main(argv) -> int:
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    source, destination = argv
    with open(source, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    summary = {
        "machine_info": report.get("machine_info", {}),
        "datetime": report.get("datetime"),
        "commit_info": report.get("commit_info", {}),
        "medians": medians(report),
    }
    with open(destination, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
    print(f"wrote {len(summary['medians'])} medians to {destination}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
