#!/usr/bin/env python
"""Execute every ``python`` code block in README.md and docs/*.md.

Documentation that drifts from the code is worse than no documentation, so
CI runs this script: each fenced block tagged ``python`` is executed, and
blocks within the same file share a namespace (so a walkthrough can build
on earlier snippets).  Blocks tagged anything else (``bash``, ``text``,
or an explicit ``python no-run``) are skipped.

Usage: python scripts/check_docs.py [files...]
Defaults to README.md plus every markdown file under docs/.  The
repository's ``src`` directory is put on ``sys.path`` automatically, so no
installation is required.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
FENCE = re.compile(r"^```([^\n`]*)\n(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def python_blocks(text: str):
    """Yield (line_number, source) for each runnable python block."""
    for match in FENCE.finditer(text):
        info = match.group(1).strip().lower()
        if info != "python":
            continue
        line = text.count("\n", 0, match.start(2)) + 1
        yield line, match.group(2)


def check_file(path: Path) -> int:
    """Run all python blocks of one file in a shared namespace; count failures."""
    failures = 0
    namespace: dict = {"__name__": f"docs_block:{path.name}"}
    for line, source in python_blocks(path.read_text(encoding="utf-8")):
        label = f"{path.relative_to(REPO_ROOT)}:{line}"
        try:
            code = compile(source, label, "exec")
            exec(code, namespace)  # noqa: S102 - that's the point of the script
        except Exception as error:  # pragma: no cover - failure path
            failures += 1
            print(f"FAIL {label}: {type(error).__name__}: {error}")
        else:
            print(f"ok   {label}")
    return failures


def main(argv) -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    if argv:
        files = [Path(name).resolve() for name in argv]
    else:
        files = [REPO_ROOT / "README.md"]
        files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    missing = [path for path in files if not path.exists()]
    if missing:
        for path in missing:
            print(f"FAIL missing file: {path}")
        return 1
    failures = sum(check_file(path) for path in files)
    if failures:
        print(f"{failures} documentation block(s) failed")
        return 1
    print("all documentation code blocks ran")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
