"""Unit tests for structural grammar properties (linearity, self-embedding, strong regularity)."""

from repro.languages.cfg import parse_grammar
from repro.languages.cfg_properties import (
    is_left_linear,
    is_linear,
    is_right_linear,
    is_self_embedding,
    is_strongly_regular,
    is_unary_alphabet,
    mutually_recursive_sets,
    regularity_evidence,
)


LEFT = parse_grammar("anc -> par | anc par")
RIGHT = parse_grammar("anc -> par | par anc")
NONLINEAR = parse_grammar("anc -> par | anc anc")
ANBN = parse_grammar("S -> a S b | a b")


class TestLinearity:
    def test_left_linear(self):
        assert is_left_linear(LEFT)
        assert not is_left_linear(RIGHT)

    def test_right_linear(self):
        assert is_right_linear(RIGHT)
        assert not is_right_linear(LEFT)

    def test_linear(self):
        assert is_linear(LEFT) and is_linear(RIGHT) and is_linear(ANBN)
        assert not is_linear(NONLINEAR)


class TestSelfEmbedding:
    def test_anbn_is_self_embedding(self):
        assert is_self_embedding(ANBN)

    def test_left_linear_is_not(self):
        assert not is_self_embedding(LEFT)

    def test_indirect_self_embedding(self):
        grammar = parse_grammar("S -> a T\nT -> S b | c")
        assert is_self_embedding(grammar)

    def test_useless_self_embedding_ignored(self):
        # The self-embedding nonterminal U is unreachable, so it does not count.
        grammar = parse_grammar("S -> a\nU -> a U b | c")
        assert not is_self_embedding(grammar)


class TestStrongRegularity:
    def test_left_and_right_linear_are_strongly_regular(self):
        assert is_strongly_regular(LEFT)
        assert is_strongly_regular(RIGHT)

    def test_anbn_is_not(self):
        assert not is_strongly_regular(ANBN)

    def test_nonlinear_recursion_is_not(self):
        assert not is_strongly_regular(NONLINEAR)

    def test_mixed_components(self):
        # S is right-linear w.r.t. its own component even though it uses T freely.
        grammar = parse_grammar("S -> a T S | a\nT -> b")
        assert is_strongly_regular(grammar)

    def test_mutually_recursive_sets(self):
        grammar = parse_grammar("S -> a T\nT -> b S | c")
        components = mutually_recursive_sets(grammar)
        assert frozenset({"S", "T"}) in components


class TestEvidence:
    def test_unary(self):
        assert is_unary_alphabet(NONLINEAR)
        assert not is_unary_alphabet(ANBN)

    def test_evidence_finite(self):
        grammar = parse_grammar("S -> a b")
        assert regularity_evidence(grammar).reason == "finite language"

    def test_evidence_left_linear(self):
        assert regularity_evidence(LEFT).regular is True

    def test_evidence_unary_for_nonlinear(self):
        evidence = regularity_evidence(NONLINEAR)
        assert evidence.regular is True
        assert "unary" in evidence.reason or "Parikh" in evidence.reason

    def test_evidence_unknown_for_anbn(self):
        evidence = regularity_evidence(ANBN)
        assert evidence.regular is None

    def test_evidence_never_claims_nonregular(self):
        for grammar in (LEFT, RIGHT, NONLINEAR, ANBN):
            assert regularity_evidence(grammar).regular is not False
