"""Unit tests for CFL/regular quotients, unary languages, Bar-Hillel intersection, sampling."""

import pytest

from repro.errors import LanguageAnalysisError
from repro.languages.cfg import parse_grammar
from repro.languages.cfg_analysis import cfg_membership, enumerate_language, is_empty_language
from repro.languages.intersection import (
    cfl_intersects_regular,
    cfl_subset_of_regular,
    intersect_grammar_dfa,
)
from repro.languages.quotient import cfl_quotient_member, envelope_quotient, regular_quotient
from repro.languages.regular.properties import enumerate_words
from repro.languages.regular.regex import AnyStar, Concat, Symbol, parse_regex
from repro.languages.sampling import random_sentence, random_sentences, sentential_forms
from repro.languages.unary import length_set_to_dfa, unary_length_set

ANBN = parse_grammar("S -> b1 S b2 | b1 b2")
SIGMA = ("b1", "b2")


def section7_divisor():
    return Concat(
        (AnyStar(SIGMA), Symbol("b1"), AnyStar(SIGMA), Symbol("b2"), AnyStar(SIGMA))
    ).to_nfa(SIGMA)


class TestQuotients:
    def test_envelope_quotient_of_section7_example(self):
        result = envelope_quotient(ANBN, section7_divisor())
        words = set(enumerate_words(result.quotient, 3))
        assert words == {(), ("b1",), ("b1", "b1"), ("b1", "b1", "b1")}
        assert not result.exact  # the envelope b1+ b2+ was used

    def test_regular_quotient_matches_right_quotient(self):
        language = parse_regex("a a b").to_nfa(("a", "b")).to_dfa()
        divisor = parse_regex("b").to_nfa(("a", "b"))
        quotient = regular_quotient(language, divisor)
        assert quotient.accepts(("a", "a"))
        assert not quotient.accepts(("a", "a", "b"))

    def test_cfl_quotient_member_bounded(self):
        divisor = section7_divisor()
        assert cfl_quotient_member(ANBN, divisor, ("b1",)) is True
        assert cfl_quotient_member(ANBN, divisor, ("b2",)) in (False, None)

    def test_quotient_sample_prefixes(self):
        from repro.languages.quotient import quotient_sample

        members = quotient_sample(ANBN, section7_divisor(), max_prefix_length=2, max_suffix_length=6)
        assert ("b1",) in members


class TestUnary:
    def test_bplus_length_set(self):
        grammar = parse_grammar("p -> b | p b")
        lengths = unary_length_set(grammar, sample_bound=20)
        assert 0 not in lengths
        assert all(n in lengths for n in range(1, 15))

    def test_even_lengths(self):
        grammar = parse_grammar("p -> b b | p b b")
        lengths = unary_length_set(grammar, sample_bound=20)
        assert 2 in lengths and 4 in lengths
        assert 3 not in lengths

    def test_finite_unary(self):
        grammar = parse_grammar("p -> b b b")
        lengths = unary_length_set(grammar)
        assert lengths.exact
        assert lengths.is_finite()
        assert 3 in lengths and 2 not in lengths

    def test_length_set_to_dfa(self):
        grammar = parse_grammar("p -> b b | p b b")
        lengths = unary_length_set(grammar, sample_bound=20)
        dfa = length_set_to_dfa(lengths, "b")
        assert dfa.accepts(("b", "b"))
        assert dfa.accepts(tuple("b" for _ in range(8)))
        assert not dfa.accepts(("b",))

    def test_rejects_binary_alphabet(self):
        with pytest.raises(LanguageAnalysisError):
            unary_length_set(ANBN)


class TestIntersection:
    def test_intersection_membership(self):
        even_as = parse_regex("(b1 b1)* | (b1 b1)* b1 b2 (b1|b2)*").to_nfa(SIGMA).to_dfa()
        product = intersect_grammar_dfa(ANBN, even_as)
        # Words of anbn that the DFA also accepts.
        assert not is_empty_language(product)
        for word in enumerate_language(product, 6):
            assert cfg_membership(ANBN, word)
            assert even_as.accepts(word)

    def test_empty_intersection(self):
        only_b2_first = parse_regex("b2 (b1|b2)*").to_nfa(SIGMA).to_dfa()
        assert not cfl_intersects_regular(ANBN, only_b2_first)

    def test_subset_holds(self):
        envelope = parse_regex("b1 b1* b2 b2*").to_nfa(SIGMA).to_dfa()
        contained, witness = cfl_subset_of_regular(ANBN, envelope)
        assert contained and witness is None

    def test_subset_fails_with_witness(self):
        too_small = parse_regex("b1 b2").to_nfa(SIGMA).to_dfa()
        contained, witness = cfl_subset_of_regular(ANBN, too_small)
        assert not contained
        assert witness == ("b1", "b1", "b2", "b2")


class TestSampling:
    def test_random_sentence_is_in_language(self):
        for seed in range(5):
            word = random_sentence(ANBN, max_length=20)
            assert cfg_membership(ANBN, word)

    def test_random_sentences_seeded(self):
        first = random_sentences(ANBN, 5, seed=1)
        second = random_sentences(ANBN, 5, seed=1)
        assert first == second

    def test_random_sentence_empty_language(self):
        with pytest.raises(LanguageAnalysisError):
            random_sentence(parse_grammar("S -> a S"))

    def test_sentential_forms(self):
        forms = sentential_forms(ANBN, 2)
        assert ("S",) in forms
        assert ("b1", "S", "b2") in forms
        assert ("b1", "b2") in forms
