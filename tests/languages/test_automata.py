"""Unit tests for NFA/DFA basics, determinisation, and renumbering."""

from repro.languages.regular.dfa import DFA
from repro.languages.regular.nfa import NFA, literal_nfa


def ab_star_nfa():
    """(a b)* as an NFA with an ε-transition."""
    return NFA(
        {0, 1, 2},
        {"a", "b"},
        {(0, "a"): {1}, (1, "b"): {2}, (2, None): {0}},
        0,
        {0, 2},
    )


class TestNFA:
    def test_epsilon_closure(self):
        nfa = ab_star_nfa()
        assert nfa.epsilon_closure({2}) == {0, 2}

    def test_accepts(self):
        nfa = ab_star_nfa()
        assert nfa.accepts(())
        assert nfa.accepts(("a", "b"))
        assert nfa.accepts(("a", "b", "a", "b"))
        assert not nfa.accepts(("a",))
        assert not nfa.accepts(("b", "a"))

    def test_literal(self):
        nfa = literal_nfa(("x", "y"))
        assert nfa.accepts(("x", "y"))
        assert not nfa.accepts(("x",))
        assert not nfa.accepts(("x", "y", "x"))

    def test_reachable_states(self):
        nfa = NFA({0, 1, 99}, {"a"}, {(0, "a"): {1}}, 0, {1})
        assert 99 not in nfa.reachable_states()

    def test_renumber_preserves_language(self):
        nfa = ab_star_nfa().renumber()
        assert nfa.accepts(("a", "b"))
        assert not nfa.accepts(("a",))


class TestSubsetConstruction:
    def test_dfa_equivalent_to_nfa(self):
        nfa = ab_star_nfa()
        dfa = nfa.to_dfa()
        for word in [(), ("a",), ("a", "b"), ("a", "b", "a"), ("a", "b", "a", "b"), ("b",)]:
            assert dfa.accepts(word) == nfa.accepts(word)

    def test_dfa_is_deterministic(self):
        dfa = ab_star_nfa().to_dfa()
        seen = set()
        for (state, symbol) in dfa.transitions:
            assert (state, symbol) not in seen
            seen.add((state, symbol))


class TestDFA:
    def simple_dfa(self):
        return DFA({0, 1}, {"a"}, {(0, "a"): 1, (1, "a"): 0}, 0, {1})

    def test_accepts_odd_length(self):
        dfa = self.simple_dfa()
        assert dfa.accepts(("a",))
        assert not dfa.accepts(("a", "a"))

    def test_partial_transitions_reject(self):
        dfa = DFA({0, 1}, {"a", "b"}, {(0, "a"): 1}, 0, {1})
        assert not dfa.accepts(("b",))

    def test_complete_adds_dead_state(self):
        dfa = DFA({0, 1}, {"a", "b"}, {(0, "a"): 1}, 0, {1}).complete()
        assert len(dfa.states) == 3
        for state in dfa.states:
            for symbol in dfa.alphabet:
                assert dfa.delta(state, symbol) is not None

    def test_reachable_trims(self):
        dfa = DFA({0, 1, 2}, {"a"}, {(0, "a"): 1}, 0, {1, 2})
        trimmed = dfa.reachable()
        assert 2 not in trimmed.states

    def test_renumber_start_is_zero(self):
        dfa = DFA({"s", "t"}, {"a"}, {("s", "a"): "t"}, "s", {"t"}).renumber()
        assert dfa.start == 0
        assert dfa.accepts(("a",))

    def test_to_nfa_round_trip(self):
        dfa = self.simple_dfa()
        assert dfa.to_nfa().to_dfa().accepts(("a",))
