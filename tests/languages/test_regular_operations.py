"""Unit tests for regular-language algebra, including the Section 7 quotient."""

import pytest

from repro.languages.regular import (
    dfa_complement,
    dfa_difference,
    dfa_intersection,
    dfa_union,
    is_empty_language,
    is_equivalent,
    is_finite_language,
    is_subset,
    left_quotient,
    minimize_dfa,
    nerode_index,
    nfa_concat,
    nfa_reverse,
    nfa_star,
    nfa_union,
    parse_regex,
    prefix_closure,
    right_quotient,
    shortest_accepted_word,
    enumerate_words,
)


def lang(text, alphabet=("a", "b")):
    return parse_regex(text).to_nfa(alphabet).to_dfa()


class TestBooleanAlgebra:
    def test_union(self):
        result = dfa_union(lang("a a"), lang("b"))
        assert result.accepts(("a", "a")) and result.accepts(("b",))
        assert not result.accepts(("a",))

    def test_intersection(self):
        result = dfa_intersection(lang("a* b"), lang("a b*"))
        assert result.accepts(("a", "b"))
        assert not result.accepts(("a", "a", "b"))
        assert not result.accepts(("a", "b", "b"))

    def test_difference(self):
        result = dfa_difference(lang("a*"), lang("a a*"))
        assert result.accepts(())
        assert not result.accepts(("a",))

    def test_complement(self):
        result = dfa_complement(lang("a*"))
        assert not result.accepts(("a", "a"))
        assert result.accepts(("b",))

    def test_de_morgan(self):
        left, right = lang("a b*"), lang("a* b")
        lhs = dfa_complement(dfa_union(left, right))
        rhs = dfa_intersection(dfa_complement(left), dfa_complement(right))
        assert is_equivalent(lhs, rhs)


class TestConstructions:
    def test_concat(self):
        nfa = nfa_concat(parse_regex("a").to_nfa(), parse_regex("b").to_nfa())
        assert nfa.accepts(("a", "b"))
        assert not nfa.accepts(("a",))

    def test_star(self):
        nfa = nfa_star(parse_regex("a b").to_nfa())
        assert nfa.accepts(())
        assert nfa.accepts(("a", "b", "a", "b"))
        assert not nfa.accepts(("a", "a"))

    def test_union_nfa(self):
        nfa = nfa_union(parse_regex("a").to_nfa(), parse_regex("b b").to_nfa())
        assert nfa.accepts(("a",)) and nfa.accepts(("b", "b"))

    def test_reverse(self):
        nfa = nfa_reverse(parse_regex("a b b").to_nfa())
        assert nfa.accepts(("b", "b", "a"))
        assert not nfa.accepts(("a", "b", "b"))


class TestInclusion:
    def test_subset(self):
        assert is_subset(lang("a a"), lang("a*"))
        assert not is_subset(lang("a*"), lang("a a"))

    def test_equivalence_of_different_regexes(self):
        assert is_equivalent(lang("a a* | ε"), lang("a*"))

    def test_emptiness_and_finiteness(self):
        assert is_empty_language(dfa_difference(lang("a"), lang("a")))
        assert is_finite_language(lang("a b | b a"))
        assert not is_finite_language(lang("a*"))

    def test_shortest_word(self):
        assert shortest_accepted_word(lang("a a a | a b")) == ("a", "b")

    def test_enumerate_words(self):
        words = enumerate_words(lang("a*"), 2)
        assert words == [(), ("a",), ("a", "a")]


class TestMinimisation:
    def test_minimize_reduces_states(self):
        bloated = parse_regex("(a | a a) a*").to_nfa(("a",)).to_dfa()
        minimal = minimize_dfa(bloated)
        assert len(minimal.states) <= len(bloated.states)
        assert is_equivalent(minimal, bloated)

    def test_nerode_index(self):
        # a* over {a} needs exactly one state (all-accepting loop).
        assert nerode_index(parse_regex("a*").to_nfa(("a",)).to_dfa()) == 1

    def test_minimize_distinguishes_languages(self):
        assert not is_equivalent(lang("a"), lang("a a"))


class TestQuotients:
    def test_paper_example_quotient(self):
        """Quotient of b1+ b2+ (the envelope of {b1^n b2^n}) by Σ* b1 Σ* b2 Σ* is b1*."""
        alphabet = ("b1", "b2")
        envelope = parse_regex("b1 b1* b2 b2*").to_nfa(alphabet).to_dfa()
        divisor = parse_regex("(b1 | b2)* b1 (b1 | b2)* b2 (b1 | b2)*").to_nfa(alphabet)
        quotient = right_quotient(envelope, divisor)
        expected = parse_regex("b1*").to_nfa(alphabet).to_dfa()
        assert is_equivalent(quotient, expected)

    def test_right_quotient_definition_on_samples(self):
        alphabet = ("a", "b")
        language = lang("a a b b | a b")
        divisor = parse_regex("b").to_nfa(alphabet)
        quotient = right_quotient(language, divisor)
        # x is in the quotient iff x + 'b' is in the language.
        assert quotient.accepts(("a",))
        assert quotient.accepts(("a", "a", "b"))
        assert not quotient.accepts(("a", "b"))

    def test_left_quotient(self):
        alphabet = ("a", "b")
        language = lang("a b b")
        divisor = parse_regex("a").to_nfa(alphabet)
        quotient = left_quotient(language, divisor)
        assert quotient.accepts(("b", "b"))
        assert not quotient.accepts(("a", "b", "b"))

    def test_quotient_by_empty_language_is_empty(self):
        alphabet = ("a",)
        language = lang("a a", alphabet)
        from repro.languages.regular import empty_language_nfa

        quotient = right_quotient(language, empty_language_nfa(alphabet))
        assert is_empty_language(quotient)

    def test_prefix_closure(self):
        closed = prefix_closure(lang("a b a"))
        for word in [(), ("a",), ("a", "b"), ("a", "b", "a")]:
            assert closed.accepts(word)
        assert not closed.accepts(("b",))
