"""Unit tests for CFL decision procedures and enumeration."""

import pytest

from repro.errors import LanguageAnalysisError
from repro.languages.cfg import parse_grammar
from repro.languages.cfg_analysis import (
    cfg_membership,
    enumerate_finite_language,
    enumerate_language,
    is_empty_language,
    is_finite_language,
    language_sample_equal,
    shortest_lengths,
    shortest_word,
    strings_of_length,
)


ANBN = parse_grammar("S -> a S b | a b")
ASTAR = parse_grammar("S -> a S | a")
FINITE = parse_grammar("S -> a b | a c")
EMPTY = parse_grammar("S -> a S")


class TestEmptiness:
    def test_empty(self):
        assert is_empty_language(EMPTY)

    def test_nonempty(self):
        assert not is_empty_language(ANBN)

    def test_epsilon_only_language_is_not_empty(self):
        grammar = parse_grammar("S -> ε")
        assert not is_empty_language(grammar)


class TestFiniteness:
    def test_finite(self):
        assert is_finite_language(FINITE)

    def test_infinite_linear(self):
        assert not is_finite_language(ASTAR)

    def test_infinite_self_embedding(self):
        assert not is_finite_language(ANBN)

    def test_empty_language_is_finite(self):
        assert is_finite_language(EMPTY)

    def test_unit_cycle_does_not_fool_the_test(self):
        grammar = parse_grammar("S -> T\nT -> S | a")
        assert is_finite_language(grammar)


class TestMembership:
    @pytest.mark.parametrize(
        "word,expected",
        [
            (("a", "b"), True),
            (("a", "a", "b", "b"), True),
            (("a", "a", "b"), False),
            (("b", "a"), False),
            ((), False),
        ],
    )
    def test_anbn(self, word, expected):
        assert cfg_membership(ANBN, word) is expected

    def test_epsilon_membership(self):
        grammar = parse_grammar("S -> a S | ε")
        assert cfg_membership(grammar, ())
        assert cfg_membership(grammar, ("a", "a"))


class TestEnumeration:
    def test_strings_of_length(self):
        assert strings_of_length(ANBN, 2) == {("a", "b")}
        assert strings_of_length(ANBN, 3) == frozenset()
        assert strings_of_length(ANBN, 4) == {("a", "a", "b", "b")}

    def test_enumerate_language_ordering(self):
        words = enumerate_language(ASTAR, 3)
        assert words == [("a",), ("a", "a"), ("a", "a", "a")]

    def test_enumerate_finite_language(self):
        assert enumerate_finite_language(FINITE) == {("a", "b"), ("a", "c")}

    def test_enumerate_finite_rejects_infinite(self):
        with pytest.raises(LanguageAnalysisError):
            enumerate_finite_language(ASTAR)

    def test_shortest_word(self):
        assert shortest_word(ANBN) == ("a", "b")
        assert shortest_word(EMPTY) is None

    def test_shortest_lengths(self):
        lengths = shortest_lengths(ANBN)
        assert lengths["S"] == 2

    def test_language_sample_equal(self):
        left = parse_grammar("S -> a S | a")
        right = parse_grammar("S -> S a | a")
        agree, witness = language_sample_equal(left, right, 5)
        assert agree and witness is None

    def test_language_sample_difference_witness(self):
        left = parse_grammar("S -> a S | a")
        right = parse_grammar("S -> a a S | a a")
        agree, witness = language_sample_equal(left, right, 5)
        assert not agree
        assert witness == ("a",)
