"""Unit tests for grammar construction, parsing, and formatting."""

import pytest

from repro.errors import ValidationError
from repro.languages.cfg import Grammar, Production, format_grammar, parse_grammar


class TestConstruction:
    def test_from_productions_infers_terminals(self):
        grammar = Grammar.from_productions([("S", ("a", "S")), ("S", ("a",))], "S")
        assert grammar.terminals == {"a"}
        assert grammar.nonterminals == {"S"}

    def test_explicit_terminals(self):
        grammar = Grammar.from_productions([("S", ("a",))], "S", terminals=["a", "b"])
        assert grammar.terminals == {"a", "b"}

    def test_start_must_be_nonterminal(self):
        with pytest.raises(ValidationError):
            Grammar({"S"}, {"a"}, [Production("S", ("a",))], "T")

    def test_symbol_cannot_be_both(self):
        with pytest.raises(ValidationError):
            Grammar({"S", "a"}, {"a"}, [Production("S", ("a",))], "S")

    def test_unknown_symbol_rejected(self):
        with pytest.raises(ValidationError):
            Grammar({"S"}, {"a"}, [Production("S", ("a", "b"))], "S")

    def test_epsilon_production(self):
        grammar = Grammar.from_productions([("S", ())], "S")
        assert grammar.has_epsilon_productions()


class TestParsing:
    def test_parse_simple(self):
        grammar = parse_grammar("S -> a S b | a b")
        assert len(grammar.productions) == 2
        assert grammar.start == "S"
        assert grammar.terminals == {"a", "b"}

    def test_parse_epsilon(self):
        grammar = parse_grammar("S -> a S | ε")
        assert grammar.has_epsilon_productions()

    def test_parse_multiline_with_comments(self):
        grammar = parse_grammar(
            """
            # ancestors
            anc -> par
            anc -> anc par
            """
        )
        assert grammar.start == "anc"
        assert len(grammar.productions) == 2

    def test_parse_explicit_start(self):
        grammar = parse_grammar("A -> a\nB -> b", start="B")
        assert grammar.start == "B"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValidationError):
            parse_grammar("this is not a grammar")

    def test_format_round_trip(self):
        grammar = parse_grammar("S -> a S b | a b")
        reparsed = parse_grammar(format_grammar(grammar))
        assert set(reparsed.productions) == set(grammar.productions)
        assert reparsed.start == grammar.start


class TestAccessors:
    def test_productions_for(self):
        grammar = parse_grammar("S -> a S | b\nT -> a")
        assert len(grammar.productions_for("S")) == 2
        assert len(grammar.productions_for("T")) == 1

    def test_fresh_nonterminal(self):
        grammar = parse_grammar("S -> a")
        assert grammar.fresh_nonterminal("T") == "T"
        assert grammar.fresh_nonterminal("S") != "S"

    def test_with_start(self):
        grammar = parse_grammar("S -> a T\nT -> b")
        assert grammar.with_start("T").start == "T"

    def test_production_map(self):
        grammar = parse_grammar("S -> a S | b")
        assert grammar.production_map()["S"] == [("a", "S"), ("b",)]
