"""Unit tests for regular-expression parsing, compilation, and state elimination."""

import pytest

from repro.errors import ParseError
from repro.languages.regular.regex import (
    AnyStar,
    Concat,
    EmptySet,
    Epsilon,
    Star,
    Symbol,
    Union_,
    automaton_to_regex,
    parse_regex,
)
from repro.languages.regular.equivalence import is_equivalent


class TestParsing:
    def test_symbol(self):
        assert parse_regex("b1") == Symbol("b1")

    def test_concat_and_union_precedence(self):
        expression = parse_regex("a b | c")
        assert isinstance(expression, Union_)
        assert expression.parts[0] == Concat((Symbol("a"), Symbol("b")))

    def test_star_binds_tightest(self):
        expression = parse_regex("a b*")
        assert expression == Concat((Symbol("a"), Star(Symbol("b"))))

    def test_parentheses(self):
        expression = parse_regex("(a | b)*")
        assert isinstance(expression, Star)

    def test_epsilon(self):
        assert parse_regex("ε") == Epsilon()

    def test_errors(self):
        with pytest.raises(ParseError):
            parse_regex("(a")
        with pytest.raises(ParseError):
            parse_regex("a +")


class TestCompilation:
    @pytest.mark.parametrize(
        "pattern,accepted,rejected",
        [
            ("a*", [(), ("a", "a")], [("b",)]),
            ("a | b b", [("a",), ("b", "b")], [("b",), ("a", "b")]),
            ("(a b)* a", [("a",), ("a", "b", "a")], [("a", "b")]),
            ("ε", [()], [("a",)]),
        ],
    )
    def test_membership(self, pattern, accepted, rejected):
        nfa = parse_regex(pattern).to_nfa(("a", "b"))
        for word in accepted:
            assert nfa.accepts(word), (pattern, word)
        for word in rejected:
            assert not nfa.accepts(word), (pattern, word)

    def test_empty_set(self):
        assert not EmptySet().to_nfa(("a",)).accepts(())

    def test_any_star(self):
        nfa = AnyStar(("a", "b")).to_nfa()
        assert nfa.accepts(("a", "b", "b", "a"))

    def test_operators_on_ast(self):
        expression = (Symbol("a") | Symbol("b")).star()
        nfa = expression.to_nfa(("a", "b"))
        assert nfa.accepts(("a", "b", "a"))


class TestStateElimination:
    @pytest.mark.parametrize("pattern", ["a*", "a b | b a", "(a | b) a*", "a (b a)*"])
    def test_round_trip(self, pattern):
        original = parse_regex(pattern).to_nfa(("a", "b")).to_dfa()
        back = automaton_to_regex(original).to_nfa(("a", "b")).to_dfa()
        assert is_equivalent(original, back)

    def test_empty_automaton(self):
        from repro.languages.regular.operations import empty_language_nfa

        expression = automaton_to_regex(empty_language_nfa(("a",)))
        assert not expression.to_nfa(("a",)).accepts(("a",))

    def test_str_renders(self):
        assert "b1" in str(parse_regex("b1 b2*"))
