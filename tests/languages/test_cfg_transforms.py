"""Unit tests for grammar normal forms."""

from repro.languages.cfg import parse_grammar
from repro.languages.cfg_analysis import cfg_membership, enumerate_language
from repro.languages.cfg_transforms import (
    eliminate_epsilon,
    eliminate_unit_productions,
    generating_nonterminals,
    nullable_nonterminals,
    reachable_symbols,
    reduce_grammar,
    to_chomsky_normal_form,
)


class TestReduction:
    def test_non_generating_removed(self):
        grammar = parse_grammar("S -> a | U\nU -> U b")
        reduced = reduce_grammar(grammar)
        assert "U" not in reduced.nonterminals

    def test_unreachable_removed(self):
        grammar = parse_grammar("S -> a\nT -> b")
        reduced = reduce_grammar(grammar)
        assert "T" not in reduced.nonterminals
        assert "b" not in reduced.terminals

    def test_empty_language_collapses(self):
        grammar = parse_grammar("S -> S a")
        reduced = reduce_grammar(grammar)
        assert reduced.productions == ()

    def test_generating_and_reachable_sets(self):
        grammar = parse_grammar("S -> A b\nA -> a\nC -> c")
        assert generating_nonterminals(grammar) == {"S", "A", "C"}
        assert "C" not in reachable_symbols(grammar)


class TestEpsilonAndUnits:
    def test_nullable_detection(self):
        grammar = parse_grammar("S -> A B\nA -> ε\nB -> b | ε")
        assert nullable_nonterminals(grammar) == {"S", "A", "B"}

    def test_epsilon_elimination_preserves_nonempty_words(self):
        grammar = parse_grammar("S -> a S b | ε")
        stripped, had_epsilon = eliminate_epsilon(grammar)
        assert had_epsilon
        assert not stripped.has_epsilon_productions()
        words = enumerate_language(stripped, 4)
        assert ("a", "b") in words
        assert ("a", "a", "b", "b") in words
        assert () not in words

    def test_unit_elimination(self):
        grammar = parse_grammar("S -> T\nT -> a")
        no_units = eliminate_unit_productions(grammar)
        assert all(
            not (len(p.rhs) == 1 and p.rhs[0] in no_units.nonterminals)
            for p in no_units.productions
        )
        assert cfg_membership(no_units, ("a",))


class TestCNF:
    def test_cnf_shape(self):
        grammar = parse_grammar("S -> a S b S | c")
        cnf, accepts_epsilon = to_chomsky_normal_form(grammar)
        assert not accepts_epsilon
        for production in cnf.productions:
            assert len(production.rhs) in (1, 2)
            if len(production.rhs) == 1:
                assert production.rhs[0] in cnf.terminals
            else:
                assert all(symbol in cnf.nonterminals for symbol in production.rhs)

    def test_cnf_preserves_language_sample(self):
        grammar = parse_grammar("S -> a S b | a b | S S")
        cnf, _ = to_chomsky_normal_form(grammar)
        original = set(enumerate_language(grammar, 6))
        converted = set(enumerate_language(cnf, 6))
        assert original == converted

    def test_cnf_epsilon_flag(self):
        grammar = parse_grammar("S -> a S | ε")
        _, accepts_epsilon = to_chomsky_normal_form(grammar)
        assert accepts_epsilon

    def test_cnf_of_empty_language(self):
        grammar = parse_grammar("S -> S a")
        cnf, accepts_epsilon = to_chomsky_normal_form(grammar)
        assert cnf.productions == ()
        assert not accepts_epsilon
