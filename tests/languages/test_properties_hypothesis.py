"""Property-based tests (hypothesis) for the regular-language and grammar algebra."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.languages.cfg import Grammar
from repro.languages.cfg_analysis import (
    cfg_membership,
    enumerate_language,
    is_finite_language,
    strings_of_length,
)
from repro.languages.cfg_transforms import reduce_grammar, to_chomsky_normal_form
from repro.languages.approximation import regular_envelope
from repro.languages.regular.equivalence import is_equivalent
from repro.languages.regular.minimize import minimize_dfa
from repro.languages.regular.operations import (
    dfa_complement,
    dfa_intersection,
    dfa_union,
    right_quotient,
)
from repro.languages.regular.regex import Concat, Epsilon, Regex, Star, Symbol, Union_

ALPHABET = ("a", "b")


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
def regexes(max_depth=3) -> st.SearchStrategy:
    base = st.sampled_from([Symbol("a"), Symbol("b"), Epsilon()])
    return st.recursive(
        base,
        lambda children: st.one_of(
            st.tuples(children, children).map(lambda pair: Concat(pair)),
            st.tuples(children, children).map(lambda pair: Union_(pair)),
            children.map(Star),
        ),
        max_leaves=6,
    )


def short_words(max_length=4):
    words = [()]
    for length in range(1, max_length + 1):
        words.extend(itertools.product(ALPHABET, repeat=length))
    return words


WORDS = short_words()


def grammars() -> st.SearchStrategy:
    """Small random grammars over nonterminals {S, T} and terminals {a, b}."""
    symbols = ["S", "T", "a", "b"]
    rhs = st.lists(st.sampled_from(symbols), min_size=1, max_size=3).map(tuple)
    production = st.tuples(st.sampled_from(["S", "T"]), rhs)
    return st.lists(production, min_size=1, max_size=5).map(
        # Terminals are inferred: a right-hand-side "T" with no T-production is
        # simply treated as a terminal symbol, which is still a valid grammar.
        lambda productions: Grammar.from_productions(productions, "S")
    )


# ----------------------------------------------------------------------
# Regular-language properties
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(regexes())
def test_minimisation_preserves_the_language(expression: Regex):
    dfa = expression.to_nfa(ALPHABET).to_dfa()
    minimal = minimize_dfa(dfa)
    assert is_equivalent(dfa, minimal)
    assert len(minimal.states) <= len(dfa.complete().states)


@settings(max_examples=40, deadline=None)
@given(regexes(), regexes())
def test_boolean_operations_agree_with_word_level_semantics(left: Regex, right: Regex):
    left_dfa = left.to_nfa(ALPHABET).to_dfa()
    right_dfa = right.to_nfa(ALPHABET).to_dfa()
    union = dfa_union(left_dfa, right_dfa)
    intersection = dfa_intersection(left_dfa, right_dfa)
    complement = dfa_complement(left_dfa, ALPHABET)
    for word in WORDS:
        in_left, in_right = left_dfa.accepts(word), right_dfa.accepts(word)
        assert union.accepts(word) == (in_left or in_right)
        assert intersection.accepts(word) == (in_left and in_right)
        assert complement.accepts(word) == (not in_left)


@settings(max_examples=30, deadline=None)
@given(regexes(), regexes())
def test_right_quotient_agrees_with_its_definition(language: Regex, divisor: Regex):
    language_dfa = language.to_nfa(ALPHABET).to_dfa()
    divisor_nfa = divisor.to_nfa(ALPHABET)
    quotient = right_quotient(language_dfa, divisor_nfa)
    divisor_words = [word for word in WORDS if divisor_nfa.accepts(word)]
    for prefix in WORDS:
        if len(prefix) > 2:
            continue
        expected = any(language_dfa.accepts(tuple(prefix) + tuple(suffix)) for suffix in divisor_words)
        if expected:
            # The quotient must contain every prefix with a short witness; the converse
            # may involve witnesses longer than the enumeration bound, so it is not asserted.
            assert quotient.accepts(prefix)


# ----------------------------------------------------------------------
# Grammar properties
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(grammars())
def test_cnf_preserves_short_words(grammar: Grammar):
    cnf, accepts_epsilon = to_chomsky_normal_form(grammar)
    for length in range(0, 5):
        original = strings_of_length(grammar, length)
        converted = strings_of_length(cnf, length) | ({()} if accepts_epsilon and length == 0 else set())
        assert original == converted


@settings(max_examples=40, deadline=None)
@given(grammars())
def test_reduction_preserves_short_words(grammar: Grammar):
    reduced = reduce_grammar(grammar)
    for length in range(0, 5):
        assert strings_of_length(grammar, length) == strings_of_length(reduced, length)


@settings(max_examples=40, deadline=None)
@given(grammars())
def test_finiteness_is_consistent_with_enumeration(grammar: Grammar):
    finite = is_finite_language(grammar)
    if finite:
        cnf, _ = to_chomsky_normal_form(grammar)
        bound = 2 ** max(0, len(cnf.nonterminals) - 1)
        assert strings_of_length(grammar, bound + 1) == frozenset()


@settings(max_examples=30, deadline=None)
@given(grammars())
def test_regular_envelope_contains_the_language(grammar: Grammar):
    envelope = regular_envelope(grammar)
    for word in enumerate_language(grammar, 5):
        assert envelope.nfa.accepts(word)


@settings(max_examples=30, deadline=None)
@given(grammars())
def test_membership_agrees_with_enumeration(grammar: Grammar):
    words = set(enumerate_language(grammar, 4))
    for word in WORDS:
        if len(word) <= 4:
            assert cfg_membership(grammar, word) == (tuple(word) in words)
