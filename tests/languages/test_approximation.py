"""Unit tests for the exact FA construction and the Mohri–Nederhof envelope."""

from repro.languages.approximation import (
    mohri_nederhof_transform,
    regular_envelope,
    strongly_regular_to_nfa,
)
from repro.languages.cfg import parse_grammar
from repro.languages.cfg_analysis import enumerate_language
from repro.languages.cfg_properties import is_strongly_regular
from repro.languages.regular.equivalence import is_equivalent
from repro.languages.regular.regex import parse_regex
import pytest

from repro.errors import LanguageAnalysisError


class TestExactConstruction:
    def test_left_linear_ancestor(self):
        grammar = parse_grammar("anc -> par | anc par")
        nfa = strongly_regular_to_nfa(grammar)
        expected = parse_regex("par par*").to_nfa(("par",)).to_dfa()
        assert is_equivalent(nfa.to_dfa(), expected)

    def test_right_linear(self):
        grammar = parse_grammar("anc -> par | par anc")
        nfa = strongly_regular_to_nfa(grammar)
        expected = parse_regex("par par*").to_nfa(("par",)).to_dfa()
        assert is_equivalent(nfa.to_dfa(), expected)

    def test_two_letter_right_linear(self):
        grammar = parse_grammar("S -> a S | b T | b\nT -> a T | a")
        nfa = strongly_regular_to_nfa(grammar)
        for word in enumerate_language(grammar, 5):
            assert nfa.accepts(word)
        assert not nfa.accepts(("b", "b"))

    def test_non_recursive_nonterminals_are_inlined(self):
        grammar = parse_grammar("S -> A B\nA -> a | a a\nB -> b")
        nfa = strongly_regular_to_nfa(grammar)
        assert nfa.accepts(("a", "b"))
        assert nfa.accepts(("a", "a", "b"))
        assert not nfa.accepts(("a", "a", "a", "b"))

    def test_rejects_non_strongly_regular(self):
        with pytest.raises(LanguageAnalysisError):
            strongly_regular_to_nfa(parse_grammar("S -> a S b | a b"))

    def test_exactness_on_samples(self):
        grammar = parse_grammar("S -> a S | b T\nT -> b T | b")
        nfa = strongly_regular_to_nfa(grammar)
        words = set(enumerate_language(grammar, 6))
        from repro.languages.regular.properties import enumerate_words

        automaton_words = {w for w in enumerate_words(nfa.to_dfa(), 6)}
        assert words == automaton_words


class TestMohriNederhof:
    def test_transform_is_strongly_regular(self):
        grammar = parse_grammar("S -> a S b | a b")
        transformed = mohri_nederhof_transform(grammar)
        assert is_strongly_regular(transformed)

    def test_transform_is_superset(self):
        grammar = parse_grammar("S -> a S b | a b")
        transformed = mohri_nederhof_transform(grammar)
        for word in enumerate_language(grammar, 8):
            from repro.languages.cfg_analysis import cfg_membership

            assert cfg_membership(transformed, word)

    def test_envelope_of_anbn_is_a_plus_b_plus(self):
        grammar = parse_grammar("S -> a S b | a b")
        envelope = regular_envelope(grammar)
        assert not envelope.exact
        expected = parse_regex("a a* b b*").to_nfa(("a", "b")).to_dfa()
        assert is_equivalent(envelope.nfa.to_dfa(), expected)

    def test_envelope_exact_for_strongly_regular(self):
        grammar = parse_grammar("anc -> par | anc par")
        envelope = regular_envelope(grammar)
        assert envelope.exact

    def test_envelope_contains_language_for_nonlinear(self):
        grammar = parse_grammar("S -> S S | a")
        envelope = regular_envelope(grammar)
        for word in enumerate_language(grammar, 5):
            assert envelope.nfa.accepts(word)
