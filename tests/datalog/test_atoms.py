"""Unit tests for repro.datalog.atoms."""

import pytest

from repro.datalog.atoms import Atom, ground_atom
from repro.datalog.terms import Constant, Variable


class TestAtomBasics:
    def test_terms_are_coerced(self):
        atom = Atom("par", ("X", "john"))
        assert atom.terms == (Variable("X"), Constant("john"))

    def test_arity(self):
        assert Atom("p", ("X", "Y")).arity == 2
        assert Atom("q", ()).arity == 0

    def test_is_ground(self):
        assert ground_atom("par", ("john", "mary")).is_ground()
        assert not Atom("par", ("X", "mary")).is_ground()

    def test_variables_in_order_without_duplicates(self):
        atom = Atom("p", ("X", "Y", "X"))
        assert atom.variables() == (Variable("X"), Variable("Y"))

    def test_constants(self):
        atom = Atom("p", ("a", "X", "b", "a"))
        assert atom.constants() == (Constant("a"), Constant("b"))

    def test_str(self):
        assert str(Atom("anc", ("john", "Y"))) == "anc(john, Y)"
        assert str(Atom("flag", ())) == "flag"

    def test_hashable_and_equal(self):
        assert Atom("p", ("X",)) == Atom("p", ("X",))
        assert len({Atom("p", ("X",)), Atom("p", ("X",))}) == 1


class TestSubstitution:
    def test_substitute_variable(self):
        atom = Atom("par", ("X", "Y"))
        result = atom.substitute({Variable("X"): Constant("john")})
        assert result == Atom("par", (Constant("john"), Variable("Y")))

    def test_substitute_leaves_constants(self):
        atom = Atom("par", ("john", "Y"))
        result = atom.substitute({Variable("Y"): Constant("mary")})
        assert result.is_ground()

    def test_rename_predicate(self):
        assert Atom("p", ("X",)).rename_predicate("q") == Atom("q", ("X",))


class TestFactTuple:
    def test_as_fact_tuple(self):
        assert ground_atom("par", ("john", "mary")).as_fact_tuple() == ("john", "mary")

    def test_as_fact_tuple_requires_ground(self):
        with pytest.raises(ValueError):
            Atom("par", ("X", "mary")).as_fact_tuple()
