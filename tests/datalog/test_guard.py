"""Cooperative guardrails: budgets, deadlines, cancellation, and the typed
abort taxonomy — unit semantics plus the session/prepared/service surface."""

import threading

import pytest

from repro.datalog import (
    CancellationToken,
    Database,
    DatalogService,
    ExecutionGuard,
    QuerySession,
    ResourceBudget,
    build_guard,
    parse_program,
)
from repro.datalog.engine import available_engines, get_engine
from repro.errors import (
    BudgetExceeded,
    EvaluationError,
    QueryAborted,
    QueryCancelled,
    QueryTimeout,
    ReproError,
)

REACH = """\
?reach(0, Y)
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- reach(X, Z), edge(Z, Y).
"""

PARAM_REACH = """\
?reach($src, Y)
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- reach(X, Z), edge(Z, Y).
"""


def chain_database(n=12, layout="tuple"):
    database = Database(layout=layout)
    for i in range(n):
        database.add_fact("edge", (i, i + 1))
    return database


# ----------------------------------------------------------------------
# Budget / token / guard unit semantics
# ----------------------------------------------------------------------
class TestResourceBudget:
    def test_defaults_are_unlimited(self):
        assert ResourceBudget().unlimited

    @pytest.mark.parametrize(
        "kwargs",
        [{"timeout": -1}, {"max_facts": -1}, {"max_rounds": -2}],
    )
    def test_negative_limits_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ResourceBudget(**kwargs)

    def test_start_arms_a_guard(self):
        guard = ResourceBudget(timeout=5.0).start()
        assert isinstance(guard, ExecutionGuard)
        assert guard.deadline is not None
        assert 0 < guard.remaining() <= 5.0


class TestCancellationToken:
    def test_one_way_flag(self):
        token = CancellationToken()
        assert not token.cancelled
        token.cancel()
        token.cancel()  # idempotent
        assert token.cancelled

    def test_cancel_from_another_thread_trips_checkpoint(self):
        token = CancellationToken()
        guard = ResourceBudget().start(token)
        guard.checkpoint()  # not yet cancelled
        worker = threading.Thread(target=token.cancel)
        worker.start()
        worker.join()
        with pytest.raises(QueryCancelled):
            guard.checkpoint()


class TestExecutionGuard:
    def test_zero_timeout_trips_immediately(self):
        guard = ResourceBudget(timeout=0).start()
        with pytest.raises(QueryTimeout):
            guard.checkpoint()

    def test_round_budget_uses_statistics(self):
        class Stats:
            iterations = 3
            facts_derived = 0

        guard = ResourceBudget(max_rounds=2).start()
        with pytest.raises(BudgetExceeded):
            guard.checkpoint(Stats())

    def test_fact_budget_uses_statistics(self):
        class Stats:
            iterations = 0
            facts_derived = 100

        guard = ResourceBudget(max_facts=99).start()
        with pytest.raises(BudgetExceeded):
            guard.checkpoint(Stats())

    def test_checkpoint_without_statistics_ignores_count_budgets(self):
        guard = ResourceBudget(max_rounds=0, max_facts=0).start()
        guard.checkpoint()  # only deadline + cancellation apply
        assert guard.checkpoints == 1

    def test_abort_taxonomy_is_typed(self):
        # Every abort is a QueryAborted is an EvaluationError is a ReproError,
        # so one except clause at any layer catches the whole family.
        for error in (QueryTimeout, BudgetExceeded, QueryCancelled):
            assert issubclass(error, QueryAborted)
            assert issubclass(error, EvaluationError)
            assert issubclass(error, ReproError)


class TestBuildGuard:
    def test_nothing_bounded_returns_none(self):
        assert build_guard() is None

    def test_timeout_shorthand(self):
        guard = build_guard(timeout=2.0)
        assert guard.budget.timeout == 2.0

    def test_tighter_timeout_wins(self):
        guard = build_guard(timeout=1.0, budget=ResourceBudget(timeout=9.0))
        assert guard.budget.timeout == 1.0
        guard = build_guard(timeout=9.0, budget=ResourceBudget(timeout=1.0))
        assert guard.budget.timeout == 1.0

    def test_budget_limits_survive_merge(self):
        guard = build_guard(timeout=1.0, budget=ResourceBudget(max_facts=5))
        assert guard.budget.max_facts == 5
        assert guard.budget.timeout == 1.0

    def test_cancellation_alone_builds_a_guard(self):
        token = CancellationToken()
        guard = build_guard(cancellation=token)
        assert guard is not None and guard.cancellation is token


# ----------------------------------------------------------------------
# Every guard-supporting engine aborts, both layouts, database untouched
# ----------------------------------------------------------------------
GUARD_ENGINES = [
    name for name in available_engines() if getattr(get_engine(name), "supports_guard", False)
]


@pytest.mark.parametrize("engine", GUARD_ENGINES)
@pytest.mark.parametrize("layout", ["tuple", "columnar"])
class TestEngineAborts:
    def test_round_budget_aborts(self, engine, layout):
        database = chain_database(layout=layout)
        version = database.version
        session = QuerySession(parse_program(REACH), database)
        with pytest.raises(BudgetExceeded):
            session.evaluate(engine=engine, budget=ResourceBudget(max_rounds=1))
        assert database.version == version

    def test_zero_deadline_aborts(self, engine, layout):
        database = chain_database(layout=layout)
        session = QuerySession(parse_program(REACH), database)
        with pytest.raises(QueryTimeout):
            session.evaluate(engine=engine, timeout=0)

    def test_pre_cancelled_token_aborts(self, engine, layout):
        database = chain_database(layout=layout)
        token = CancellationToken()
        token.cancel()
        session = QuerySession(parse_program(REACH), database)
        with pytest.raises(QueryCancelled):
            session.evaluate(engine=engine, cancellation=token)

    def test_ample_budget_completes_with_same_answers(self, engine, layout):
        database = chain_database(layout=layout)
        session = QuerySession(parse_program(REACH), database)
        bounded = session.evaluate(
            engine=engine,
            budget=ResourceBudget(timeout=60, max_facts=10_000, max_rounds=10_000),
        )
        free = session.evaluate(engine=engine)
        assert bounded.answers() == free.answers()


def test_unsupporting_engine_rejects_guard_loudly():
    # The registry contract: an engine that cannot checkpoint must refuse a
    # guard rather than silently running unbounded.
    from repro.datalog.engine.registry import FunctionEngine

    engine = FunctionEngine(
        name="inert",
        description="no guard support",
        function=lambda program, database, **kw: None,
        supports_guard=False,
    )
    with pytest.raises(EvaluationError, match="does not support cooperative guards"):
        engine.evaluate(
            parse_program(REACH), chain_database(), guard=ResourceBudget().start()
        )


# ----------------------------------------------------------------------
# Service surface: counters, default timeout, per-request override
# ----------------------------------------------------------------------
class TestServiceGuards:
    def make_service(self, **kwargs):
        service = DatalogService(chain_database(), **kwargs)
        service.register_program("reach", parse_program(PARAM_REACH))
        return service

    def test_timeout_counter_and_untouched_state(self):
        service = self.make_service()
        version = service.database.version
        with pytest.raises(QueryTimeout):
            service.execute("reach", {"src": 0}, timeout=0)
        with pytest.raises(BudgetExceeded):
            service.execute(
                "reach", {"src": 0}, budget=ResourceBudget(max_rounds=1), fresh=True
            )
        statistics = service.statistics()
        assert statistics["timeouts"] == 2
        assert statistics["cancellations"] == 0
        assert service.database.version == version

    def test_cancellation_counter(self):
        service = self.make_service()
        token = CancellationToken()
        token.cancel()
        with pytest.raises(QueryCancelled):
            service.execute("reach", {"src": 0}, cancellation=token)
        assert service.statistics()["cancellations"] == 1

    def test_default_timeout_applies_and_override_loosens(self):
        service = self.make_service(default_timeout=0)
        with pytest.raises(QueryTimeout):
            service.execute("reach", {"src": 0})
        assert service.statistics()["timeouts"] == 1
        # An explicit per-request timeout overrides the service default.
        answers = service.execute("reach", {"src": 0}, timeout=60)
        assert answers

    def test_negative_default_timeout_rejected(self):
        with pytest.raises(ValueError):
            DatalogService(Database(), default_timeout=-1)

    def test_execute_many_budget_covers_the_batch(self):
        service = self.make_service()
        with pytest.raises(BudgetExceeded):
            service.execute_many(
                "reach",
                [{"src": i} for i in range(4)],
                budget=ResourceBudget(max_rounds=1),
            )
        assert service.statistics()["timeouts"] == 1

    def test_counters_are_monotonic_metrics(self):
        assert "timeouts" in DatalogService.MONOTONIC_STATISTICS
        assert "cancellations" in DatalogService.MONOTONIC_STATISTICS


# ----------------------------------------------------------------------
# Materialized-view build guard
# ----------------------------------------------------------------------
class TestViewBuildGuard:
    def test_build_abort_leaves_database_untouched(self):
        database = chain_database()
        version = database.version
        session = QuerySession(parse_program(REACH), database)
        with pytest.raises(BudgetExceeded):
            session.materialize(budget=ResourceBudget(max_rounds=1))
        assert database.version == version

    def test_completed_view_maintains_unguarded(self):
        database = chain_database(4)
        session = QuerySession(parse_program(REACH), database)
        view = session.materialize(timeout=60)
        before = len(view.answers())
        view.apply(insertions=[("edge", (4, 5))])
        assert len(view.answers()) == before + 1


# ----------------------------------------------------------------------
# CLI --timeout
# ----------------------------------------------------------------------
class TestCliTimeout:
    def test_evaluate_timeout_aborts(self, tmp_path, capsys):
        from repro.cli import main

        program = tmp_path / "p.dl"
        program.write_text(REACH)
        facts = tmp_path / "f.dl"
        facts.write_text("".join(f"edge({i}, {i + 1}).\n" for i in range(10)))
        assert main(["evaluate", str(program), str(facts), "--timeout", "0"]) == 2
        assert "deadline" in capsys.readouterr().err

    def test_evaluate_generous_timeout_succeeds(self, tmp_path, capsys):
        from repro.cli import main

        program = tmp_path / "p.dl"
        program.write_text(REACH)
        facts = tmp_path / "f.dl"
        facts.write_text("edge(0, 1).\nedge(1, 2).\n")
        assert main(["evaluate", str(program), str(facts), "--timeout", "60"]) == 0
        assert "2 answers" in capsys.readouterr().out
