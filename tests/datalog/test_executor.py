"""Compiled slot-based join kernels: units, parity, and cross-engine properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.counterexamples import anbn_program
from repro.core.examples_catalog import (
    program_a,
    program_b,
    program_c,
    program_d,
    same_generation_program,
    section7_transformed,
)
from repro.core.workloads import (
    labeled_random_graph,
    layered_anbn_graph,
    parent_forest,
    same_generation_database,
)
from repro.datalog import Database, QuerySession
from repro.datalog.engine import available_engines, compile_program_plan, get_engine
from repro.datalog.engine.base import match_body
from repro.datalog.engine.executor import (
    PROBE_CONST,
    PROBE_SCAN,
    PROBE_SLOT,
    compile_rule_kernel,
)
from repro.datalog.engine.planner import plan_rule
from repro.datalog.parser import parse_program, parse_rule

# The public compiled/interpreted toggle: registry engines accept compiled=.
evaluate_naive = get_engine("naive").evaluate
evaluate_seminaive = get_engine("seminaive").evaluate
from repro.datalog.rules import Rule
from repro.datalog.terms import Parameter


def kernel_for(text: str, estimates=None, delta_predicates=frozenset()):
    rule = parse_rule(text)
    plan = plan_rule(rule, dict(estimates or {}), delta_predicates=delta_predicates)
    return rule, plan, compile_rule_kernel(plan)


def interpreted_heads(rule: Rule, plan, database, delta_position=None, delta=None):
    """Reference: head tuples via the match_body interpreter, same order spec."""
    order = plan.order if delta_position is None else next(
        variant.order for variant in plan.variants if variant.position == delta_position
    )
    return sorted(
        plan.head_values(substitution)
        for substitution in match_body(
            rule.body,
            database,
            delta_position=delta_position,
            delta_index=delta,
            order=order,
        )
    )


# ----------------------------------------------------------------------
# Compilation units
# ----------------------------------------------------------------------
class TestCompilation:
    def test_registers_numbered_by_first_body_occurrence(self):
        _, _, kernel = kernel_for("h(Y, X) :- p(X, Y), q(Y, Z).")
        assert kernel.register_count == 3
        assert kernel.slot_names == ("X", "Y", "Z")
        # Head extraction reads slots directly: Y is slot 1, X is slot 0.
        assert kernel.head_ops == ((True, 1), (True, 0))
        assert kernel.head([10, 20, 30]) == (20, 10)

    def test_head_constants_are_baked_in(self):
        _, _, kernel = kernel_for("h(X, c, X) :- p(X, Y).")
        assert kernel.head_ops == ((True, 0), (False, "c"), (True, 0))
        assert kernel.head([7, None]) == (7, "c", 7)

    def test_constant_probe_and_residual_checks(self):
        _, _, kernel = kernel_for("h(X) :- p(c, X, d).")
        (step,) = kernel.static_steps
        assert step.probe_kind == PROBE_CONST
        assert (step.probe_position, step.probe_value) == (0, "c")
        # The probed column needs no check; the other constant does.
        assert step.const_checks == ((2, "d"),)
        assert step.binds == ((1, 0),)

    def test_bound_variable_becomes_slot_probe(self):
        _, _, kernel = kernel_for("h(X, Y) :- p(X, Z), q(Z, Y).")
        first, second = kernel.static_steps
        assert first.probe_kind == PROBE_SCAN
        assert second.probe_kind == PROBE_SLOT
        # Z was bound into its slot by the first step and probes q's column 0.
        assert second.probe_position == 0
        assert second.probe_slot == first.binds[1][1]

    def test_repeated_variable_in_one_atom_compiles_to_self_check(self):
        _, _, kernel = kernel_for("h(X) :- p(X, X).")
        (step,) = kernel.static_steps
        assert step.self_checks == ((1, 0),)
        assert step.binds == ((0, 0),)

    def test_delta_variants_share_the_slot_file(self):
        _, plan, kernel = kernel_for(
            "anc(X, Y) :- par(X, Z), anc(Z, Y).",
            {"par": 10, "anc": 50},
            delta_predicates=frozenset({"anc"}),
        )
        assert kernel.delta_positions == (1,)
        delta_steps = kernel.delta_steps[1]
        assert delta_steps[0].use_delta and delta_steps[0].predicate == "anc"
        assert not delta_steps[1].use_delta
        # Same registers as the static order: Z's slot probes par's column 1.
        assert delta_steps[1].probe_kind == PROBE_SLOT

    def test_parameter_rules_are_not_compiled(self):
        rule = parse_rule("h(X) :- p($who, X).")
        assert any(isinstance(term, Parameter) for atom in rule.body for term in atom.terms)
        plan = plan_rule(rule, {})
        assert compile_rule_kernel(plan) is None

    def test_program_plan_records_uncompilable_rules_as_none(self):
        program = parse_program(
            """
            ?h(X)
            h(X) :- p($who, X).
            """
        )
        plan = compile_program_plan(program, Database({"p": [("a", 1)]}))
        (rule,) = [rule for rule in program.rules if not rule.is_fact()]
        assert plan.kernel(rule) is None
        assert "interpreted match_body path" in plan.describe()


# ----------------------------------------------------------------------
# Execution units
# ----------------------------------------------------------------------
class TestExecution:
    def test_static_run_matches_the_interpreter(self):
        rule, plan, kernel = kernel_for(
            "h(X, Y) :- p(X, Z), q(Z, Y).", {"p": 2, "q": 3}
        )
        database = Database(
            {"p": [(1, 2), (3, 4), (5, 2)], "q": [(2, "a"), (4, "b"), (9, "c")]}
        )
        assert sorted(kernel.run_static(database)) == interpreted_heads(
            rule, plan, database
        )

    def test_duplicate_firings_are_preserved(self):
        # Two distinct Z witnesses produce the same head: the fixpoint's
        # duplicate statistics depend on seeing both firings.
        rule, plan, kernel = kernel_for("h(X) :- p(X, Z).")
        database = Database({"p": [(1, 2), (1, 3)]})
        assert sorted(kernel.run_static(database)) == [(1,), (1,)]

    def test_delta_run_matches_the_interpreter(self):
        rule, plan, kernel = kernel_for(
            "anc(X, Y) :- par(X, Z), anc(Z, Y).",
            {"par": 4, "anc": 4},
            delta_predicates=frozenset({"anc"}),
        )
        working = Database(
            {"par": [(1, 2), (2, 3), (3, 4)], "anc": [(2, 3), (3, 4), (2, 4)]}
        )
        delta = Database({"anc": [(3, 4)]})
        assert sorted(kernel.run_delta(1, working, delta)) == interpreted_heads(
            rule, plan, working, delta_position=1, delta=delta
        )

    def test_empty_body_fires_exactly_once(self):
        rule = parse_rule("h(a, b).")
        plan = plan_rule(rule, {})
        kernel = compile_rule_kernel(plan)
        assert kernel.run_static(Database()) == [("a", "b")]

    def test_arity_mismatched_tuples_are_skipped(self):
        # A relation holding mixed arities must behave exactly like
        # match_atom's length guard, on both the scan and the probe path.
        rule, plan, kernel = kernel_for("h(X, Y) :- p(X, Y).")
        database = Database({"p": [(1,), (1, 2), (1, 2, 3)]})
        assert kernel.run_static(database) == [(1, 2)]
        rule, plan, kernel = kernel_for("h(X) :- p(c, X).")
        database = Database({"p": [("c",), ("c", 1)]})
        assert kernel.run_static(database) == [(1,)]

    def test_constant_head_rule(self):
        rule, plan, kernel = kernel_for("flag(on) :- p(X, X).")
        assert kernel.run_static(Database({"p": [(1, 1), (2, 3)]})) == [("on",)]
        assert kernel.run_static(Database({"p": [(2, 3)]})) == []


# ----------------------------------------------------------------------
# Compiled-vs-interpreted parity over the examples catalogue
# ----------------------------------------------------------------------
CATALOGUE = [
    ("program_a", program_a().program, parent_forest(40, seed=5, root_count=3)),
    ("program_b", program_b().program, parent_forest(40, seed=5, root_count=3)),
    ("program_c", program_c().program, parent_forest(25, seed=5, root_count=2)),
    ("program_d", program_d(), parent_forest(40, seed=5, root_count=3)),
    ("anbn", anbn_program().program, layered_anbn_graph(5, noise_branches=3)),
    ("section7_magic", section7_transformed(), layered_anbn_graph(5, noise_branches=3)),
    (
        "same_generation",
        same_generation_program().program,
        same_generation_database(depth=3, branching=2),
    ),
    (
        "random_graph",
        program_b().program,
        labeled_random_graph(18, 40, ("par",), seed=9, prefix="john"),
    ),
]


@pytest.mark.parametrize(
    "label,program,database", CATALOGUE, ids=[entry[0] for entry in CATALOGUE]
)
def test_compiled_matches_interpreted_on_catalogue(label, program, database):
    for evaluate in (evaluate_naive, evaluate_seminaive):
        compiled = evaluate(program, database, compiled=True)
        interpreted = evaluate(program, database, compiled=False)
        assert compiled.idb_facts == interpreted.idb_facts, f"{label} model diverged"
        assert compiled.answers() == interpreted.answers(), f"{label} answers diverged"
        # The kernels change how firings are enumerated, never how many: the
        # hardware-independent cost model must be identical on both paths.
        assert (
            compiled.statistics.as_dict() == interpreted.statistics.as_dict()
        ), f"{label} statistics diverged"


def test_catalogue_rules_all_compile():
    for label, program, database in CATALOGUE:
        plan = compile_program_plan(program, database)
        for rule in program.rules:
            if not rule.is_fact():
                assert plan.kernel(rule) is not None, f"{label}: {rule} not compiled"


# ----------------------------------------------------------------------
# Hypothesis: every registered engine and both evaluator paths agree
# (strategies shared with the planner/incremental suites)
# ----------------------------------------------------------------------
from tests.datalog.strategies import PROGRAM_POOL, edge_databases, program_indexes


@settings(max_examples=50, deadline=None)
@given(program_indexes, edge_databases())
def test_all_engines_agree_with_kernels_enabled(program_index, database):
    program = PROGRAM_POOL[program_index]
    interpreted = evaluate_seminaive(program, database, compiled=False)
    assert (
        evaluate_seminaive(program, database, compiled=True).answers()
        == interpreted.answers()
    )
    assert (
        evaluate_naive(program, database, compiled=True).answers()
        == interpreted.answers()
    )
    for name in available_engines():
        try:
            result = get_engine(name).evaluate(program, database)
        except Exception as error:  # pragma: no cover - only magic can decline
            from repro.datalog.engine import EngineNotApplicableError

            if isinstance(error, EngineNotApplicableError):
                continue
            raise
        assert result.answers() == interpreted.answers(), name


# ----------------------------------------------------------------------
# EXPLAIN surface
# ----------------------------------------------------------------------
def test_zero_derivation_runs_leave_no_phantom_relations():
    # A rule that fires nothing must not leave an empty IDB relation behind:
    # both engines' result shape (relations()/repr) must match on empty input.
    program = PROGRAM_POOL[0]
    database = Database({"f": [(0, 1)]})  # no "e" facts: t derives nothing
    naive = evaluate_naive(program, database)
    seminaive = evaluate_seminaive(program, database)
    assert naive.idb_facts.relations() == {} == seminaive.idb_facts.relations()


def test_compiled_toggle_is_rejected_by_toggle_less_engines():
    from repro.errors import EvaluationError

    program = PROGRAM_POOL[0]
    database = Database({"e": [(1, 2)]})
    with pytest.raises(EvaluationError):
        get_engine("topdown").evaluate(program, database, compiled=False)


def test_magic_engine_forwards_the_toggle_to_its_delegate():
    program = parse_program(
        """
        ?t(1, Y)
        t(X, Y) :- e(X, Y).
        t(X, Y) :- t(X, Z), e(Z, Y).
        """
    )
    database = Database({"e": [(1, 2), (2, 3)]})
    magic = get_engine("magic")
    assert (
        magic.evaluate(program, database, compiled=False).answers()
        == magic.evaluate(program, database).answers()
    )


def test_explain_surfaces_slot_and_probe_compilation():
    session = QuerySession(program_b().program, parent_forest(30, seed=3))
    text = session.explain(plans=True)
    assert "kernel:" in text
    assert "slots" in text
    assert "bind" in text
    assert "delta@" in text
    # The slot-probe of the recursive body atom must be visible.
    assert "==s" in text


def test_kernel_describe_names_slots_and_head():
    _, _, kernel = kernel_for("h(Y, X) :- p(X, Y).")
    text = kernel.describe()
    assert "2 slots (X=s0, Y=s1)" in text
    assert "head <s1, s0>" in text
    assert "scan p" in text
