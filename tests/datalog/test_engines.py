"""Unit tests for the naive, semi-naive, and top-down evaluation engines."""

import pytest

from repro.datalog import Database, get_engine, parse_program

evaluate_naive = get_engine("naive").evaluate
evaluate_seminaive = get_engine("seminaive").evaluate
evaluate_topdown = get_engine("topdown").evaluate
from repro.datalog.engine.base import select_answers
from repro.datalog.atoms import Atom
from repro.errors import EvaluationError


ENGINES = [evaluate_naive, evaluate_seminaive, evaluate_topdown]


@pytest.mark.parametrize("engine", ENGINES)
class TestAncestor:
    def test_ancestors_of_john(self, engine, ancestor_a, family_database):
        result = engine(ancestor_a.program, family_database)
        assert result.answers() == {("mary",), ("sue",), ("tim",)}

    def test_all_four_programs_agree(self, engine, family_database):
        from repro.core.examples_catalog import ancestor_portfolio

        portfolio = ancestor_portfolio()
        answers = set()
        for name, program in portfolio.items():
            raw = program.program if hasattr(program, "program") else program
            answers.add(frozenset(engine(raw, family_database).answers()))
        assert len(answers) == 1

    def test_empty_database(self, engine, ancestor_a):
        result = engine(ancestor_a.program, Database())
        assert result.answers() == frozenset()


class TestTransitiveClosure:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_closure_on_cycle(self, engine, transitive_closure_program):
        database = Database({"b": [(0, 1), (1, 2), (2, 0)]})
        result = engine(transitive_closure_program, database)
        # Every ordered pair is connected on a 3-cycle.
        assert len(result.answers()) == 9

    def test_minimum_model_contains_edb_derived_facts_only(self, transitive_closure_program):
        database = Database({"b": [(0, 1)]})
        result = evaluate_seminaive(transitive_closure_program, database)
        assert result.relation("p") == {(0, 1)}
        assert result.full_model().relation("b") == {(0, 1)}


class TestFactsAndConstants:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_database_facts_of_idb_predicates_are_in_the_model(self, engine):
        # An IDB predicate may also hold database facts; the minimum model of
        # B ∪ H contains them like any other B fact, so every engine must
        # answer through them (regression: top-down used to resolve IDB
        # subgoals through rules only and dropped the database's f tuples).
        program = parse_program(
            """
            ?t(X, Y)
            f(0, 0).
            t(X, Y) :- f(X, Y).
            t(X, Y) :- t(X, Z), e(Z, Y).
            """
        )
        database = Database({"f": [(0, 1)], "e": [(1, 2)]})
        result = engine(program, database)
        assert result.answers() == {(0, 0), (0, 1), (0, 2)}

    @pytest.mark.parametrize("engine", ENGINES)
    def test_fact_rules_are_loaded(self, engine):
        program = parse_program(
            """
            ?reach(Y)
            start(c).
            reach(Y) :- start(X), edge(X, Y).
            reach(Y) :- reach(X), edge(X, Y).
            """
        )
        database = Database({"edge": [("c", "d"), ("d", "e"), ("x", "y")]})
        result = engine(program, database)
        assert result.answers() == {("d",), ("e",)}

    @pytest.mark.parametrize("engine", ENGINES)
    def test_constants_in_rule_bodies(self, engine):
        program = parse_program(
            """
            ?friend_of_ann(Y)
            friend_of_ann(Y) :- knows(ann, Y).
            """
        )
        database = Database({"knows": [("ann", "bob"), ("carl", "dan")]})
        assert engine(program, database).answers() == {("bob",)}


class TestStatistics:
    def test_seminaive_avoids_naive_refirings(self, ancestor_a):
        database = Database({"par": [(i, i + 1) for i in range(15)]})
        naive = evaluate_naive(ancestor_a.program, database)
        semi = evaluate_seminaive(ancestor_a.program, database)
        assert naive.answers() == semi.answers()
        assert semi.statistics.rule_firings < naive.statistics.rule_firings
        assert naive.statistics.duplicate_derivations > 0

    def test_iteration_guard(self, ancestor_a, family_database):
        with pytest.raises(EvaluationError):
            evaluate_seminaive(ancestor_a.program, family_database, max_iterations=1)

    def test_stats_merge(self):
        from repro.datalog.engine.stats import EvaluationStatistics

        left = EvaluationStatistics(iterations=1, rule_firings=2, facts_derived=3)
        right = EvaluationStatistics(iterations=4, rule_firings=5, facts_derived=6)
        merged = left.merge(right)
        assert merged.iterations == 5
        assert merged.rule_firings == 7
        assert merged.facts_derived == 9


class TestSelectAnswers:
    def test_constant_selection(self):
        tuples = {("john", "mary"), ("ann", "bob")}
        assert select_answers(Atom("anc", ("john", "Y")), tuples) == {("mary",)}

    def test_equality_selection(self):
        tuples = {("a", "a"), ("a", "b")}
        assert select_answers(Atom("p", ("X", "X")), tuples) == {("a",)}

    def test_boolean_selection(self):
        assert select_answers(Atom("p", ("a", "b")), {("a", "b")}) == {()}
        assert select_answers(Atom("p", ("a", "b")), {("a", "c")}) == frozenset()

    def test_free_selection_projects_in_variable_order(self):
        tuples = {("1", "2")}
        assert select_answers(Atom("p", ("X", "Y")), tuples) == {("1", "2")}


class TestTopDownRelevance:
    def test_topdown_explores_only_goal_relevant_facts(self, ancestor_b):
        database = Database()
        for i in range(30):
            database.add_edge("par", f"a{i}", f"a{i + 1}")
        database.add_edge("par", "john", "a0")
        bottom_up = evaluate_seminaive(ancestor_b.program, database)
        top_down = evaluate_topdown(ancestor_b.program, database)
        assert bottom_up.answers() == top_down.answers()
        # Bottom-up derives anc facts for every starting person, top-down only for john's calls.
        assert top_down.statistics.facts_derived <= bottom_up.statistics.facts_derived
