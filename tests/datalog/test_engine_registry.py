"""The engine registry: lookup, registration, and cross-engine answer parity."""

import pytest

from repro.core.chain import ChainProgram
from repro.core.examples_catalog import (
    program_a,
    program_b,
    program_c,
    program_d,
    same_generation_program,
    section7_program,
)
from repro.core.workloads import (
    labeled_random_graph,
    layered_anbn_graph,
    parent_forest,
    same_generation_database,
)
from repro.datalog import Database, QuerySession
from repro.datalog.engine import (
    EngineNotFoundError,
    EvaluationResult,
    FunctionEngine,
    available_engines,
    engine_descriptions,
    get_engine,
    register_engine,
    unregister_engine,
)

evaluate_seminaive = get_engine("seminaive").evaluate


# ----------------------------------------------------------------------
# Registry mechanics
# ----------------------------------------------------------------------
def test_builtin_engines_are_registered():
    assert set(available_engines()) >= {"naive", "seminaive", "topdown", "magic"}


def test_get_engine_unknown_name_raises_with_listing():
    with pytest.raises(EngineNotFoundError, match="seminaive"):
        get_engine("does-not-exist")


def test_register_rejects_silent_shadowing_and_honours_replace():
    probe = FunctionEngine("seminaive", "shadow", evaluate_seminaive)
    with pytest.raises(ValueError, match="already registered"):
        register_engine(probe)
    original = get_engine("seminaive")
    register_engine(probe, replace=True)
    try:
        assert get_engine("seminaive") is probe
    finally:
        register_engine(original, replace=True)


def test_register_and_unregister_custom_engine():
    custom = FunctionEngine("custom-test-engine", "a seminaive clone", evaluate_seminaive)
    register_engine(custom)
    try:
        assert "custom-test-engine" in available_engines()
        assert get_engine("custom-test-engine") is custom
        assert "seminaive clone" in engine_descriptions()["custom-test-engine"]
    finally:
        unregister_engine("custom-test-engine")
    assert "custom-test-engine" not in available_engines()


def test_engine_evaluate_returns_evaluation_result():
    database = parent_forest(40, seed=9, root_count=2)
    result = get_engine("naive").evaluate(program_a().program, database)
    assert isinstance(result, EvaluationResult)
    assert result.answers() == evaluate_seminaive(program_a().program, database).answers()


def test_max_iterations_is_forwarded():
    from repro.errors import EvaluationError

    database = parent_forest(120, seed=10, root_count=1)
    with pytest.raises(EvaluationError):
        get_engine("seminaive").evaluate(program_a().program, database, max_iterations=1)


def test_topdown_honours_max_iterations():
    from repro.errors import EvaluationError

    database = parent_forest(120, seed=10, root_count=1)
    with pytest.raises(EvaluationError, match="top-down"):
        get_engine("topdown").evaluate(program_a().program, database, max_iterations=1)
    result = get_engine("topdown").evaluate(program_a().program, database, max_iterations=None)
    assert result.answers()


def test_topdown_max_iterations_is_per_query_not_per_evaluator():
    from repro.datalog.engine import TopDownEvaluator

    database = parent_forest(60, seed=12, root_count=2)
    evaluator = TopDownEvaluator(program_a().program, database)
    bound = None
    first = evaluator.query(max_iterations=bound)
    used = evaluator.statistics.iterations
    # A second query on the warm, already-converged evaluator must not trip a
    # limit the first query fit within.
    assert evaluator.query(max_iterations=used) == first


def test_function_engine_rejects_unsupported_max_iterations():
    from repro.errors import EvaluationError

    def bare(program, database):
        return evaluate_seminaive(program, database)

    engine = FunctionEngine("bare", "no safety valve", bare, supports_max_iterations=False)
    database = parent_forest(30, seed=11, root_count=1)
    assert engine.evaluate(program_a().program, database).answers() is not None
    with pytest.raises(EvaluationError, match="does not support max_iterations"):
        engine.evaluate(program_a().program, database, max_iterations=5)


# ----------------------------------------------------------------------
# Engine parity on the examples catalogue
# ----------------------------------------------------------------------
def _with_goal_edge(database: Database, predicate: str, constant: str) -> Database:
    """Ensure the goal constant occurs in the data so answers are non-trivial."""
    database.add_edge(predicate, constant, "n0")
    return database


CATALOG = [
    ("ancestor_A", program_a(), parent_forest(80, seed=1, root_count=3)),
    ("ancestor_B", program_b(), parent_forest(80, seed=2, root_count=3)),
    ("ancestor_C", program_c(), parent_forest(80, seed=3, root_count=3)),
    ("ancestor_D", program_d(), _with_goal_edge(parent_forest(80, seed=4, root_count=3), "par", "john")),
    (
        "same_generation",
        same_generation_program(),
        _with_goal_edge(same_generation_database(4, branching=2), "up", "c"),
    ),
    ("section_7_anbn", section7_program(), layered_anbn_graph(6, noise_branches=2)),
    (
        "two_letter_mutual_recursion",
        ChainProgram.from_text(
            """
            ?p(c, Y)
            p(X, Y) :- b1(X, X1), q(X1, Y).
            q(X, Y) :- b2(X, Y).
            q(X, Y) :- b2(X, X1), p(X1, Y).
            """
        ),
        _with_goal_edge(labeled_random_graph(12, 40, ["b1", "b2"], seed=5), "b1", "c"),
    ),
]


@pytest.mark.parametrize("label,program,database", CATALOG, ids=[c[0] for c in CATALOG])
def test_every_registered_engine_returns_identical_answers(label, program, database):
    session = QuerySession(program, database)
    results = session.compare()  # silently skips engines that reject the program
    assert set(results) >= {"naive", "seminaive", "topdown"}
    answer_sets = {name: result.answers() for name, result in results.items()}
    reference = answer_sets["seminaive"]
    assert all(answers == reference for answers in answer_sets.values()), answer_sets


@pytest.mark.parametrize("label,program,database", CATALOG, ids=[c[0] for c in CATALOG])
def test_parity_holds_via_direct_registry_calls(label, program, database):
    program = getattr(program, "program", program)
    reference = get_engine("seminaive").evaluate(program, database).answers()
    assert get_engine("naive").evaluate(program, database).answers() == reference
    assert get_engine("topdown").evaluate(program, database).answers() == reference


# ----------------------------------------------------------------------
# Removed shims
# ----------------------------------------------------------------------
class TestShimsRemoved:
    """The PR 3 deprecation shims warned for three releases and are gone."""

    def test_evaluate_free_functions_are_gone(self):
        import repro.datalog
        import repro.datalog.engine
        import repro.datalog.engine.naive as naive_module
        import repro.datalog.engine.seminaive as seminaive_module
        import repro.datalog.engine.topdown as topdown_module

        assert not hasattr(naive_module, "evaluate_naive")
        assert not hasattr(seminaive_module, "evaluate_seminaive")
        assert not hasattr(topdown_module, "evaluate_topdown")
        for namespace in (repro.datalog, repro.datalog.engine):
            for name in ("evaluate_naive", "evaluate_seminaive", "evaluate_topdown"):
                assert not hasattr(namespace, name)
                assert name not in namespace.__all__

    def test_relation_index_is_gone(self):
        import repro.datalog.engine.base as base_module

        assert not hasattr(base_module, "RelationIndex")

    def test_registry_engines_do_not_warn(self, family_database):
        import warnings

        program = program_a().program
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for name in ("naive", "seminaive", "topdown", "magic"):
                get_engine(name).evaluate(program, family_database)
