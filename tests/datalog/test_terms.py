"""Unit tests for repro.datalog.terms."""

import pytest

from repro.datalog.terms import Constant, Variable, fresh_variable, is_constant, is_variable, make_term


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_hashable(self):
        assert len({Variable("X"), Variable("X"), Variable("Y")}) == 2

    def test_str(self):
        assert str(Variable("X1")) == "X1"

    def test_repr_roundtrip(self):
        assert eval(repr(Variable("Z"))) == Variable("Z")


class TestConstant:
    def test_equality_by_value(self):
        assert Constant("john") == Constant("john")
        assert Constant(1) != Constant(2)

    def test_string_and_int_constants_differ(self):
        assert Constant("1") != Constant(1)

    def test_str(self):
        assert str(Constant("john")) == "john"

    def test_hashable(self):
        assert len({Constant("a"), Constant("a"), Constant("b")}) == 2


class TestMakeTerm:
    def test_uppercase_is_variable(self):
        assert make_term("X") == Variable("X")
        assert make_term("Xyz") == Variable("Xyz")

    def test_underscore_is_variable(self):
        assert make_term("_foo") == Variable("_foo")

    def test_lowercase_is_constant(self):
        assert make_term("john") == Constant("john")

    def test_integer_is_constant(self):
        assert make_term(42) == Constant(42)

    def test_existing_terms_pass_through(self):
        variable = Variable("X")
        constant = Constant("c")
        assert make_term(variable) is variable
        assert make_term(constant) is constant

    def test_predicates(self):
        assert is_variable(Variable("X"))
        assert not is_variable(Constant("c"))
        assert is_constant(Constant("c"))
        assert not is_constant(Variable("X"))


class TestFreshVariable:
    def test_unused_base_is_kept(self):
        used = set()
        assert fresh_variable("X", used) == Variable("X")
        assert "X" in used

    def test_collision_appends_suffix(self):
        used = {"X"}
        first = fresh_variable("X", used)
        second = fresh_variable("X", used)
        assert first != Variable("X")
        assert first != second
        assert first.name.startswith("X")
