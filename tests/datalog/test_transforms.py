"""Unit tests for adornments, magic sets, constant propagation, and canonicalisation."""

import pytest

from repro.datalog import Database, get_engine, parse_program

evaluate_seminaive = get_engine("seminaive").evaluate
from repro.datalog.transforms import (
    adorn_program,
    adornments_used,
    binding_invariant_positions,
    collapse_database,
    collapse_edbs,
    eliminate_zero_ary,
    magic_predicates,
    magic_transform,
    propagate_goal_constant,
    rename_apart,
)
from repro.errors import ValidationError


class TestAdornment:
    def test_goal_adornment_bf(self, ancestor_a):
        adorned = adorn_program(ancestor_a.program)
        assert adorned.goal_adornment == "bf"
        assert adorned.program.goal.predicate == "anc__bf"

    def test_left_linear_produces_single_adornment(self, ancestor_a):
        adorned = adorn_program(ancestor_a.program)
        assert adornments_used(adorned) == {"anc": {"bf"}}

    def test_right_linear_body_call_stays_bound(self, ancestor_b):
        adorned = adorn_program(ancestor_b.program)
        # par(X, Z) binds Z before the recursive call anc(Z, Y), so the call is bf.
        assert adornments_used(adorned) == {"anc": {"bf"}}

    def test_edb_atoms_untouched(self, ancestor_a):
        adorned = adorn_program(ancestor_a.program)
        predicates = {atom.predicate for rule in adorned.program.rules for atom in rule.body}
        assert "par" in predicates

    def test_requires_goal(self):
        program = parse_program("p(X, Y) :- b(X, Y).")
        with pytest.raises(ValidationError):
            adorn_program(program)


class TestMagicSets:
    @pytest.fixture
    def chain_db(self):
        database = Database()
        for i in range(10):
            database.add_edge("par", f"n{i}", f"n{i + 1}")
        database.add_edge("par", "john", "n0")
        # A second chain not reachable from john: the binary-recursive original
        # derives ancestor facts for it, the magic-restricted program does not.
        for i in range(10):
            database.add_edge("par", f"m{i}", f"m{i + 1}")
        return database

    def test_answers_preserved(self, ancestor_a, ancestor_b, ancestor_c, chain_db):
        for chain in (ancestor_a, ancestor_b, ancestor_c):
            original = evaluate_seminaive(chain.program, chain_db).answers()
            transformed = magic_transform(chain.program)
            rewritten = evaluate_seminaive(transformed, chain_db).answers()
            assert original == rewritten

    def test_magic_prunes_work(self, ancestor_b, chain_db):
        original = evaluate_seminaive(ancestor_b.program, chain_db)
        transformed = evaluate_seminaive(magic_transform(ancestor_b.program), chain_db)
        assert transformed.statistics.facts_derived < original.statistics.facts_derived

    def test_magic_predicates_named(self, ancestor_a):
        transformed = magic_transform(ancestor_a.program)
        assert magic_predicates(transformed) == ["magic_anc__bf"]

    def test_requires_constant_in_goal(self, transitive_closure_program):
        with pytest.raises(ValidationError):
            magic_transform(transitive_closure_program)

    def test_seed_fact_present(self, ancestor_a):
        transformed = magic_transform(ancestor_a.program)
        seeds = [rule for rule in transformed.rules if rule.is_fact()]
        assert len(seeds) == 1
        assert seeds[0].head.predicate == "magic_anc__bf"
        assert seeds[0].head.as_fact_tuple() == ("john",)


class TestConstantPropagation:
    def test_program_a_becomes_program_d(self, ancestor_a, family_database):
        propagated = propagate_goal_constant(ancestor_a.program)
        assert propagated.is_monadic()
        original = evaluate_seminaive(ancestor_a.program, family_database).answers()
        rewritten = evaluate_seminaive(propagated, family_database).answers()
        assert original == rewritten

    def test_invariant_positions(self, ancestor_a, ancestor_b):
        assert binding_invariant_positions(ancestor_a.program) == (0,)
        # Program B passes a *different* variable to the recursive call.
        assert binding_invariant_positions(ancestor_b.program) == ()

    def test_non_invariant_binding_rejected(self, ancestor_b):
        with pytest.raises(ValidationError):
            propagate_goal_constant(ancestor_b.program)

    def test_requires_constant(self, transitive_closure_program):
        with pytest.raises(ValidationError):
            propagate_goal_constant(transitive_closure_program)


class TestRectify:
    def test_eliminate_zero_ary(self):
        program = parse_program(
            """
            ?found
            found :- edge(X, Y).
            """
        )
        rewritten = eliminate_zero_ary(program)
        assert rewritten.predicate_arities()["found"] == 1
        database = Database({"edge": [(1, 2)]})
        assert evaluate_seminaive(rewritten, database).boolean_answer() is True

    def test_collapse_edbs(self, anbn):
        collapsed, mapping = collapse_edbs(anbn.program)
        assert collapsed.edb_predicates() == {"b"}
        assert set(mapping) == {"b1", "b2"}

    def test_collapse_database(self):
        database = Database({"b1": [(1, 2)], "b2": [(3, 4)]})
        merged = collapse_database(database, {"b1": "b", "b2": "b"})
        assert merged.relation("b") == {(1, 2), (3, 4)}

    def test_collapse_requires_uniform_arity(self):
        program = parse_program("p(X) :- b(X), q(X, Y), r(Y).")
        with pytest.raises(ValueError):
            collapse_edbs(program)

    def test_rename_apart(self, ancestor_a):
        renamed = rename_apart(ancestor_a.program, "_v2")
        assert renamed.idb_predicates() == {"anc_v2"}
        assert renamed.edb_predicates() == {"par"}
