"""End-to-end tests of the asyncio HTTP server: protocol, backpressure,
drain, metrics, the multi-process load driver, and kill -9 recovery."""

import asyncio
import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.datalog.server.durable import DurableDatalogService
from repro.datalog.server.http import DatalogHTTPServer
from repro.datalog.server.runner import run_load

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")

REACH = """\
?reach($src, Y)
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- reach(X, Z), edge(Z, Y).
"""


class ServerHandle:
    """A DatalogHTTPServer running on a dedicated event-loop thread."""

    def __init__(self, data_dir, **server_kwargs):
        self.durable = DurableDatalogService(
            data_dir, fsync="never", snapshot_every=10_000
        )
        self.server = DatalogHTTPServer(self.durable, port=0, **server_kwargs)
        self.loop = asyncio.new_event_loop()
        self._stop = None
        started = threading.Event()

        async def main():
            self._stop = asyncio.Event()
            await self.server.start()
            started.set()
            await self.server.serve_until(self._stop)

        def run():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(main())

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert started.wait(10), "server did not start"

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self) -> None:
        if self.thread.is_alive():
            self.loop.call_soon_threadsafe(self._stop.set)
            self.thread.join(timeout=30)
        self.loop.close()

    # One-shot request helpers (fresh connection per call keeps tests simple).
    def post(self, path, body):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=30)
        try:
            conn.request(
                "POST", path, json.dumps(body), {"Content-Type": "application/json"}
            )
            response = conn.getresponse()
            return response.status, json.loads(response.read() or b"{}"), response
        finally:
            conn.close()

    def get(self, path):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=30)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            return response.status, response.read().decode(), response
        finally:
            conn.close()


@pytest.fixture
def server(tmp_path):
    handle = ServerHandle(tmp_path / "data")
    yield handle
    handle.stop()


def install_reach(handle):
    status, body, _ = handle.post("/register", {"name": "reach", "source": REACH})
    assert status == 200, body
    status, body, _ = handle.post(
        "/add_facts",
        {"facts": [["edge", ["a", "b"]], ["edge", ["b", "c"]], ["edge", ["c", "d"]]]},
    )
    assert (status, body) == (200, {"added": 3})


# ----------------------------------------------------------------------
# Protocol happy path and error mapping
# ----------------------------------------------------------------------
class TestEndpoints:
    def test_register_execute_write_cycle(self, server):
        install_reach(server)
        status, body, _ = server.post(
            "/execute", {"name": "reach", "params": {"src": "a"}}
        )
        assert (status, body) == (200, {"answers": [["b"], ["c"], ["d"]]})
        status, body, _ = server.post(
            "/remove_facts", {"facts": [["edge", ["c", "d"]]]}
        )
        assert (status, body) == (200, {"removed": 1})
        status, body, _ = server.post(
            "/execute", {"name": "reach", "params": {"src": "a"}}
        )
        assert body == {"answers": [["b"], ["c"]]}

    def test_execute_many_and_prepare(self, server):
        install_reach(server)
        status, body, _ = server.post("/prepare", {"name": "reach"})
        assert (status, body) == (200, {"parameters": ["src"]})
        status, body, _ = server.post(
            "/execute_many",
            {"name": "reach", "bindings": [{"src": "a"}, {"src": "c"}, {"src": "zzz"}]},
        )
        assert body == {"answers": [[["b"], ["c"], ["d"]], [["d"]], []]}

    def test_materialize_and_dematerialize(self, server):
        install_reach(server)
        status, body, _ = server.post(
            "/materialize", {"name": "reach", "params": {"src": "a"}}
        )
        assert (status, body) == (200, {"ok": True})
        status, body, _ = server.get("/statistics")
        assert json.loads(body)["materialized_views"] == 1
        status, body, _ = server.post(
            "/dematerialize", {"name": "reach", "params": {"src": "a"}}
        )
        assert (status, body) == (200, {"dropped": True})

    def test_healthz_and_statistics(self, server):
        status, body, _ = server.get("/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok" and payload["draining"] is False
        install_reach(server)
        status, body, _ = server.get("/statistics")
        stats = json.loads(body)
        assert stats["database_facts"] == 3
        assert stats["wal_records"] == 2  # register + one batch
        assert "snapshots_taken" in stats

    def test_error_mapping(self, server):
        status, body, _ = server.post("/execute", {"name": "missing"})
        assert status == 404 and "missing" in body["error"]
        status, body, _ = server.post("/register", {"name": "x"})
        assert status == 400 and "source" in body["error"]
        status, body, _ = server.post("/no_such_endpoint", {})
        assert status == 404
        status, _, _ = server.get("/execute")
        assert status == 405
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request(
                "POST", "/execute", b"{not json", {"Content-Type": "application/json"}
            )
            response = conn.getresponse()
            assert response.status == 400
            assert "invalid JSON" in json.loads(response.read())["error"]
        finally:
            conn.close()
        status, body, _ = server.post(
            "/register", {"name": "bad", "source": REACH, "transforms": ["bogus"]}
        )
        assert status == 400 and "unknown transform" in body["error"]

    def test_register_rejects_invalid_programs_without_wal_record(self, server):
        """Unsafe or unstratifiable programs get a 400 with the same
        diagnostic every other surface prints, and — because the durable
        layer applies before it logs — leave no WAL record behind."""
        install_reach(server)
        records_before = server.durable._wal.record_count
        status, body, _ = server.post(
            "/register",
            {"name": "win", "source": "?win(X)\nwin(X) :- move(X, Y), not win(Y)."},
        )
        assert status == 400
        assert "not stratifiable" in body["error"]
        assert "win -> win" in body["error"]
        status, body, _ = server.post(
            "/register",
            {"name": "loose", "source": "?u(X)\nu(X) :- n(X), not r(X, Z)."},
        )
        assert status == 400 and "unsafe" in body["error"]
        assert server.durable._wal.record_count == records_before
        status, body, _ = server.get("/statistics")
        assert json.loads(body)["registered_queries"] == 1

    def test_register_accepts_stratified_negation_and_aggregates(self, server):
        source = """
        ?u(X)
        n(X) :- edge(X, Y).
        n(Y) :- edge(X, Y).
        r(Y) :- edge(a, Y).
        r(Y) :- r(X), edge(X, Y).
        u(X) :- n(X), not r(X).
        """
        status, body, _ = server.post(
            "/register", {"name": "unreach", "source": source}
        )
        assert status == 200, body
        server.post(
            "/add_facts",
            {"facts": [["edge", ["a", "b"]], ["edge", ["c", "d"]]]},
        )
        status, body, _ = server.post("/execute", {"name": "unreach"})
        assert (status, body) == (200, {"answers": [["a"], ["c"], ["d"]]})

    def test_keep_alive_serves_multiple_requests(self, server):
        install_reach(server)
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            for _ in range(3):
                conn.request(
                    "POST",
                    "/execute",
                    json.dumps({"name": "reach", "params": {"src": "a"}}),
                    {"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                assert response.status == 200
                assert json.loads(response.read())["answers"]
        finally:
            conn.close()


# ----------------------------------------------------------------------
# Malformed framing gets an HTTP error, not a dropped connection
# ----------------------------------------------------------------------
class TestProtocolErrors:
    @staticmethod
    def raw_exchange(port, data):
        """Send raw bytes, reading concurrently until the server closes.

        Reading in parallel matters: the server may answer (and reset the
        connection) while the request is still being sent — a sequential
        send-then-read would lose the response to the RST.
        """
        import socket

        received = []
        with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:

            def drain():
                try:
                    while chunk := sock.recv(4096):
                        received.append(chunk)
                except OSError:
                    pass

            reader = threading.Thread(target=drain)
            reader.start()
            try:
                sock.sendall(data)
            except OSError:
                pass  # server answered and reset mid-send; the reader has it
            reader.join(timeout=10)
        return b"".join(received)

    def test_malformed_request_line_gets_400(self, server):
        response = self.raw_exchange(server.port, b"GARBAGE\r\n\r\n")
        assert response.startswith(b"HTTP/1.1 400 ")
        assert b"malformed request line" in response
        # The server is still healthy afterwards.
        assert server.get("/healthz")[0] == 200

    def test_non_numeric_content_length_gets_400(self, server):
        response = self.raw_exchange(
            server.port,
            b"POST /healthz HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        )
        assert response.startswith(b"HTTP/1.1 400 ")
        assert b"Content-Length" in response

    def test_negative_content_length_gets_400(self, server):
        response = self.raw_exchange(
            server.port,
            b"POST /healthz HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
        )
        assert response.startswith(b"HTTP/1.1 400 ")

    def test_oversized_header_block_gets_413(self, server):
        request = (
            b"GET /healthz HTTP/1.1\r\nX-Junk: " + b"a" * (128 * 1024) + b"\r\n\r\n"
        )
        response = self.raw_exchange(server.port, request)
        assert response.startswith(b"HTTP/1.1 413 ")
        assert b"header block too large" in response


# ----------------------------------------------------------------------
# Backpressure and drain
# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_write_queue_full_yields_429_with_retry_after(self, tmp_path):
        handle = ServerHandle(tmp_path / "data", max_pending_writes=0)
        try:
            status, body, response = handle.post(
                "/add_facts", {"facts": [["edge", ["a", "b"]]]}
            )
            assert status == 429
            assert "write queue full" in body["error"]
            assert response.getheader("Retry-After") == "1"
            # Reads are not admission-controlled.
            assert handle.get("/healthz")[0] == 200
        finally:
            handle.stop()

    def test_drain_rejects_writes_serves_reads(self, server):
        install_reach(server)
        server.durable.begin_drain()
        try:
            status, body, response = server.post(
                "/add_facts", {"facts": [["edge", ["x", "y"]]]}
            )
            assert status == 503
            assert response.getheader("Retry-After") is not None
            status, body, _ = server.post(
                "/execute", {"name": "reach", "params": {"src": "a"}}
            )
            assert status == 200 and body["answers"]
            status, body, _ = server.get("/healthz")
            assert json.loads(body)["draining"] is True
        finally:
            server.durable.service.end_drain()

    def test_shutdown_severs_idle_keep_alive_connections(self, tmp_path):
        """A connection parked between keep-alive requests must not stall
        the drain: the server severs it once in-flight work finished."""
        handle = ServerHandle(tmp_path / "data")
        conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=10)
        try:
            conn.request("GET", "/healthz")
            assert conn.getresponse().read()  # connection now idle, held open
            handle.stop()
            assert not handle.thread.is_alive()
        finally:
            conn.close()

    def test_shutdown_completes_under_sustained_keep_alive_reads(self, tmp_path):
        """Reads hammering over keep-alive connections must not starve the
        drain: each open connection is answered at most once more (with
        Connection: close) and the listener refuses replacements."""
        handle = ServerHandle(tmp_path / "data")
        stop_flag = threading.Event()
        served = []

        def hammer():
            conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=5)
            try:
                while not stop_flag.is_set():
                    try:
                        conn.request("GET", "/healthz")
                        response = conn.getresponse()
                        response.read()
                        served.append(response.status)
                    except Exception:
                        conn.close()
                        conn = http.client.HTTPConnection(
                            "127.0.0.1", handle.port, timeout=5
                        )
            finally:
                conn.close()

        threads = [threading.Thread(target=hammer, daemon=True) for _ in range(2)]
        for thread in threads:
            thread.start()
        try:
            deadline = threading.Event()
            while len(served) < 10 and not deadline.wait(0.01):
                pass  # let real traffic flow before draining
            handle.stop()  # would hang (and fail the join) if reads starve it
            assert not handle.thread.is_alive()
        finally:
            stop_flag.set()
            for thread in threads:
                thread.join(timeout=10)
        assert len(served) >= 10

    def test_graceful_stop_snapshots_state(self, tmp_path):
        handle = ServerHandle(tmp_path / "data")
        install_reach(handle)
        handle.stop()
        assert os.path.getsize(tmp_path / "data" / "wal.log") == 0
        recovered = DurableDatalogService(tmp_path / "data")
        assert recovered.recovery.snapshot_loaded
        assert recovered.execute("reach", {"src": "a"}) == frozenset(
            {("b",), ("c",), ("d",)}
        )
        recovered.close()


# ----------------------------------------------------------------------
# Metrics endpoint
# ----------------------------------------------------------------------
class TestMetricsEndpoint:
    def test_prometheus_text_exposition(self, server):
        install_reach(server)
        server.post("/execute", {"name": "reach", "params": {"src": "a"}})
        server.post("/execute", {"name": "reach", "params": {"src": "a"}})
        status, text, response = server.get("/metrics")
        assert status == 200
        assert response.getheader("Content-Type").startswith("text/plain")
        assert "# TYPE repro_datalog_executions counter" in text
        assert "# TYPE repro_datalog_database_facts gauge" in text
        assert re.search(
            r'repro_http_requests_total\{endpoint="execute",status="200"\} 2', text
        )
        assert 'repro_http_request_seconds_bucket{endpoint="execute",le="+Inf"}' in text
        assert "repro_http_pending_writes 0" in text

    def test_counters_stay_monotonic_across_writes_and_scrapes(self, server):
        install_reach(server)
        for step in range(3):
            server.post("/execute", {"name": "reach", "params": {"src": "a"}})
            server.post("/add_facts", {"facts": [["edge", ["n", str(step)]]]})
            status, _, _ = server.get("/metrics")
            assert status == 200  # a regression would surface as 500


# ----------------------------------------------------------------------
# Multi-process load driver
# ----------------------------------------------------------------------
class TestLoadDriver:
    def test_run_load_two_processes_over_real_sockets(self, server):
        report = run_load(
            "127.0.0.1", server.port, processes=2, requests_per_process=25
        )
        assert report.processes == 2
        assert report.errors == 0
        assert report.total_requests + report.rejected >= 50
        assert len(report.read_latencies) > len(report.write_latencies)
        summary = report.as_dict()
        assert summary["read_p95"] >= summary["read_p50"] > 0
        assert summary["requests_per_second"] > 0
        assert "read_p99" in summary and "write_p99" in summary


# ----------------------------------------------------------------------
# kill -9 the real subprocess server, restart, demand the exact model
# ----------------------------------------------------------------------
class TestKillAndRestart:
    def start_server(self, data_dir, *extra):
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", str(data_dir), *extra],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        line = process.stdout.readline()
        match = re.match(r"READY (\S+) (\d+)", line)
        assert match, (line, process.stderr.read() if process.poll() is not None else "")
        return process, int(match.group(2))

    def request(self, port, method, path, body=None):
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            payload = json.dumps(body) if body is not None else None
            conn.request(
                method, path, payload, {"Content-Type": "application/json"}
            )
            response = conn.getresponse()
            return response.status, json.loads(response.read() or b"{}")
        finally:
            conn.close()

    def test_sigkill_then_restart_recovers_exact_model(self, tmp_path):
        data_dir = tmp_path / "data"
        process, port = self.start_server(data_dir, "--fsync", "always")
        try:
            assert self.request(
                port, "POST", "/register", {"name": "reach", "source": REACH}
            )[0] == 200
            assert self.request(
                port,
                "POST",
                "/add_facts",
                {"facts": [["edge", ["a", "b"]], ["edge", ["b", "c"]]]},
            ) == (200, {"added": 2})
            assert self.request(
                port, "POST", "/materialize", {"name": "reach", "params": {"src": "a"}}
            )[0] == 200
            assert self.request(
                port, "POST", "/remove_facts", {"facts": [["edge", ["b", "c"]]]}
            ) == (200, {"removed": 1})
            _, reference = self.request(
                port, "POST", "/execute", {"name": "reach", "params": {"src": "a"}}
            )
            _, stats = self.request(port, "GET", "/statistics")
        finally:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)

        restarted, port = self.start_server(data_dir)
        try:
            _, recovered = self.request(
                port, "POST", "/execute", {"name": "reach", "params": {"src": "a"}}
            )
            _, recovered_stats = self.request(port, "GET", "/statistics")
            assert recovered == reference
            assert recovered_stats["database_facts"] == stats["database_facts"]
            assert recovered_stats["materialized_views"] == 1
            assert recovered_stats["registered_queries"] == 1
        finally:
            restarted.send_signal(signal.SIGTERM)
            assert restarted.wait(timeout=30) == 0


# ----------------------------------------------------------------------
# Request deadlines, budgets, and disconnect cancellation
# ----------------------------------------------------------------------
UNBOUND_TC = """\
?reach(X, Y)
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- reach(X, Z), edge(Z, Y).
"""


class TestRequestDeadlines:
    def test_zero_timeout_returns_408(self, server):
        install_reach(server)
        status, body, _ = server.post(
            "/execute", {"name": "reach", "params": {"src": "a"}, "timeout": 0}
        )
        assert status == 408
        assert "deadline" in body["error"]
        _, stats, _ = server.get("/statistics")
        assert json.loads(stats)["timeouts"] == 1

    def test_budget_abort_returns_503_with_retry_after(self, server):
        install_reach(server)
        status, body, response = server.post(
            "/execute",
            {
                "name": "reach",
                "params": {"src": "a"},
                "fresh": True,
                "budget": {"max_rounds": 1},
            },
        )
        assert status == 503
        assert "budget" in body["error"]
        assert response.getheader("Retry-After") is not None

    def test_bad_guard_fields_are_400(self, server):
        install_reach(server)
        status, body, _ = server.post(
            "/execute",
            {"name": "reach", "params": {"src": "a"}, "budget": {"max_disk": 1}},
        )
        assert status == 400 and "max_disk" in body["error"]
        status, body, _ = server.post(
            "/execute", {"name": "reach", "params": {"src": "a"}, "timeout": "fast"}
        )
        assert status == 400 and "timeout" in body["error"]

    def test_server_default_timeout_cannot_be_loosened(self, tmp_path):
        handle = ServerHandle(tmp_path / "data", request_timeout=0)
        try:
            install_reach(handle)
            # No timeout field: the server default applies.
            status, body, _ = handle.post(
                "/execute", {"name": "reach", "params": {"src": "a"}}
            )
            assert status == 408
            # A looser request timeout must not override the default.
            status, body, _ = handle.post(
                "/execute", {"name": "reach", "params": {"src": "a"}, "timeout": 60}
            )
            assert status == 408
        finally:
            handle.stop()

    def test_slow_query_counter_in_metrics(self, tmp_path):
        handle = ServerHandle(tmp_path / "data", slow_query_threshold=0.0)
        try:
            install_reach(handle)
            status, _, _ = handle.post(
                "/execute", {"name": "reach", "params": {"src": "a"}}
            )
            assert status == 200
            _, metrics, _ = handle.get("/metrics")
            match = re.search(r"^repro_http_slow_queries (\d+)$", metrics, re.M)
            assert match and int(match.group(1)) >= 1
        finally:
            handle.stop()

    def test_disconnect_cancels_running_query(self, server):
        # A deliberately heavy query (full transitive closure of a ring) so
        # the evaluation is still running when the client goes away; the
        # watchdog must flip the cancellation token and the engine abort at
        # its next checkpoint.
        status, _, _ = server.post(
            "/register", {"name": "tc", "source": UNBOUND_TC}
        )
        assert status == 200
        nodes = 500  # ~1.1s of evaluation: ample room to disconnect first
        edges = [["edge", [f"n{i}", f"n{(i + 1) % nodes}"]] for i in range(nodes)]
        status, _, _ = server.post("/add_facts", {"facts": edges})
        assert status == 200

        import socket
        import time

        payload = json.dumps({"name": "tc", "fresh": True}).encode()
        raw = socket.create_connection(("127.0.0.1", server.port), timeout=10)
        raw.sendall(
            b"POST /execute HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\n"
            + f"Content-Length: {len(payload)}\r\n\r\n".encode()
            + payload
        )
        time.sleep(0.1)  # let dispatch start evaluating
        raw.close()      # the disconnect the watchdog must notice

        deadline = time.time() + 20
        cancellations = 0
        while time.time() < deadline:
            _, stats, _ = server.get("/statistics")
            cancellations = json.loads(stats)["cancellations"]
            if cancellations:
                break
            time.sleep(0.1)
        assert cancellations >= 1
