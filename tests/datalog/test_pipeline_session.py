"""Transform pipelines (provenance) and the QuerySession facade."""

import pytest

from repro.core.examples_catalog import program_a, section7_program
from repro.core.magic_chain import ChainMagic
from repro.core.propagation import MonadicRewrite
from repro.core.workloads import layered_anbn_graph, parent_forest
from repro.datalog import Database, QuerySession, parse_program
from repro.datalog.transforms import (
    Adorn,
    FunctionTransform,
    MagicSets,
    Pipeline,
    PropagateConstants,
    Rectify,
)
from repro.errors import ValidationError

DATABASE = parent_forest(60, seed=21, root_count=2)


# ----------------------------------------------------------------------
# Pipeline
# ----------------------------------------------------------------------
def test_empty_pipeline_is_identity_with_no_stages():
    outcome = Pipeline().apply(program_a().program)
    assert outcome.program is program_a().program or outcome.program == program_a().program
    assert outcome.stages == ()
    assert "identity" in outcome.describe()


def test_pipeline_records_per_stage_provenance():
    program = program_a().program
    pipeline = Pipeline([Rectify(), MagicSets()])
    outcome = pipeline.apply(program)
    assert [stage.name for stage in outcome.stages] == ["rectify", "magic"]
    # Rectify is a no-op here (no zero-ary predicates); magic adds rules.
    assert not outcome.stage("rectify").changed()
    assert outcome.stage("magic").changed()
    assert outcome.stage("magic").rules_added > 0
    assert outcome.stage("magic").input_program == program
    assert outcome.stage("magic").output_program == outcome.program
    with pytest.raises(KeyError):
        outcome.stage("nonexistent")


def test_pipeline_then_is_immutable_composition():
    base = Pipeline([Rectify()])
    extended = base.then(MagicSets())
    assert len(base) == 1
    assert len(extended) == 2
    assert [t.name for t in extended.transforms] == ["rectify", "magic"]


def test_pipeline_rejects_non_transforms():
    with pytest.raises(TypeError):
        Pipeline([object()])


def test_function_transform_wraps_plain_callables():
    seen = []

    def tag(program):
        seen.append(program)
        return program

    outcome = Pipeline([FunctionTransform("tag", tag)]).apply(program_a().program)
    assert seen and outcome.stages[0].name == "tag"


def test_standard_transforms_preserve_answers():
    program = program_a().program
    baseline = QuerySession(program, DATABASE).answers()
    for transform in (MagicSets(), PropagateConstants(), Adorn(), MonadicRewrite()):
        transformed = QuerySession(program, DATABASE).with_transforms(transform)
        assert transformed.answers() == baseline, transform.name


def test_chain_magic_transform_preserves_answers():
    chain = section7_program()
    database = layered_anbn_graph(6, noise_branches=2)
    plain = QuerySession(chain, database)
    magic = plain.with_transforms(ChainMagic())
    assert magic.answers() == plain.answers()
    assert magic.provenance.stage("chain-magic").rules_added > 0


# ----------------------------------------------------------------------
# QuerySession
# ----------------------------------------------------------------------
def test_session_accepts_chain_program_wrappers():
    session = QuerySession(program_a(), DATABASE)
    assert session.program == program_a().program


def test_session_rejects_non_programs():
    with pytest.raises(TypeError):
        QuerySession("not a program", DATABASE)


def test_with_transforms_returns_new_session():
    base = QuerySession(program_a(), DATABASE)
    derived = base.with_transforms(MagicSets())
    assert base.pipeline.transforms == ()
    assert [t.name for t in derived.pipeline.transforms] == ["magic"]
    assert derived is not base


def test_with_database_swaps_data_only():
    other = Database()
    other.add_edge("par", "john", "only")
    session = QuerySession(program_a(), DATABASE).with_database(other)
    assert session.answers() == frozenset({("only",)})


def test_evaluate_caches_per_engine_and_fresh_forces_rerun():
    session = QuerySession(program_a(), DATABASE)
    first = session.evaluate()
    assert session.evaluate() is first
    assert session.evaluate(fresh=True) is not first
    assert session.evaluate("naive") is not session.evaluate("seminaive")


def test_answers_track_database_mutations_automatically():
    database = Database({"par": [("john", "mary")]})
    session = QuerySession(program_a(), database)
    assert session.answers() == frozenset({("mary",)})
    database.add_fact("par", ("mary", "sue"))
    # The database version bump invalidates the session's result cache.
    assert session.answers() == frozenset({("mary",), ("sue",)})
    database.remove_relation("par")
    assert session.answers() == frozenset()
    # fresh/refresh remain as explicit escape hatches (e.g. for timing).
    assert session.answers(fresh=True) == frozenset()
    assert session.refresh().answers() == frozenset()


def test_with_database_reuses_pipeline_outcome():
    session = QuerySession(program_a(), DATABASE).with_transforms(MagicSets())
    outcome = session.provenance
    other = Database({"par": [("john", "only")]})
    moved = session.with_database(other)
    assert moved.provenance is outcome
    assert moved.answers() == frozenset({("only",)})


def test_transformed_program_is_computed_once():
    session = QuerySession(program_a(), DATABASE).with_transforms(MagicSets())
    assert session.transformed_program is session.transformed_program
    assert session.provenance is session.provenance


def test_explain_mentions_stages():
    session = QuerySession(program_a(), DATABASE).with_transforms(MagicSets())
    text = session.explain()
    assert "magic" in text and "goal" in text


def test_compare_explicit_engine_list_propagates_errors():
    # A goal without constants: the magic engine must reject it loudly when
    # explicitly requested, but be skipped by the default portfolio.
    program = parse_program(
        """
        ?anc(X, Y)
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- anc(X, Z), par(Z, Y).
        """
    )
    from repro.datalog.engine import EngineNotApplicableError

    session = QuerySession(program, DATABASE)
    portfolio = session.compare()
    assert "magic" not in portfolio and "seminaive" in portfolio
    with pytest.raises(EngineNotApplicableError):
        session.compare(engines=["magic"])


def test_compare_propagates_pipeline_failures():
    # A failing session-level transform is a total failure, not an empty
    # "all engines agree" dict.
    session = QuerySession(section7_program(), DATABASE).with_transforms(MonadicRewrite())
    with pytest.raises(ValidationError, match="cannot be propagated"):
        session.compare()


def test_compare_propagates_broken_engine_transforms():
    # A registered engine whose rewrite *succeeds* but emits an invalid
    # program is a bug, not a rejection: compare() must surface it.
    from repro.datalog.engine import TransformedEngine, register_engine, unregister_engine
    from repro.datalog import Program
    from repro.datalog.parser import parse_atom

    def broken(program):
        return Program(program.rules, parse_atom("ghost(john, Y)"))

    register_engine(TransformedEngine("broken-test", "emits invalid programs", broken))
    try:
        with pytest.raises(ValidationError, match="ghost"):
            QuerySession(program_a(), DATABASE).compare()
    finally:
        unregister_engine("broken-test")


def test_replaced_engine_does_not_serve_stale_cache():
    from repro.datalog.engine import FunctionEngine, get_engine, register_engine

    session = QuerySession(program_a(), DATABASE)
    original_engine = get_engine("seminaive")
    first = session.evaluate("seminaive")
    clone = FunctionEngine("seminaive", "replacement", original_engine.evaluate)
    register_engine(clone, replace=True)
    try:
        assert session.evaluate("seminaive") is not first
        assert session.evaluate("seminaive").answers() == first.answers()
    finally:
        register_engine(original_engine, replace=True)


def test_compare_propagates_invalid_program_errors():
    # An invalid program (goal predicate undefined) fails every engine's
    # validate(); compare() must raise, not return an empty dict.
    from repro.datalog import Program
    from repro.datalog.parser import parse_atom, parse_rule

    invalid = Program((parse_rule("anc(X, Y) :- par(X, Y)."),), parse_atom("ghost(john, Y)"))
    with pytest.raises(ValidationError, match="ghost"):
        QuerySession(invalid, DATABASE).compare()


def test_compare_propagates_genuine_evaluation_failures():
    # A too-small iteration budget is an evaluation failure, not a program
    # rejection: the default portfolio must not swallow it into a partial
    # (or empty) result dict that vacuously "agrees".
    from repro.errors import EvaluationError

    session = QuerySession(program_a(), DATABASE)
    with pytest.raises(EvaluationError):
        session.compare(max_iterations=1)


def test_monadic_rewrite_raises_on_nonregular_language():
    with pytest.raises(ValidationError, match="cannot be propagated"):
        MonadicRewrite().apply(section7_program().program)


def test_propagation_result_session_roundtrip():
    from repro.core.propagation import propagate_selection

    result = propagate_selection(program_a())
    session = result.session(DATABASE)
    assert session.answers() == QuerySession(program_a(), DATABASE).answers()
