"""Unit tests for the Datalog parser."""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.parser import parse_atom, parse_facts, parse_program, parse_rule, parse_term
from repro.datalog.terms import Constant, Variable
from repro.errors import ParseError


class TestTerms:
    def test_variable(self):
        assert parse_term("X1") == Variable("X1")

    def test_constant_identifier(self):
        assert parse_term("john") == Constant("john")

    def test_integer(self):
        assert parse_term("42") == Constant(42)

    def test_negative_integer(self):
        assert parse_term("-3") == Constant(-3)

    def test_quoted_string(self):
        assert parse_term('"John Smith"') == Constant("John Smith")


class TestAtomsAndRules:
    def test_atom(self):
        assert parse_atom("anc(john, Y)") == Atom("anc", (Constant("john"), Variable("Y")))

    def test_zero_ary_atom(self):
        assert parse_atom("flag") == Atom("flag", ())

    def test_rule(self):
        rule = parse_rule("anc(X, Y) :- anc(X, Z), par(Z, Y).")
        assert rule.head.predicate == "anc"
        assert [a.predicate for a in rule.body] == ["anc", "par"]

    def test_fact(self):
        rule = parse_rule("par(john, mary).")
        assert rule.is_fact()
        assert rule.head.is_ground()

    def test_trailing_period_optional(self):
        assert parse_rule("p(X) :- b(X)") == parse_rule("p(X) :- b(X).")


class TestPrograms:
    def test_example_1_1_program_a(self):
        program = parse_program(
            """
            ?anc(john, Y)
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- anc(X, Z), par(Z, Y).
            """
        )
        assert program.goal == Atom("anc", (Constant("john"), Variable("Y")))
        assert len(program.rules) == 2
        assert program.idb_predicates() == {"anc"}
        assert program.edb_predicates() == {"par"}

    def test_comments_are_ignored(self):
        program = parse_program(
            """
            % a comment
            p(X) :- b(X).  # trailing comment
            """
        )
        assert len(program.rules) == 1

    def test_goal_is_optional(self):
        program = parse_program("p(X) :- b(X).")
        assert program.goal is None

    def test_multiple_goals_rejected(self):
        with pytest.raises(ParseError):
            parse_program("?p(X)\n?q(X)\np(X) :- b(X).")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_program("p(X) :- b(X) & c(X).")

    def test_parse_facts(self):
        facts = parse_facts("par(john, mary). par(mary, sue).")
        assert len(facts) == 2
        assert all(fact.is_ground() for fact in facts)

    def test_parse_facts_rejects_rules(self):
        with pytest.raises(ParseError):
            parse_facts("p(X) :- b(X).")

    def test_parse_facts_rejects_non_ground(self):
        with pytest.raises(ParseError):
            parse_facts("par(X, mary).")


class TestRoundTrip:
    def test_pretty_parse_round_trip(self, ancestor_a):
        from repro.datalog.pretty import format_program

        text = format_program(ancestor_a.program)
        reparsed = parse_program(text)
        assert reparsed.rules == ancestor_a.program.rules
        assert reparsed.goal == ancestor_a.program.goal
