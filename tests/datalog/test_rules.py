"""Unit tests for repro.datalog.rules."""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.rules import Rule, fact
from repro.datalog.terms import Constant, Variable
from repro.errors import UnsafeRuleError


def make_ancestor_rule():
    return Rule(
        Atom("anc", ("X", "Y")),
        (Atom("anc", ("X", "Z")), Atom("par", ("Z", "Y"))),
    )


class TestRuleBasics:
    def test_is_fact(self):
        assert fact(Atom("par", ("a", "b"))).is_fact()
        assert not make_ancestor_rule().is_fact()

    def test_variables_in_order(self):
        rule = make_ancestor_rule()
        assert rule.variables() == (Variable("X"), Variable("Y"), Variable("Z"))

    def test_constants(self):
        rule = Rule(Atom("p", ("X",)), (Atom("b", ("c", "X")),))
        assert rule.constants() == (Constant("c"),)

    def test_body_predicates(self):
        assert make_ancestor_rule().body_predicates() == ("anc", "par")

    def test_str_round_trips_shape(self):
        text = str(make_ancestor_rule())
        assert text.startswith("anc(X, Y) :- ")
        assert text.endswith(".")


class TestSafety:
    def test_safe_rule(self):
        assert make_ancestor_rule().is_safe()

    def test_unsafe_rule(self):
        rule = Rule(Atom("p", ("X", "Y")), (Atom("b", ("X", "X")),))
        assert not rule.is_safe()
        with pytest.raises(UnsafeRuleError):
            rule.check_safe()

    def test_ground_fact_is_safe(self):
        assert fact(Atom("p", ("a",))).is_safe()


class TestRewriting:
    def test_substitute(self):
        rule = make_ancestor_rule()
        bound = rule.substitute({Variable("X"): Constant("john")})
        assert bound.head == Atom("anc", ("john", "Y"))
        assert bound.body[0] == Atom("anc", ("john", "Z"))

    def test_rename_variables(self):
        rule = make_ancestor_rule()
        renamed = rule.rename_variables("_1")
        assert Variable("X_1") in renamed.variables()
        assert not set(rule.variables()) & set(renamed.variables())
