"""Deterministic fault injection: seam semantics, WAL append atomicity and
poisoning, snapshot atomicity, and the durable facade's acknowledged-prefix
contract under scripted disk failures."""

import os

import pytest

from repro.datalog.server.durable import DurableDatalogService
from repro.datalog.server.faults import (
    FAULT_KINDS,
    SEAMS,
    Fault,
    FaultInjected,
    PartialWrite,
    ScriptedFaults,
)
from repro.datalog.server.snapshot import SnapshotStore
from repro.datalog.server.wal import WriteAheadLog


# ----------------------------------------------------------------------
# ScriptedFaults semantics
# ----------------------------------------------------------------------
class TestScriptedFaults:
    def test_unknown_seam_rejected(self):
        with pytest.raises(ValueError, match="unknown fault seam"):
            Fault("disk.write", 0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("wal.fsync", 0, kind="explode")

    def test_duplicate_script_entries_rejected(self):
        with pytest.raises(ValueError, match="duplicate fault"):
            ScriptedFaults([Fault("wal.fsync", 0), Fault("wal.fsync", 0)])

    def test_fires_exactly_at_scripted_index(self):
        faults = ScriptedFaults([Fault("wal.fsync", 2)])
        faults.check("wal.fsync")
        faults.check("wal.fsync")
        with pytest.raises(FaultInjected):
            faults.check("wal.fsync")
        faults.check("wal.fsync")  # one-shot: later calls pass
        assert faults.calls("wal.fsync") == 4
        assert [(f.op, f.index) for f in faults.injected] == [("wal.fsync", 2)]

    def test_seams_are_independent(self):
        faults = ScriptedFaults([Fault("wal.fsync", 0)])
        faults.check("snapshot.fsync")  # different seam, different counter
        with pytest.raises(FaultInjected):
            faults.check("wal.fsync")

    def test_partial_write_carries_torn_prefix(self):
        faults = ScriptedFaults([Fault("wal.append", 0, "partial", fraction=0.25)])
        with pytest.raises(PartialWrite) as excinfo:
            faults.filter_write("wal.append", b"abcdefgh")
        assert excinfo.value.torn == b"ab"
        assert isinstance(excinfo.value.error, FaultInjected)

    def test_delay_returns_payload(self):
        faults = ScriptedFaults([Fault("wal.append", 0, "delay", delay=0.0)])
        assert faults.filter_write("wal.append", b"xyz") == b"xyz"

    def test_injected_error_is_oserror(self):
        # Production code has no test-only branches: the injected failure
        # must travel the same except clauses a real disk error does.
        assert issubclass(FaultInjected, OSError)

    def test_registry_constants_cover_docs(self):
        assert "fail" in FAULT_KINDS and "partial" in FAULT_KINDS
        assert "wal.append" in SEAMS and "snapshot.replace" in SEAMS


# ----------------------------------------------------------------------
# WAL append atomicity under injected failures
# ----------------------------------------------------------------------
class TestWalFaults:
    def test_failed_fsync_rolls_back_and_log_stays_usable(self, tmp_path):
        path = tmp_path / "wal.log"
        faults = ScriptedFaults([Fault("wal.fsync", 1)])
        wal = WriteAheadLog(path, faults=faults)
        wal.append({"kind": "a"})
        with pytest.raises(FaultInjected):
            wal.append({"kind": "b"})
        # The failed record must not replay: it was never acknowledged.
        records, torn = WriteAheadLog.replay(path)
        assert [r.payload["kind"] for r in records] == ["a"]
        assert not torn
        # And the log keeps accepting appends at the right offset.
        wal.append({"kind": "c"})
        records, torn = WriteAheadLog.replay(path)
        assert [r.payload["kind"] for r in records] == ["a", "c"]
        assert not torn
        wal.close()

    def test_partial_write_lands_torn_bytes_then_repairs(self, tmp_path):
        path = tmp_path / "wal.log"
        faults = ScriptedFaults([Fault("wal.append", 0, "partial", fraction=0.5)])
        wal = WriteAheadLog(path, faults=faults)
        with pytest.raises(FaultInjected):
            wal.append({"kind": "torn"})
        # Rollback repaired the torn tail eagerly.
        assert os.path.getsize(path) == 0
        assert wal.record_count == 0
        wal.append({"kind": "ok"})
        records, torn = WriteAheadLog.replay(path)
        assert [r.payload["kind"] for r in records] == ["ok"] and not torn
        wal.close()

    def test_failed_sync_keeps_pending_for_retry(self, tmp_path):
        path = tmp_path / "wal.log"
        faults = ScriptedFaults([Fault("wal.sync", 0)])
        wal = WriteAheadLog(path, fsync="batch", faults=faults)
        wal.append({"kind": "a"})
        with pytest.raises(FaultInjected):
            wal.sync()
        wal.sync()  # retry succeeds; the record was intact all along
        records, _ = WriteAheadLog.replay(path)
        assert len(records) == 1
        wal.close()

    def test_failed_truncate_leaves_log_intact(self, tmp_path):
        path = tmp_path / "wal.log"
        faults = ScriptedFaults([Fault("wal.truncate", 0)])
        wal = WriteAheadLog(path, faults=faults)
        wal.append({"kind": "a"})
        with pytest.raises(FaultInjected):
            wal.truncate()
        records, _ = WriteAheadLog.replay(path)
        assert len(records) == 1  # seam fires before any byte is dropped
        wal.truncate()
        assert wal.record_count == 0
        wal.close()

    def test_delay_fault_is_not_a_failure(self, tmp_path):
        path = tmp_path / "wal.log"
        faults = ScriptedFaults([Fault("wal.append", 0, "delay", delay=0.01)])
        wal = WriteAheadLog(path, faults=faults)
        assert wal.append({"kind": "slow"}) == 0
        records, _ = WriteAheadLog.replay(path)
        assert len(records) == 1
        wal.close()


# ----------------------------------------------------------------------
# Snapshot atomicity under injected failures
# ----------------------------------------------------------------------
class TestSnapshotFaults:
    @pytest.mark.parametrize(
        "fault",
        [
            Fault("snapshot.write", 1, "fail"),
            Fault("snapshot.write", 1, "partial", fraction=0.3),
            Fault("snapshot.fsync", 1, "fail"),
            Fault("snapshot.replace", 1, "fail"),
        ],
        ids=["write-fail", "write-partial", "fsync-fail", "replace-fail"],
    )
    def test_any_failure_preserves_previous_snapshot(self, tmp_path, fault):
        store = SnapshotStore(tmp_path, faults=ScriptedFaults([fault]))
        store.write({"generation": 1})
        with pytest.raises(FaultInjected):
            store.write({"generation": 2})
        assert store.load() == {"generation": 1}
        store.write({"generation": 3})  # the store stays usable
        assert store.load() == {"generation": 3}

    def test_failure_on_first_write_means_no_snapshot(self, tmp_path):
        store = SnapshotStore(
            tmp_path, faults=ScriptedFaults([Fault("snapshot.fsync", 0)])
        )
        with pytest.raises(FaultInjected):
            store.write({"generation": 1})
        assert store.load() is None and not store.exists()


# ----------------------------------------------------------------------
# Durable facade: acknowledged-prefix contract under scripted faults
# ----------------------------------------------------------------------
class TestDurableFaults:
    def test_unacknowledged_write_never_recovers(self, tmp_path):
        faults = ScriptedFaults([Fault("wal.fsync", 1)])
        service = DurableDatalogService(tmp_path / "d", faults=faults)
        service.add_facts([("edge", (1, 2))])
        with pytest.raises(OSError):
            service.add_facts([("edge", (2, 3))])
        # Abandon without close (the crash); a fresh instance recovers
        # exactly the acknowledged prefix.
        recovered = DurableDatalogService(tmp_path / "d", snapshot_on_close=False)
        assert sorted(recovered.service.database.relation("edge")) == [(1, 2)]
        recovered.close()

    def test_failed_writes_do_not_poison_later_ones(self, tmp_path):
        faults = ScriptedFaults([Fault("wal.append", 0, "partial")])
        service = DurableDatalogService(tmp_path / "d", faults=faults)
        with pytest.raises(OSError):
            service.add_facts([("edge", (1, 2))])
        service.add_facts([("edge", (7, 8))])
        recovered = DurableDatalogService(tmp_path / "d", snapshot_on_close=False)
        assert sorted(recovered.service.database.relation("edge")) == [(7, 8)]
        recovered.close()

    def test_snapshot_failure_keeps_wal_authoritative(self, tmp_path):
        faults = ScriptedFaults([Fault("snapshot.replace", 0)])
        service = DurableDatalogService(
            tmp_path / "d", faults=faults, snapshot_on_close=False
        )
        service.add_facts([("edge", (1, 2))])
        with pytest.raises(OSError):
            service.snapshot()
        recovered = DurableDatalogService(tmp_path / "d", snapshot_on_close=False)
        assert sorted(recovered.service.database.relation("edge")) == [(1, 2)]
        recovered.close()

    def test_truncate_failure_replays_idempotently(self, tmp_path):
        # Crash window: snapshot written, WAL truncation failed.  Replay of
        # records the snapshot already contains must be idempotent.
        faults = ScriptedFaults([Fault("wal.truncate", 0)])
        service = DurableDatalogService(
            tmp_path / "d", faults=faults, snapshot_on_close=False
        )
        service.add_facts([("edge", (5, 6))])
        with pytest.raises(OSError):
            service.snapshot()
        recovered = DurableDatalogService(tmp_path / "d", snapshot_on_close=False)
        assert sorted(recovered.service.database.relation("edge")) == [(5, 6)]
        assert recovered.recovery.snapshot_loaded
        assert recovered.recovery.wal_records_replayed == 1
        recovered.close()
