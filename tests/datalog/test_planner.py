"""The join planner: ordering heuristics, SCC strata, parity, and caching."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.counterexamples import anbn_program
from repro.core.examples_catalog import (
    program_a,
    program_b,
    program_c,
    program_d,
    same_generation_program,
    section7_transformed,
)
from repro.core.workloads import (
    labeled_random_graph,
    layered_anbn_graph,
    parent_forest,
    same_generation_database,
)
from repro.datalog import Database, Program, QuerySession
from repro.datalog.engine import compile_program_plan, get_engine

evaluate_naive = get_engine("naive").evaluate
evaluate_seminaive = get_engine("seminaive").evaluate
from repro.datalog.engine.base import match_body, split_rules
from repro.datalog.engine.planner import Planner, order_body, plan_rule
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.rules import Rule


def unplanned_model(program: Program, database: Database) -> Database:
    """Reference evaluator: textbook naive fixpoint, textual atom order, no strata.

    Deliberately independent of the planner so plan-vs-unplanned parity is a
    real oracle, not the engine checked against itself.
    """
    program.validate()
    working = database.copy()
    fact_rules, proper_rules = split_rules(program)
    for rule in fact_rules:
        working.add_fact(rule.head.predicate, rule.head.as_fact_tuple())
    changed = True
    while changed:
        changed = False
        for rule in proper_rules:
            for substitution in match_body(rule.body, working):
                head = rule.head.substitute(substitution)
                if working.add_fact(head.predicate, head.as_fact_tuple()):
                    changed = True
    return working.restrict(program.idb_predicates())


# ----------------------------------------------------------------------
# Ordering heuristic units
# ----------------------------------------------------------------------
class TestOrdering:
    def test_smallest_relation_goes_first_when_nothing_is_bound(self):
        rule = parse_rule("h(X, Y) :- big(X, Z), small(Z, Y).")
        order = order_body(rule.body, {"big": 1000, "small": 3})
        assert order == (1, 0)

    def test_constant_atom_beats_a_smaller_scan(self):
        # edge(c, Z) is index-probeable thanks to the constant, so it leads
        # even though its relation is larger than tiny's.
        rule = parse_rule("h(Z, Y) :- tiny(W, Y), edge(c, Z).")
        order = order_body(rule.body, {"tiny": 2, "edge": 500})
        assert order == (1, 0)

    def test_bound_variables_propagate_through_the_greedy_chain(self):
        rule = parse_rule("h(X, W) :- a(X, Y), b(Y, Z), c(Z, W).")
        order = order_body(rule.body, {"a": 5, "b": 500, "c": 400})
        # a is smallest so it leads; then b and c are both larger, but b
        # becomes probeable through Y while c stays an unbound scan.
        assert order == (0, 1, 2)

    def test_explicit_first_pins_the_delta_atom(self):
        rule = parse_rule("anc(X, Y) :- par(X, Z), anc(Z, Y).")
        order = order_body(rule.body, {"par": 10, "anc": 10}, first=1)
        assert order == (1, 0)

    def test_delta_variants_lead_with_the_delta_atom(self):
        rule = parse_rule("anc(X, Y) :- par(X, Z), anc(Z, Y).")
        plan = plan_rule(rule, {"par": 10, "anc": 50}, delta_predicates=frozenset({"anc"}))
        (variant,) = plan.variants
        assert variant.position == 1
        assert variant.order[0] == 1
        # With Z bound by the delta atom, par is reached by an index probe.
        assert variant.steps[1].access == "probe"

    def test_probe_hint_matches_candidate_tuples_column_choice(self):
        # candidate_tuples probes the FIRST constant-or-bound argument in
        # term order; the explain hint must report that same column.
        rule = parse_rule("h(X) :- p(X, c).")
        plan = plan_rule(rule, {"p": 10}, delta_predicates=frozenset({"p"}))
        (step,) = plan.steps
        assert step.access == "probe" and step.probe_hint == "p[1]=c"
        rule = parse_rule("t(X, Y) :- t(X, Z), e(Z, c).")
        plan = plan_rule(rule, {"t": 5, "e": 10}, delta_predicates=frozenset({"t"}))
        (variant,) = plan.variants
        # After the delta atom binds Z, e's first probe-able argument is
        # position 0 (bound Z), not the later constant at position 1.
        assert variant.steps[1].probe_hint == "e[0]=Z"

    def test_head_values_skips_atom_construction(self):
        rule = parse_rule("h(X, c, X) :- p(X, Y).")
        plan = plan_rule(rule, {"p": 1})
        (substitution,) = match_body(rule.body, Database({"p": [(1, 2)]}))
        assert plan.head_values(substitution) == (1, "c", 1)


# ----------------------------------------------------------------------
# Stratification
# ----------------------------------------------------------------------
class TestStrata:
    def test_chain_of_dependencies_yields_one_stratum_each_in_order(self):
        program = parse_program(
            """
            ?p3(X, Y)
            p1(X, Y) :- e(X, Y).
            p2(X, Y) :- p1(X, Y).
            p3(X, Y) :- p2(X, Y).
            """
        )
        plan = compile_program_plan(program, Database({"e": [(1, 2)]}))
        assert [sorted(s.predicates) for s in plan.strata] == [["p1"], ["p2"], ["p3"]]
        assert all(not s.recursive for s in plan.strata)

    def test_self_loop_marks_the_stratum_recursive(self):
        plan = compile_program_plan(program_a().program, Database())
        (stratum,) = plan.strata
        assert stratum.recursive and stratum.predicates == {"anc"}

    def test_mutual_recursion_shares_a_stratum(self):
        program = parse_program(
            """
            ?odd(X, Y)
            odd(X, Y) :- e(X, Z), even(Z, Y).
            even(X, Y) :- e(X, Z), odd(Z, Y).
            even(X, Y) :- e(X, Y).
            """
        )
        plan = compile_program_plan(program, Database({"e": [(1, 2)]}))
        (stratum,) = plan.strata
        assert stratum.recursive and stratum.predicates == {"odd", "even"}

    def test_nonrecursive_strata_take_exactly_one_pass(self):
        program = parse_program(
            """
            ?p4(X, Y)
            p1(X, Y) :- e(X, Y).
            p2(X, Y) :- p1(X, Y).
            p3(X, Y) :- p2(X, Y).
            p4(X, Y) :- p3(X, Y).
            """
        )
        database = Database({"e": [(i, i + 1) for i in range(20)]})
        result = evaluate_seminaive(program, database)
        assert result.statistics.strata == 4
        assert all(
            count == 1 for count in result.statistics.iterations_per_stratum.values()
        )
        assert result.relation("p4") == database.relation("e")

    def test_explain_lists_strata_and_join_orders(self):
        plan = compile_program_plan(program_b().program, parent_forest(30, seed=3))
        text = plan.describe()
        assert "stratum 1: anc [recursive]" in text
        assert "delta on anc(Z, Y)" in text
        assert "probe par" in text


# ----------------------------------------------------------------------
# Plan-vs-unplanned parity over the examples catalogue
# ----------------------------------------------------------------------
CATALOGUE = [
    ("program_a", program_a().program, parent_forest(40, seed=5, root_count=3)),
    ("program_b", program_b().program, parent_forest(40, seed=5, root_count=3)),
    ("program_c", program_c().program, parent_forest(25, seed=5, root_count=2)),
    ("program_d", program_d(), parent_forest(40, seed=5, root_count=3)),
    ("anbn", anbn_program().program, layered_anbn_graph(5, noise_branches=3)),
    ("section7_magic", section7_transformed(), layered_anbn_graph(5, noise_branches=3)),
    (
        "same_generation",
        same_generation_program().program,
        same_generation_database(depth=3, branching=2),
    ),
    (
        "random_graph",
        program_b().program,
        labeled_random_graph(18, 40, ("par",), seed=9, prefix="john"),
    ),
]


@pytest.mark.parametrize(
    "label,program,database", CATALOGUE, ids=[entry[0] for entry in CATALOGUE]
)
def test_planned_engines_match_unplanned_reference(label, program, database):
    expected = unplanned_model(program, database)
    for evaluate in (evaluate_naive, evaluate_seminaive):
        result = evaluate(program, database)
        assert result.idb_facts == expected, f"{evaluate.__name__} diverged on {label}"


# ----------------------------------------------------------------------
# Hypothesis: reordering body atoms never changes the model
# (strategies shared with the executor/incremental suites)
# ----------------------------------------------------------------------
from tests.datalog.strategies import PROGRAM_POOL, edge_databases, program_indexes


@settings(max_examples=60, deadline=None)
@given(
    program_indexes,
    edge_databases(),
    st.randoms(use_true_random=False),
)
def test_body_reordering_never_changes_the_model(program_index, database, rng):
    program = PROGRAM_POOL[program_index]
    shuffled_rules = []
    for rule in program.rules:
        body = list(rule.body)
        rng.shuffle(body)
        shuffled_rules.append(Rule(rule.head, tuple(body)))
    shuffled = Program(tuple(shuffled_rules), program.goal)

    baseline = unplanned_model(program, database)
    for variant in (program, shuffled):
        for evaluate in (evaluate_naive, evaluate_seminaive):
            assert evaluate(variant, database).idb_facts == baseline


# ----------------------------------------------------------------------
# Plan caching on sessions
# ----------------------------------------------------------------------
class TestPlannerCache:
    def test_repeated_session_queries_reuse_the_compiled_plan(self):
        session = QuerySession(program_a(), parent_forest(30, seed=2))
        first = session.evaluate(fresh=True)
        second = session.evaluate(fresh=True)
        assert first.statistics.plans_compiled == 1
        assert first.statistics.plan_cache_hits == 0
        assert second.statistics.plan_cache_hits == 1
        assert second.statistics.plans_compiled == 0

    def test_database_mutation_invalidates_the_plan(self):
        database = parent_forest(30, seed=2)
        session = QuerySession(program_a(), database)
        session.evaluate(fresh=True)
        database.add_fact("par", ("john", "newcomer"))
        result = session.evaluate(fresh=True)
        assert result.statistics.plans_compiled == 1
        assert ("newcomer",) in result.answers()

    def test_direct_evaluation_without_planner_still_plans(self):
        result = evaluate_seminaive(program_a().program, parent_forest(20, seed=1))
        assert result.statistics.plans_compiled == 1

    def test_planner_is_shared_across_derived_sessions(self):
        session = QuerySession(program_a(), parent_forest(30, seed=2))
        derived = session.with_database(parent_forest(25, seed=4))
        assert derived.planner is session.planner

    def test_planner_cache_is_bounded(self):
        planner = Planner()
        database = Database({"e": [(1, 2)]})
        programs = [
            parse_program(f"?p{i}(X, Y)\np{i}(X, Y) :- e(X, Y).") for i in range(200)
        ]
        for program in programs:
            planner.plan(program, database)
        assert len(planner._cache) <= 128

    def test_query_plan_matches_what_evaluate_runs(self):
        session = QuerySession(program_b(), parent_forest(30, seed=2))
        plan = session.query_plan()
        session.evaluate(fresh=True)
        assert session.query_plan() is plan  # cached, not recompiled
        assert "delta on anc" in session.explain(plans=True)
