"""Property-based tests (hypothesis) for the Datalog substrate's core data structures."""

from hypothesis import given, settings, strategies as st

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.engine.base import select_answers
from repro.datalog.engine.derivation import DerivationAnalyzer
from repro.datalog.engine.registry import get_engine

evaluate_seminaive = get_engine("seminaive").evaluate
from repro.datalog.parser import parse_program
from repro.datalog.pretty import format_program
from repro.datalog.terms import Constant, Variable
from repro.datalog.unify import match_atom, unify_atoms


# ----------------------------------------------------------------------
# Strategies (shared with the other Datalog suites)
# ----------------------------------------------------------------------
from tests.datalog.strategies import (
    databases,
    edge_databases,
    goal_atoms,
    stratified_programs,
    tuples2,
)


# ----------------------------------------------------------------------
# Database invariants
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(databases())
def test_database_facts_round_trip(database):
    rebuilt = Database.from_facts(database.facts())
    assert rebuilt == database
    assert rebuilt.fact_count() == database.fact_count()


@settings(max_examples=50, deadline=None)
@given(databases(), databases())
def test_database_update_is_union(left, right):
    merged = left.copy()
    merged.update(right)
    for predicate in left.predicates() | right.predicates():
        assert merged.relation(predicate) == left.relation(predicate) | right.relation(predicate)
    assert merged.fact_count() <= left.fact_count() + right.fact_count()


@settings(max_examples=50, deadline=None)
@given(databases())
def test_copy_isolated_from_mutation(database):
    clone = database.copy()
    clone.add_fact("fresh", (0, 0))
    assert "fresh" not in database.predicates()


@settings(max_examples=50, deadline=None)
@given(databases())
def test_active_domain_covers_every_tuple(database):
    domain = database.active_domain()
    for _, tuples in database.relations().items():
        for row in tuples:
            assert all(value in domain for value in row)


# ----------------------------------------------------------------------
# Matching / unification
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(goal_atoms(), tuples2)
def test_match_produces_a_grounding_substitution(atom, row):
    bindings = match_atom(atom, row)
    if bindings is not None:
        assert atom.substitute(bindings).as_fact_tuple() == row
    else:
        # Matching fails only because of a constant clash or repeated-variable clash.
        constants_clash = any(
            isinstance(term, Constant) and term.value != value
            for term, value in zip(atom.terms, row)
        )
        repeated_clash = (
            atom.terms[0] == atom.terms[1]
            and isinstance(atom.terms[0], Variable)
            and row[0] != row[1]
        )
        assert constants_clash or repeated_clash


@settings(max_examples=60, deadline=None)
@given(goal_atoms(), goal_atoms())
def test_unification_is_symmetric_in_success(left, right):
    assert (unify_atoms(left, right) is None) == (unify_atoms(right, left) is None)


# ----------------------------------------------------------------------
# Goal selection semantics
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(goal_atoms(), st.sets(tuples2, max_size=10))
def test_select_answers_agrees_with_matching(goal, rows):
    answers = select_answers(goal, rows)
    matching_rows = [row for row in rows if match_atom(goal, row) is not None]
    # One answer per matching row projection; count of distinct projections matches.
    projections = set()
    for row in matching_rows:
        bindings = match_atom(goal, row)
        projections.add(tuple(bindings[v].value for v in goal.variables()))
    assert answers == projections


# ----------------------------------------------------------------------
# Engine / provenance invariants
# ----------------------------------------------------------------------
TRANSITIVE = parse_program(
    """
    ?t(X, Y)
    t(X, Y) :- p(X, Y).
    t(X, Y) :- t(X, Z), p(Z, Y).
    """
)


@settings(max_examples=30, deadline=None)
@given(databases())
def test_proof_heights_exist_for_every_derived_fact(database):
    analyzer = DerivationAnalyzer(TRANSITIVE, database)
    result = evaluate_seminaive(TRANSITIVE, database)
    for row in result.relation("t"):
        height = analyzer.proof_height(Atom("t", tuple(Constant(v) for v in row)))
        assert height is not None and height >= 2


@settings(max_examples=30, deadline=None)
@given(databases())
def test_iterations_bound_proof_heights(database):
    result = evaluate_seminaive(TRANSITIVE, database)
    analyzer = DerivationAnalyzer(TRANSITIVE, database)
    heights = [
        analyzer.proof_height(Atom("t", tuple(Constant(v) for v in row)))
        for row in result.relation("t")
    ]
    if heights:
        # Semi-naive needs at least (max proof height - 1) productive iterations.
        assert result.statistics.iterations + 1 >= max(heights)


@settings(max_examples=30, deadline=None)
@given(databases())
def test_pretty_parse_round_trip_on_programs(database):
    del database  # the round-trip concerns the program text, not data
    text = format_program(TRANSITIVE)
    reparsed = parse_program(text)
    assert reparsed.rules == TRANSITIVE.rules
    assert reparsed.goal == TRANSITIVE.goal


# ----------------------------------------------------------------------
# Stratified negation / aggregates: cross-engine and cross-path agreement
# ----------------------------------------------------------------------
from repro.datalog import available_engines
from repro.datalog.engine.registry import EngineNotApplicableError


@settings(max_examples=40, deadline=None)
@given(stratified_programs, edge_databases())
def test_stratified_programs_agree_across_engines_and_paths(program, database):
    """Every applicable engine — and the compiled and interpreted lanes of
    the semi-naive engine — computes the same stratified model."""
    seminaive = get_engine("seminaive")
    expected = seminaive.evaluate(program, database)
    interpreted = seminaive.evaluate(program, database, compiled=False)
    assert interpreted.idb_facts == expected.idb_facts
    assert interpreted.statistics.as_dict() == expected.statistics.as_dict()
    for name in available_engines():
        try:
            result = get_engine(name).evaluate(program, database)
        except EngineNotApplicableError:
            continue
        assert result.answers() == expected.answers(), name


@settings(max_examples=40, deadline=None)
@given(stratified_programs, edge_databases())
def test_stratified_pretty_parse_round_trip(program, database):
    """Negated literals and aggregate heads survive pretty -> parse."""
    del database
    reparsed = parse_program(format_program(program))
    assert reparsed.rules == program.rules
    assert reparsed.goal == program.goal
