"""Chaos harness: seeded random disk faults, deadlines, budgets, and
mid-query cancellations against a durable service, then crash-and-recover.

Each seed deterministically scripts a fault plan (failed fsyncs, torn
writes, slow I/O) and a mixed operation sequence (writes, guarded queries,
view churn, snapshots).  A shadow model tracks exactly the operations the
service *acknowledged*; the process then abandons the service without a
clean close — the crash — and a fresh instance recovers the data directory.
The invariant, every seed, every interleaving: the recovered model equals
the acknowledged prefix, nothing more and nothing less.

Aborted queries (timeout / budget / cancellation) are scattered through the
sequence to prove an in-flight abort can never smear state into the WAL or
the recovered model.
"""

import random

import pytest

from repro.datalog import CancellationToken, ResourceBudget
from repro.datalog.server.durable import DurableDatalogService
from repro.datalog.server.faults import Fault, ScriptedFaults
from repro.errors import QueryAborted

REACH = """\
?reach($src, Y)
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- reach(X, Z), edge(Z, Y).
"""

NODES = 8
OPS_PER_SEED = 40

#: Seams eligible for random faults, with the call indices faults may take.
#: ``wal.append``/``wal.fsync`` indices 0-1 are reserved for the setup
#: registration, which the shadow model requires to be acknowledged.
_FAULTABLE = [
    ("wal.append", 2, 30, ("fail", "partial", "delay")),
    ("wal.fsync", 2, 30, ("fail", "delay")),
    ("wal.sync", 0, 6, ("fail", "delay")),
    ("wal.truncate", 0, 4, ("fail", "delay")),
    ("snapshot.write", 0, 6, ("fail", "partial", "delay")),
    ("snapshot.fsync", 0, 6, ("fail", "delay")),
    ("snapshot.replace", 0, 6, ("fail", "delay")),
]


class TripAfter(CancellationToken):
    """Reports cancelled after N checkpoint reads — a mid-query cancel."""

    def __init__(self, reads_before_trip: int):
        super().__init__()
        self._remaining = reads_before_trip

    @property
    def cancelled(self) -> bool:
        if self._remaining <= 0:
            return True
        self._remaining -= 1
        return False


def build_fault_plan(rng: random.Random) -> ScriptedFaults:
    faults = []
    taken = set()
    for _ in range(rng.randint(2, 6)):
        op, low, high, kinds = rng.choice(_FAULTABLE)
        index = rng.randint(low, high)
        if (op, index) in taken:
            continue
        taken.add((op, index))
        kind = rng.choice(kinds)
        if kind == "partial":
            faults.append(Fault(op, index, "partial", fraction=rng.random()))
        elif kind == "delay":
            faults.append(Fault(op, index, "delay", delay=rng.random() * 0.005))
        else:
            faults.append(Fault(op, index))
    return ScriptedFaults(faults)


def random_batch(rng: random.Random):
    return [
        ("edge", (f"n{rng.randrange(NODES)}", f"n{rng.randrange(NODES)}"))
        for _ in range(rng.randint(1, 3))
    ]


def random_guard_kwargs(rng: random.Random) -> dict:
    """One of: unguarded, zero deadline, tight budget, mid-query cancel."""
    flavor = rng.randrange(4)
    if flavor == 0:
        return {}
    if flavor == 1:
        return {"timeout": 0}
    if flavor == 2:
        return {
            "budget": ResourceBudget(
                max_rounds=rng.randint(0, 2), max_facts=rng.randint(0, 20)
            )
        }
    return {"cancellation": TripAfter(rng.randint(0, 10))}


@pytest.mark.parametrize("seed", range(8))
def test_recovered_model_equals_acknowledged_prefix(tmp_path, seed):
    rng = random.Random(seed)
    faults = build_fault_plan(rng)
    data_dir = tmp_path / "chaos"
    service = DurableDatalogService(
        data_dir, fsync="always", snapshot_every=10, faults=faults
    )
    service.register_program("reach", REACH)

    # The shadow model: exactly what the service acknowledged.
    shadow_edges = set()
    shadow_views = set()

    def live_edges():
        return set(service.service.database.relation("edge"))

    for _ in range(OPS_PER_SEED):
        op = rng.random()
        try:
            if op < 0.35:
                service.add_facts(random_batch(rng))
                shadow_edges = live_edges()
            elif op < 0.50:
                service.remove_facts(random_batch(rng))
                shadow_edges = live_edges()
            elif op < 0.75:
                source = f"n{rng.randrange(NODES)}"
                try:
                    service.execute(
                        "reach",
                        {"src": source},
                        fresh=rng.random() < 0.5,
                        **random_guard_kwargs(rng),
                    )
                except QueryAborted:
                    pass
                # Reads — completed or aborted — acknowledge nothing.
            elif op < 0.85:
                source = f"n{rng.randrange(NODES)}"
                if ("reach", source) in shadow_views:
                    service.dematerialize("reach", {"src": source})
                    shadow_views.discard(("reach", source))
                else:
                    service.materialize("reach", {"src": source})
                    shadow_views.add(("reach", source))
            else:
                service.snapshot()
        except OSError:
            # The op failed on a scripted disk fault.  Fact batches log
            # before applying, so a failure means nothing landed — but a
            # failure *after* the batch (an auto-snapshot on the same call)
            # leaves the batch acknowledged; the live in-memory state is
            # authoritative either way under fsync="always".
            shadow_edges = live_edges()
            # Registry ops apply before logging: a log failure can leave a
            # phantom view live that recovery will not rebuild.  Treat the
            # op as unacknowledged (shadow_views unchanged) and stop
            # tracking the binding if the drop half had already applied.

    # Crash: abandon the instance without close(), then recover fresh
    # (no fault plan — the disk is healthy again).
    recovered = DurableDatalogService(data_dir, snapshot_on_close=False)
    try:
        assert set(recovered.service.database.relation("edge")) == shadow_edges
        recovered_views = {
            (name, dict(binding).get("src"))
            for name, binding in recovered.service.materialized_bindings()
        }
        # Acknowledged views must all be rebuilt; phantom (unacknowledged)
        # views must not resurrect.
        assert recovered_views == shadow_views
        # The recovered model answers queries over exactly the acknowledged
        # facts: reachability computed fresh agrees with a clean in-memory
        # evaluation over the shadow edges.
        from repro.datalog import Database, DatalogService

        reference_db = Database()
        for values in shadow_edges:
            reference_db.add_fact("edge", values)
        reference = DatalogService(reference_db)
        reference.register_program("reach", REACH)
        for source in {f"n{i}" for i in range(NODES)}:
            assert recovered.execute(
                "reach", {"src": source}, fresh=True
            ) == reference.execute("reach", {"src": source})
    finally:
        recovered.close()


def test_chaos_runs_inject_faults_at_all():
    # Meta-check: the plans actually fire faults (a silent no-op chaos
    # suite would prove nothing).  At least one seed must inject.
    fired = 0
    for seed in range(8):
        rng = random.Random(seed)
        plan = build_fault_plan(rng)
        fired += len(plan._plan)
    assert fired > 0
