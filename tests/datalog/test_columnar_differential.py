"""Differential fuzzing: columnar batch kernels vs the tuple baseline.

The metamorphic oracle: evaluating any program over ``db`` and over
``db.with_layout("columnar")`` must be observationally identical — same
IDB model, same goal answers, same :class:`EvaluationStatistics` — for
every registered engine.  The columnar side lowers rules to batch
kernels over interned int columns (the packed-bigint lane for any arity,
the vectorized lane for head arity <= 2), so this harness is the proof
that neither lane changes semantics, only speed.

Programs come from two pools in :mod:`tests.datalog.strategies`: the
shared binary pool (vector lane, including the self-join shape whose
variable spans three body atoms) and the wide pool (arity 3-4 heads on
the packed lane, cross-arity joins, a repeated variable inside one
atom).  The magic engine needs a constant in the goal, so it gets a
bound-goal variant.  Incremental maintenance is held to the same bar:
a columnar-layout :class:`MaterializedView` must walk the same model as
a tuple-layout one and as from-scratch evaluation after any interleaving
of insertion and deletion batches.
"""

from hypothesis import given, settings, strategies as st

from repro.datalog import MaterializedView, available_engines, get_engine
from repro.datalog.atoms import Atom
from repro.datalog.columnar import vector
from repro.datalog.engine.registry import EngineNotApplicableError
from repro.datalog.terms import Constant, Variable

from tests.datalog.strategies import (
    PROGRAM_POOL,
    WIDE_PROGRAM_POOL,
    edge_databases,
    edge_fact_batches,
    pool_programs,
    stratified_programs,
    stratified_view_programs,
    wide_databases,
    wide_fact_batches,
    wide_programs,
)

evaluate_seminaive = get_engine("seminaive").evaluate


def assert_same_observables(program, database):
    """Columnar layout must be invisible to every registered engine."""
    columnar = database.with_layout("columnar")
    for name in available_engines():
        engine = get_engine(name)
        try:
            expected = engine.evaluate(program, database)
        except EngineNotApplicableError:
            continue
        actual = engine.evaluate(program, columnar)
        assert actual.idb_facts == expected.idb_facts, name
        if program.goal is not None:
            assert actual.answers() == expected.answers(), name
        assert (
            actual.statistics.as_dict() == expected.statistics.as_dict()
        ), name


@settings(max_examples=40, deadline=None)
@given(pool_programs, edge_databases())
def test_columnar_matches_tuple_binary_pool(program, database):
    assert_same_observables(program, database)


@settings(max_examples=40, deadline=None)
@given(wide_programs, wide_databases())
def test_columnar_matches_tuple_wide_pool(program, database):
    assert_same_observables(program, database)


@settings(max_examples=40, deadline=None)
@given(stratified_programs, edge_databases())
def test_columnar_matches_tuple_stratified_pool(program, database):
    """Anti-join kernels and aggregate fallback under the columnar layout.

    The stratified pool drives the batch/vector anti-join lanes (negated
    literals) and the planner's tuple-path fallback (aggregate heads);
    both must be observationally identical to the tuple baseline for every
    applicable engine.
    """
    assert_same_observables(program, database)


def bound_goal_variant(program, constant):
    """The program with its goal's first argument bound to *constant*."""
    goal = program.goal
    terms = (Constant(constant),) + tuple(
        Variable(f"B{position}") for position in range(1, len(goal.terms))
    )
    return program.with_goal(Atom(goal.predicate, terms))


# Magic's rewrite assumes EDB/IDB disjointness; skip pool programs whose
# mutated relations double as IDB heads (same guard as the incremental
# differential suite).
MAGIC_SAFE = [
    program
    for program in PROGRAM_POOL + WIDE_PROGRAM_POOL
    if not ({"e", "f", "g", "h"} & program.idb_predicates())
]


@settings(max_examples=40, deadline=None)
@given(
    st.sampled_from(MAGIC_SAFE),
    edge_databases(),
    st.integers(min_value=0, max_value=4),
)
def test_columnar_matches_tuple_magic_bound_goal(program, database, constant):
    bound = bound_goal_variant(program, constant)
    magic = get_engine("magic")
    expected = magic.evaluate(bound, database)
    actual = magic.evaluate(bound, database.with_layout("columnar"))
    assert actual.idb_facts == expected.idb_facts
    assert actual.answers() == expected.answers()
    assert actual.statistics.as_dict() == expected.statistics.as_dict()


# ----------------------------------------------------------------------
# Lane-forcing variants: the dispatch heuristics are part of the code
# under test, so pin each lane on and re-run the same oracle.
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(pool_programs, edge_databases())
def test_packed_lane_matches_tuple_when_vector_lane_disabled(program, database):
    """Binary heads normally ride the vector lane; force them through the
    packed-bigint lane and the oracle must still hold."""
    original = vector.supported
    vector.supported = lambda *args: False
    try:
        assert_same_observables(program, database)
    finally:
        vector.supported = original


@settings(max_examples=25, deadline=None)
@given(stratified_programs, edge_databases())
def test_packed_lane_anti_join_matches_tuple(program, database):
    """Negated literals normally hit the vector anti lane on binary heads;
    force the packed-bigint lane and the oracle must still hold."""
    original = vector.supported
    vector.supported = lambda *args: False
    try:
        assert_same_observables(program, database)
    finally:
        vector.supported = original


@settings(max_examples=25, deadline=None)
@given(stratified_programs, edge_databases())
def test_vector_anti_fallback_dedup_matches_tuple(program, database):
    """Zero bitmap budget pushes the vector anti-join through its
    sorted-membership fallback; the oracle must still hold."""
    original = vector._BITMAP_DOMAIN_MAX
    vector._BITMAP_DOMAIN_MAX = 0
    try:
        assert_same_observables(program, database)
    finally:
        vector._BITMAP_DOMAIN_MAX = original


@settings(max_examples=25, deadline=None)
@given(pool_programs, edge_databases())
def test_vector_fallback_dedup_matches_tuple(program, database):
    """Shrink the dense-bitmap budget to zero so the vector lane takes its
    sorted-array/key-set dedup fallback, and re-run the oracle."""
    original = vector._BITMAP_DOMAIN_MAX
    vector._BITMAP_DOMAIN_MAX = 0
    try:
        assert_same_observables(program, database)
    finally:
        vector._BITMAP_DOMAIN_MAX = original


# ----------------------------------------------------------------------
# Incremental maintenance: columnar view == tuple view == from scratch
# ----------------------------------------------------------------------
@st.composite
def mutation_sequences(draw, batches, max_steps: int = 4):
    steps = draw(st.integers(min_value=1, max_value=max_steps))
    return [(draw(batches), draw(batches)) for _ in range(steps)]


def assert_views_agree(columnar_view, tuple_view):
    assert columnar_view.idb_facts() == tuple_view.idb_facts()
    assert columnar_view.base_facts() == tuple_view.base_facts()
    assert columnar_view.answers() == tuple_view.answers()
    for predicate in columnar_view.counting_predicates:
        assert columnar_view.support_counts(predicate) == tuple_view.support_counts(
            predicate
        ), predicate
    scratch = evaluate_seminaive(
        columnar_view.program, columnar_view.base_facts().with_layout("columnar")
    )
    assert columnar_view.idb_facts() == scratch.idb_facts


@settings(max_examples=30, deadline=None)
@given(pool_programs, edge_databases(), st.data())
def test_incremental_columnar_matches_tuple_binary(program, database, data):
    columnar_view = MaterializedView(program, database.with_layout("columnar"))
    tuple_view = MaterializedView(program, database)
    assert_views_agree(columnar_view, tuple_view)
    for insertions, deletions in data.draw(mutation_sequences(edge_fact_batches())):
        columnar_view.apply(insertions=insertions, deletions=deletions)
        tuple_view.apply(insertions=insertions, deletions=deletions)
        assert_views_agree(columnar_view, tuple_view)


@settings(max_examples=20, deadline=None)
@given(stratified_view_programs, edge_databases(), st.data())
def test_incremental_columnar_matches_tuple_stratified(program, database, data):
    """A columnar-layout negation view walks the same model as a tuple one."""
    columnar_view = MaterializedView(program, database.with_layout("columnar"))
    tuple_view = MaterializedView(program, database)
    assert_views_agree(columnar_view, tuple_view)
    for insertions, deletions in data.draw(
        mutation_sequences(edge_fact_batches(), max_steps=3)
    ):
        columnar_view.apply(insertions=insertions, deletions=deletions)
        tuple_view.apply(insertions=insertions, deletions=deletions)
        assert_views_agree(columnar_view, tuple_view)


@settings(max_examples=20, deadline=None)
@given(wide_programs, wide_databases(), st.data())
def test_incremental_columnar_matches_tuple_wide(program, database, data):
    columnar_view = MaterializedView(program, database.with_layout("columnar"))
    tuple_view = MaterializedView(program, database)
    assert_views_agree(columnar_view, tuple_view)
    for insertions, deletions in data.draw(
        mutation_sequences(wide_fact_batches(), max_steps=3)
    ):
        columnar_view.apply(insertions=insertions, deletions=deletions)
        tuple_view.apply(insertions=insertions, deletions=deletions)
        assert_views_agree(columnar_view, tuple_view)
