"""WAL framing/repair, snapshot atomicity, the compact codec, and metrics."""

import os
import struct

import pytest

from repro.datalog.database import Database, decode_obj, encode_obj
from repro.datalog.server.metrics import (
    LatencyHistogram,
    MetricsRegistry,
    MonotonicityError,
)
from repro.datalog.server.snapshot import SNAPSHOT_NAME, SnapshotStore
from repro.datalog.server.wal import WriteAheadLog


# ----------------------------------------------------------------------
# Compact codec + Database serialization
# ----------------------------------------------------------------------
class TestCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**63,
            -(2**40),
            3.25,
            "",
            "hello",
            "naïve ünïcode",
            b"\x00\xffbytes",
            (),
            (1, "two", (3.0, None)),
            [1, [2, [3]]],
            {"kind": "add_facts", "facts": [("e", (1, 2))]},
            {"nested": {"deep": [True, False, None]}},
        ],
    )
    def test_round_trip(self, value):
        assert decode_obj(encode_obj(value)) == value

    def test_tuples_and_lists_stay_distinct(self):
        assert decode_obj(encode_obj((1, 2))) == (1, 2)
        assert isinstance(decode_obj(encode_obj((1, 2))), tuple)
        assert isinstance(decode_obj(encode_obj([1, 2])), list)

    def test_database_round_trip(self):
        database = Database()
        database.add_fact("e", (1, 2))
        database.add_fact("e", ("x", "y"))
        database.add_fact("f", (3,))
        restored = Database.from_bytes(database.to_bytes())
        assert restored.relation("e") == database.relation("e")
        assert restored.relation("f") == database.relation("f")
        assert restored.fact_count() == database.fact_count()

    def test_database_serialization_is_deterministic(self):
        first = Database()
        second = Database()
        for fact in [("a", "b"), ("b", "c"), ("c", "a")]:
            first.add_fact("e", fact)
        for fact in [("c", "a"), ("a", "b"), ("b", "c")]:
            second.add_fact("e", fact)
        assert first.to_bytes() == second.to_bytes()

    def test_from_bytes_rejects_garbage(self):
        with pytest.raises(ValueError):
            Database.from_bytes(b"not a database")
        with pytest.raises(ValueError):
            Database.from_bytes(Database().to_bytes() + b"trailing")

    def test_pickle_escape_hatch_is_opt_out(self):
        """In-process round-trips may pickle exotic values; decoding with
        allow_pickle=False refuses both to emit and to read the escape tag."""
        exotic = 1 + 2j  # not a codec-native type, picklable
        assert decode_obj(encode_obj(exotic)) == exotic
        with pytest.raises(ValueError, match="pickle"):
            encode_obj(exotic, allow_pickle=False)
        with pytest.raises(ValueError, match="unpickle"):
            decode_obj(encode_obj(exotic), allow_pickle=False)
        with pytest.raises(ValueError, match="unpickle"):
            decode_obj(encode_obj({"nested": (exotic,)}), allow_pickle=False)


# ----------------------------------------------------------------------
# Write-ahead log
# ----------------------------------------------------------------------
class TestWriteAheadLog:
    def test_append_replay_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        payloads = [{"kind": "add_facts", "facts": [("e", (i, i + 1))]} for i in range(5)]
        with WriteAheadLog(path) as wal:
            sequences = [wal.append(payload) for payload in payloads]
        assert sequences == [0, 1, 2, 3, 4]
        records, tail_corrupt = WriteAheadLog.replay(path)
        assert not tail_corrupt
        assert [record.payload for record in records] == payloads
        assert [record.sequence for record in records] == sequences

    def test_missing_file_is_an_empty_intact_log(self, tmp_path):
        records, tail_corrupt = WriteAheadLog.replay(tmp_path / "nope.log")
        assert records == [] and not tail_corrupt

    def test_truncated_payload_tail_stops_replay(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append({"n": 1})
            wal.append({"n": 2})
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 3)
        records, tail_corrupt = WriteAheadLog.replay(path)
        assert [record.payload for record in records] == [{"n": 1}]
        assert tail_corrupt

    def test_truncated_header_tail_stops_replay(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append({"n": 1})
        with open(path, "ab") as handle:
            handle.write(b"WR\x00")  # half a header, as a torn write leaves
        records, tail_corrupt = WriteAheadLog.replay(path)
        assert [record.payload for record in records] == [{"n": 1}]
        assert tail_corrupt

    def test_corrupt_checksum_stops_replay(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append({"n": 1})
            first_end = os.path.getsize(path)
            wal.append({"n": 2})
        with open(path, "r+b") as handle:
            handle.seek(first_end + struct.calcsize(">2sII") + 1)
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_CUR)
            handle.write(bytes([byte[0] ^ 0xFF]))
        records, tail_corrupt = WriteAheadLog.replay(path)
        assert [record.payload for record in records] == [{"n": 1}]
        assert tail_corrupt

    def test_open_repairs_torn_tail_and_appends_continue(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append({"n": 1})
        with open(path, "ab") as handle:
            handle.write(b"\x01\x02garbage")
        wal = WriteAheadLog(path)
        assert wal.record_count == 1
        wal.append({"n": 2})
        wal.close()
        records, tail_corrupt = WriteAheadLog.replay(path)
        assert [record.payload for record in records] == [{"n": 1}, {"n": 2}]
        assert not tail_corrupt

    def test_truncate_drops_all_records(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append({"n": 1})
            wal.truncate()
            assert wal.record_count == 0
            wal.append({"n": 2})
        records, _ = WriteAheadLog.replay(path)
        assert [record.payload for record in records] == [{"n": 2}]

    def test_batch_policy_counts_pending_until_sync(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", fsync="batch")
        wal.append({"n": 1})
        assert wal._appended_since_sync == 1
        wal.sync()
        assert wal._appended_since_sync == 0
        wal.close()

    def test_rejects_unknown_fsync_policy(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            WriteAheadLog(tmp_path / "wal.log", fsync="sometimes")

    def test_append_rejects_payloads_that_would_need_pickle(self, tmp_path):
        """The WAL never persists bytes that replay would have to unpickle."""
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            with pytest.raises(ValueError, match="pickle"):
                wal.append({"kind": "add_facts", "facts": [("e", (1 + 2j,))]})
            assert wal.record_count == 0
        records, tail_corrupt = WriteAheadLog.replay(path)
        assert records == [] and not tail_corrupt

    def test_replay_never_unpickles_a_planted_record(self, tmp_path):
        """A hand-crafted record whose payload is a pickle (what an attacker
        with write access to the data dir would plant — the CRC is easy to
        recompute) must read as a torn tail, not execute on load."""
        import pickle
        import zlib

        from repro.datalog.database import _pack_varint

        marker = tmp_path / "pwned"

        class Bomb:
            def __reduce__(self):
                return (os.mkdir, (str(marker),))

        pickled = pickle.dumps(Bomb())
        body = bytearray(b"P")
        _pack_varint(len(pickled), body)
        body.extend(pickled)
        frame = struct.pack(">2sII", b"WR", len(body), zlib.crc32(bytes(body)))
        path = tmp_path / "wal.log"
        path.write_bytes(frame + bytes(body))

        records, tail_corrupt = WriteAheadLog.replay(path)
        assert records == [] and tail_corrupt
        assert not marker.exists()


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
class TestSnapshotStore:
    def test_write_load_round_trip(self, tmp_path):
        store = SnapshotStore(tmp_path)
        state = {"database": b"\x00\x01", "programs": {"q": {"source": "?p(X)\n"}}}
        store.write(state)
        assert store.load() == state
        assert not os.path.exists(store.path + ".tmp")

    def test_missing_snapshot_loads_none(self, tmp_path):
        assert SnapshotStore(tmp_path).load() is None

    def test_corrupt_crc_loads_none(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.write({"n": 1})
        with open(store.path, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes([byte[0] ^ 0xFF]))
        assert store.load() is None

    def test_bad_magic_loads_none(self, tmp_path):
        path = tmp_path / SNAPSHOT_NAME
        path.write_bytes(b"NOTASNAP" + b"\x00" * 16)
        assert SnapshotStore(tmp_path).load() is None

    def test_rewrite_replaces_atomically(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.write({"generation": 1})
        store.write({"generation": 2})
        assert store.load() == {"generation": 2}

    def test_write_rejects_state_that_would_need_pickle(self, tmp_path):
        store = SnapshotStore(tmp_path)
        with pytest.raises(ValueError, match="pickle"):
            store.write({"value": 1 + 2j})
        assert not store.exists()


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_histogram_buckets_are_cumulative(self):
        histogram = LatencyHistogram(buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.05, 0.5):
            histogram.observe(value)
        cumulative, total_sum, count = histogram.snapshot()
        assert cumulative == [1, 2, 3, 4]
        assert count == 4
        assert total_sum == pytest.approx(0.5555)

    def test_render_exposes_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.observe_request("execute", 200, 0.002)
        registry.observe_request("execute", 404, 0.001)
        text = registry.render(
            {"executions": 3, "cache_entries": 1}, monotonic_keys=("executions",)
        )
        assert "# TYPE repro_datalog_executions counter" in text
        assert "# TYPE repro_datalog_cache_entries gauge" in text
        assert 'repro_http_requests_total{endpoint="execute",status="200"} 1' in text
        assert 'repro_http_requests_total{endpoint="execute",status="404"} 1' in text
        assert 'le="+Inf"} 2' in text
        assert text.endswith("\n")

    def test_monotonic_regression_is_rejected(self):
        registry = MetricsRegistry()
        registry.render({"executions": 5}, monotonic_keys=("executions",))
        registry.render({"executions": 5}, monotonic_keys=("executions",))
        with pytest.raises(MonotonicityError, match="executions"):
            registry.render({"executions": 4}, monotonic_keys=("executions",))

    def test_service_counters_never_regress_under_writes(self):
        """The end-to-end monotonicity contract: statistics() across a write
        sequence (including the copy-and-swap database replacement) never
        moves any MONOTONIC_STATISTICS key backwards."""
        from repro.datalog import DatalogService

        service = DatalogService(Database())
        service.register_program(
            "reach",
            "?reach($src, Y)\n"
            "reach(X, Y) :- edge(X, Y).\n"
            "reach(X, Y) :- reach(X, Z), edge(Z, Y).\n",
        )
        registry = MetricsRegistry()
        keys = DatalogService.MONOTONIC_STATISTICS
        registry.check_monotonic(service.statistics(), keys)
        for step in range(5):
            service.add_facts([("edge", (step, step + 1))])
            service.execute("reach", {"src": 0})
            service.execute("reach", {"src": 0})  # cache hit
            registry.check_monotonic(service.statistics(), keys)
            service.remove_facts([("edge", (step, step + 1))])
            registry.check_monotonic(service.statistics(), keys)
