"""Unit tests for repro.datalog.database."""

from repro.datalog.atoms import ground_atom
from repro.datalog.database import Database


class TestMutation:
    def test_add_fact_returns_newness(self):
        database = Database()
        assert database.add_fact("par", ("a", "b"))
        assert not database.add_fact("par", ("a", "b"))

    def test_add_edge(self):
        database = Database()
        database.add_edge("b", 1, 2)
        assert database.contains("b", (1, 2))

    def test_update_merges(self):
        left = Database({"p": [(1,)]})
        right = Database({"p": [(2,)], "q": [(3,)]})
        left.update(right)
        assert left.relation("p") == {(1,), (2,)}
        assert left.relation("q") == {(3,)}

    def test_remove_relation(self):
        database = Database({"p": [(1,)]})
        database.remove_relation("p")
        assert database.relation("p") == frozenset()


class TestAccess:
    def test_relation_of_missing_predicate_is_empty(self):
        assert Database().relation("nope") == frozenset()

    def test_active_domain(self):
        database = Database({"par": [("a", "b"), ("b", "c")]})
        assert database.active_domain() == {"a", "b", "c"}

    def test_fact_count_and_len(self):
        database = Database({"p": [(1,), (2,)], "q": [(1, 2)]})
        assert database.fact_count() == 3
        assert len(database) == 3

    def test_facts_iteration_round_trip(self):
        database = Database({"par": [("a", "b")]})
        facts = list(database.facts())
        assert facts == [ground_atom("par", ("a", "b"))]
        assert Database.from_facts(facts) == database

    def test_contains_atom(self):
        database = Database({"par": [("a", "b")]})
        assert ground_atom("par", ("a", "b")) in database
        assert ground_atom("par", ("b", "a")) not in database

    def test_restrict(self):
        database = Database({"p": [(1,)], "q": [(2,)]})
        restricted = database.restrict(["p"])
        assert restricted.predicates() == {"p"}

    def test_rename_merges_relations(self):
        database = Database({"b1": [(1, 2)], "b2": [(2, 3)]})
        merged = database.rename({"b1": "b", "b2": "b"})
        assert merged.relation("b") == {(1, 2), (2, 3)}


class TestEquality:
    def test_equality_ignores_empty_relations(self):
        left = Database({"p": [(1,)], "q": []})
        right = Database({"p": [(1,)]})
        assert left == right

    def test_copy_is_independent(self):
        original = Database({"p": [(1,)]})
        clone = original.copy()
        clone.add_fact("p", (2,))
        assert original.relation("p") == {(1,)}


class TestIncrementalIndexes:
    """The persistent hash indexes and cached snapshots behind the hot path."""

    def test_relation_snapshot_is_cached_until_mutation(self):
        database = Database({"par": [("a", "b")]})
        first = database.relation("par")
        assert database.relation("par") is first  # O(1) repeat access
        database.add_fact("par", ("b", "c"))
        second = database.relation("par")
        assert second is not first
        assert second == {("a", "b"), ("b", "c")}
        assert first == {("a", "b")}  # old snapshot is immutable history

    def test_probe_returns_matching_tuples_only(self):
        database = Database({"par": [("a", "b"), ("a", "c"), ("b", "c")]})
        assert sorted(database.probe("par", 0, "a")) == [("a", "b"), ("a", "c")]
        assert sorted(database.probe("par", 1, "c")) == [("a", "c"), ("b", "c")]
        assert list(database.probe("par", 0, "zzz")) == []
        assert list(database.probe("absent", 0, "a")) == []

    def test_probe_index_is_maintained_on_add_fact(self):
        database = Database({"par": [("a", "b")]})
        assert list(database.probe("par", 0, "a")) == [("a", "b")]  # builds the index
        database.add_fact("par", ("a", "c"))
        assert sorted(database.probe("par", 0, "a")) == [("a", "b"), ("a", "c")]
        database.add_fact("par", ("a", "c"))  # duplicate: must not double-index
        assert sorted(database.probe("par", 0, "a")) == [("a", "b"), ("a", "c")]

    def test_probe_index_is_maintained_on_update(self):
        database = Database({"par": [("a", "b")]})
        assert list(database.probe("par", 1, "b")) == [("a", "b")]
        other = Database({"par": [("c", "b"), ("a", "b")], "anc": [("x", "y")]})
        database.update(other)
        assert sorted(database.probe("par", 1, "b")) == [("a", "b"), ("c", "b")]
        assert list(database.probe("anc", 0, "x")) == [("x", "y")]
        assert database.relation("par") == {("a", "b"), ("c", "b")}

    def test_remove_relation_drops_snapshot_and_indexes(self):
        database = Database({"par": [("a", "b")]})
        database.relation("par")
        database.probe("par", 0, "a")
        database.remove_relation("par")
        assert database.relation("par") == frozenset()
        assert list(database.probe("par", 0, "a")) == []
        database.add_fact("par", ("x", "y"))
        assert list(database.probe("par", 0, "x")) == [("x", "y")]

    def test_probe_ignores_short_tuples(self):
        database = Database({"mixed": [("a",), ("a", "b")]})
        assert list(database.probe("mixed", 1, "b")) == [("a", "b")]

    def test_copy_does_not_share_indexes(self):
        database = Database({"par": [("a", "b")]})
        database.probe("par", 0, "a")
        clone = database.copy()
        clone.add_fact("par", ("a", "c"))
        assert sorted(clone.probe("par", 0, "a")) == [("a", "b"), ("a", "c")]
        assert list(database.probe("par", 0, "a")) == [("a", "b")]

    def test_version_counter_bumps_on_every_mutation(self):
        database = Database({"par": [("a", "b")]})
        v0 = database.version
        assert database.add_fact("par", ("b", "c")) and database.version > v0
        v1 = database.version
        assert not database.add_fact("par", ("b", "c"))  # duplicate: no change
        assert database.version == v1
        database.update(Database({"anc": [("a", "c")]}))
        assert database.version > v1
        v2 = database.version
        database.remove_relation("anc")
        assert database.version > v2
