"""Unit tests for repro.datalog.database."""

from repro.datalog.atoms import ground_atom
from repro.datalog.database import Database


class TestMutation:
    def test_add_fact_returns_newness(self):
        database = Database()
        assert database.add_fact("par", ("a", "b"))
        assert not database.add_fact("par", ("a", "b"))

    def test_add_edge(self):
        database = Database()
        database.add_edge("b", 1, 2)
        assert database.contains("b", (1, 2))

    def test_update_merges(self):
        left = Database({"p": [(1,)]})
        right = Database({"p": [(2,)], "q": [(3,)]})
        left.update(right)
        assert left.relation("p") == {(1,), (2,)}
        assert left.relation("q") == {(3,)}

    def test_remove_relation(self):
        database = Database({"p": [(1,)]})
        database.remove_relation("p")
        assert database.relation("p") == frozenset()


class TestAccess:
    def test_relation_of_missing_predicate_is_empty(self):
        assert Database().relation("nope") == frozenset()

    def test_active_domain(self):
        database = Database({"par": [("a", "b"), ("b", "c")]})
        assert database.active_domain() == {"a", "b", "c"}

    def test_fact_count_and_len(self):
        database = Database({"p": [(1,), (2,)], "q": [(1, 2)]})
        assert database.fact_count() == 3
        assert len(database) == 3

    def test_facts_iteration_round_trip(self):
        database = Database({"par": [("a", "b")]})
        facts = list(database.facts())
        assert facts == [ground_atom("par", ("a", "b"))]
        assert Database.from_facts(facts) == database

    def test_contains_atom(self):
        database = Database({"par": [("a", "b")]})
        assert ground_atom("par", ("a", "b")) in database
        assert ground_atom("par", ("b", "a")) not in database

    def test_restrict(self):
        database = Database({"p": [(1,)], "q": [(2,)]})
        restricted = database.restrict(["p"])
        assert restricted.predicates() == {"p"}

    def test_rename_merges_relations(self):
        database = Database({"b1": [(1, 2)], "b2": [(2, 3)]})
        merged = database.rename({"b1": "b", "b2": "b"})
        assert merged.relation("b") == {(1, 2), (2, 3)}


class TestEquality:
    def test_equality_ignores_empty_relations(self):
        left = Database({"p": [(1,)], "q": []})
        right = Database({"p": [(1,)]})
        assert left == right

    def test_copy_is_independent(self):
        original = Database({"p": [(1,)]})
        clone = original.copy()
        clone.add_fact("p", (2,))
        assert original.relation("p") == {(1,)}
