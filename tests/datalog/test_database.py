"""Unit tests for repro.datalog.database."""

import pytest

from repro.datalog.atoms import ground_atom
from repro.datalog.database import Database


class TestMutation:
    def test_add_fact_returns_newness(self):
        database = Database()
        assert database.add_fact("par", ("a", "b"))
        assert not database.add_fact("par", ("a", "b"))

    def test_add_edge(self):
        database = Database()
        database.add_edge("b", 1, 2)
        assert database.contains("b", (1, 2))

    def test_update_merges(self):
        left = Database({"p": [(1,)]})
        right = Database({"p": [(2,)], "q": [(3,)]})
        left.update(right)
        assert left.relation("p") == {(1,), (2,)}
        assert left.relation("q") == {(3,)}

    def test_remove_relation(self):
        database = Database({"p": [(1,)]})
        database.remove_relation("p")
        assert database.relation("p") == frozenset()


class TestAccess:
    def test_relation_of_missing_predicate_is_empty(self):
        assert Database().relation("nope") == frozenset()

    def test_active_domain(self):
        database = Database({"par": [("a", "b"), ("b", "c")]})
        assert database.active_domain() == {"a", "b", "c"}

    def test_fact_count_and_len(self):
        database = Database({"p": [(1,), (2,)], "q": [(1, 2)]})
        assert database.fact_count() == 3
        assert len(database) == 3

    def test_facts_iteration_round_trip(self):
        database = Database({"par": [("a", "b")]})
        facts = list(database.facts())
        assert facts == [ground_atom("par", ("a", "b"))]
        assert Database.from_facts(facts) == database

    def test_contains_atom(self):
        database = Database({"par": [("a", "b")]})
        assert ground_atom("par", ("a", "b")) in database
        assert ground_atom("par", ("b", "a")) not in database

    def test_restrict(self):
        database = Database({"p": [(1,)], "q": [(2,)]})
        restricted = database.restrict(["p"])
        assert restricted.predicates() == {"p"}

    def test_rename_merges_relations(self):
        database = Database({"b1": [(1, 2)], "b2": [(2, 3)]})
        merged = database.rename({"b1": "b", "b2": "b"})
        assert merged.relation("b") == {(1, 2), (2, 3)}


class TestEquality:
    def test_equality_ignores_empty_relations(self):
        left = Database({"p": [(1,)], "q": []})
        right = Database({"p": [(1,)]})
        assert left == right

    def test_copy_is_independent(self):
        original = Database({"p": [(1,)]})
        clone = original.copy()
        clone.add_fact("p", (2,))
        assert original.relation("p") == {(1,)}


class TestIncrementalIndexes:
    """The persistent hash indexes and cached snapshots behind the hot path."""

    def test_relation_snapshot_is_cached_until_mutation(self):
        database = Database({"par": [("a", "b")]})
        first = database.relation("par")
        assert database.relation("par") is first  # O(1) repeat access
        database.add_fact("par", ("b", "c"))
        second = database.relation("par")
        assert second is not first
        assert second == {("a", "b"), ("b", "c")}
        assert first == {("a", "b")}  # old snapshot is immutable history

    def test_probe_returns_matching_tuples_only(self):
        database = Database({"par": [("a", "b"), ("a", "c"), ("b", "c")]})
        assert sorted(database.probe("par", 0, "a")) == [("a", "b"), ("a", "c")]
        assert sorted(database.probe("par", 1, "c")) == [("a", "c"), ("b", "c")]
        assert list(database.probe("par", 0, "zzz")) == []
        assert list(database.probe("absent", 0, "a")) == []

    def test_probe_index_is_maintained_on_add_fact(self):
        database = Database({"par": [("a", "b")]})
        assert list(database.probe("par", 0, "a")) == [("a", "b")]  # builds the index
        database.add_fact("par", ("a", "c"))
        assert sorted(database.probe("par", 0, "a")) == [("a", "b"), ("a", "c")]
        database.add_fact("par", ("a", "c"))  # duplicate: must not double-index
        assert sorted(database.probe("par", 0, "a")) == [("a", "b"), ("a", "c")]

    def test_probe_index_is_maintained_on_update(self):
        database = Database({"par": [("a", "b")]})
        assert list(database.probe("par", 1, "b")) == [("a", "b")]
        other = Database({"par": [("c", "b"), ("a", "b")], "anc": [("x", "y")]})
        database.update(other)
        assert sorted(database.probe("par", 1, "b")) == [("a", "b"), ("c", "b")]
        assert list(database.probe("anc", 0, "x")) == [("x", "y")]
        assert database.relation("par") == {("a", "b"), ("c", "b")}

    def test_remove_relation_drops_snapshot_and_indexes(self):
        database = Database({"par": [("a", "b")]})
        database.relation("par")
        database.probe("par", 0, "a")
        database.remove_relation("par")
        assert database.relation("par") == frozenset()
        assert list(database.probe("par", 0, "a")) == []
        database.add_fact("par", ("x", "y"))
        assert list(database.probe("par", 0, "x")) == [("x", "y")]

    def test_probe_ignores_short_tuples(self):
        database = Database({"mixed": [("a",), ("a", "b")]})
        assert list(database.probe("mixed", 1, "b")) == [("a", "b")]

    def test_copy_does_not_share_indexes(self):
        database = Database({"par": [("a", "b")]})
        database.probe("par", 0, "a")
        clone = database.copy()
        clone.add_fact("par", ("a", "c"))
        assert sorted(clone.probe("par", 0, "a")) == [("a", "b"), ("a", "c")]
        assert list(database.probe("par", 0, "a")) == [("a", "b")]

    def test_version_counter_bumps_on_every_mutation(self):
        database = Database({"par": [("a", "b")]})
        v0 = database.version
        assert database.add_fact("par", ("b", "c")) and database.version > v0
        v1 = database.version
        assert not database.add_fact("par", ("b", "c"))  # duplicate: no change
        assert database.version == v1
        database.update(Database({"anc": [("a", "c")]}))
        assert database.version > v1
        v2 = database.version
        database.remove_relation("anc")
        assert database.version > v2


class TestAddFacts:
    def test_bulk_insert_mixes_atoms_and_pairs(self):
        from repro.datalog import ground_atom

        database = Database()
        added = database.add_facts(
            [ground_atom("par", ("a", "b")), ("par", ("b", "c")), ("anc", ("a", "c"))]
        )
        assert added == 3
        assert database.relation("par") == {("a", "b"), ("b", "c")}
        assert database.relation("anc") == {("a", "c")}

    def test_bulk_insert_bumps_version_exactly_once(self):
        database = Database({"par": [("a", "b")]})
        v0 = database.version
        added = database.add_facts([("par", ("x", str(i))) for i in range(1000)])
        assert added == 1000
        assert database.version == v0 + 1

    def test_duplicates_are_not_counted_and_do_not_bump(self):
        database = Database({"par": [("a", "b")]})
        v0 = database.version
        assert database.add_facts([("par", ("a", "b")), ("par", ("a", "b"))]) == 0
        assert database.version == v0

    def test_bulk_insert_maintains_live_indexes_and_snapshots(self):
        database = Database({"par": [("a", "b")]})
        database.relation("par")  # warm the snapshot
        assert list(database.probe("par", 0, "a")) == [("a", "b")]  # build the index
        database.add_facts([("par", ("a", "c")), ("par", ("d", "e"))])
        assert sorted(database.probe("par", 0, "a")) == [("a", "b"), ("a", "c")]
        assert database.relation("par") == {("a", "b"), ("a", "c"), ("d", "e")}

    def test_from_facts_goes_through_bulk_insert(self):
        from repro.datalog import ground_atom

        database = Database.from_facts(
            [ground_atom("par", ("a", "b")), ground_atom("par", ("b", "c"))]
        )
        assert database.fact_count() == 2
        assert database.version == 1

    def test_add_relations_takes_pregrouped_sets_with_one_bump(self):
        database = Database({"par": [("a", "b")]})
        assert list(database.probe("par", 0, "a")) == [("a", "b")]  # build the index
        v0 = database.version
        added = database.add_relations(
            {"par": {("a", "c"), ("a", "b")}, "anc": {("a", "c")}}
        )
        assert added == 2  # ("a", "b") was a duplicate
        assert database.version == v0 + 1
        assert sorted(database.probe("par", 0, "a")) == [("a", "b"), ("a", "c")]
        assert database.relation("anc") == {("a", "c")}

    def test_adopt_wraps_grouped_sets_without_copying(self):
        bucket = {("a", "b"), ("b", "c")}
        database = Database.adopt({"par": bucket})
        assert database.relation("par") == {("a", "b"), ("b", "c")}
        assert list(database.probe("par", 0, "a")) == [("a", "b")]
        assert database.fact_count() == 2

    def test_overlay_update_of_pure_base_duplicates_leaves_no_local_relation(self):
        base = Database({"par": [("a", "b")]})
        overlay = base.overlay()
        overlay.update(Database({"par": [("a", "b")]}))
        assert overlay._relations == {}  # still pristine: no phantom empty set
        assert overlay.copy() is not overlay  # pristine fork path still applies

    def test_update_never_retains_the_other_databases_sets(self):
        delta = Database.adopt({"par": {("x", "y")}})
        database = Database({"par": [("a", "b")]})
        database.update(delta)
        database.add_fact("par", ("p", "q"))
        assert delta.relation("par") == {("x", "y")}  # untouched by the merge


class TestRelationView:
    def test_view_is_the_live_storage_not_a_snapshot(self):
        database = Database({"par": [("a", "b")]})
        view = database.relation_view("par")
        assert ("a", "b") in view and ("x", "y") not in view
        database.add_fact("par", ("x", "y"))
        # Live: the same view sees the new fact without any rebuild.
        assert ("x", "y") in view
        assert database.relation_view("missing") == frozenset()

    def test_overlay_view_unions_local_and_base(self):
        base = Database({"par": [("a", "b")]})
        overlay = base.overlay()
        assert overlay.relation_view("par") is base.relation_view("par")
        overlay.add_fact("par", ("c", "d"))
        view = overlay.relation_view("par")
        assert ("a", "b") in view and ("c", "d") in view
        assert ("x", "y") not in view

    def test_overlay_view_skips_an_empty_base_relation(self):
        base = Database()
        overlay = base.overlay()
        overlay.add_fact("anc", ("a", "b"))
        view = overlay.relation_view("anc")
        assert ("a", "b") in view


class TestWarmCopy:
    def test_copy_carries_snapshots_and_indexes(self):
        database = Database({"par": [("a", "b"), ("a", "c")]})
        snapshot = database.relation("par")  # warm the snapshot
        database.probe("par", 0, "a")  # build the index
        clone = database.copy()
        # The clone serves the same snapshot object (immutable) and answers
        # probes without touching the original's structures.
        assert clone.relation("par") is snapshot
        assert sorted(clone.probe("par", 0, "a")) == [("a", "b"), ("a", "c")]

    def test_copied_index_buckets_are_independent(self):
        database = Database({"par": [("a", "b")]})
        database.probe("par", 0, "a")
        clone = database.copy()
        clone.add_fact("par", ("a", "z"))
        assert sorted(clone.probe("par", 0, "a")) == [("a", "b"), ("a", "z")]
        assert list(database.probe("par", 0, "a")) == [("a", "b")]
        database.add_fact("par", ("a", "w"))
        assert sorted(database.probe("par", 0, "a")) == [("a", "b"), ("a", "w")]
        assert sorted(clone.probe("par", 0, "a")) == [("a", "b"), ("a", "z")]


class TestOverlayDatabase:
    def base(self):
        return Database({"par": [("a", "b"), ("b", "c")], "anc": [("a", "b")]})

    def test_reads_fall_through_to_the_base(self):
        base = self.base()
        overlay = base.overlay()
        assert overlay.relation("par") == base.relation("par")
        assert overlay.contains("par", ("a", "b"))
        assert overlay.cardinality("par") == 2
        assert overlay.predicates() == base.predicates()
        assert list(overlay.probe("par", 0, "a")) == [("a", "b")]

    def test_writes_stay_local(self):
        base = self.base()
        version = base.version
        overlay = base.overlay()
        assert overlay.add_fact("anc", ("a", "c"))
        assert overlay.contains("anc", ("a", "c"))
        assert not base.contains("anc", ("a", "c"))
        assert base.version == version
        assert overlay.relation("anc") == {("a", "b"), ("a", "c")}
        assert overlay.cardinality("anc") == 2

    def test_base_duplicates_are_refused(self):
        overlay = self.base().overlay()
        assert not overlay.add_fact("par", ("a", "b"))
        assert overlay.add_facts([("par", ("a", "b")), ("par", ("z", "w"))]) == 1
        assert overlay.fact_count() == self.base().fact_count() + 1

    def test_probe_merges_base_and_local_buckets(self):
        overlay = self.base().overlay()
        overlay.add_fact("par", ("a", "x"))
        assert sorted(overlay.probe("par", 0, "a")) == [("a", "b"), ("a", "x")]
        # predicates absent locally keep the base's index path
        assert list(overlay.probe("anc", 0, "a")) == [("a", "b")]

    def test_copy_of_pristine_overlay_is_a_fresh_fork(self):
        overlay = self.base().overlay()
        fork = overlay.copy()
        fork.add_fact("anc", ("x", "y"))
        assert not overlay.contains("anc", ("x", "y"))

    def test_copy_of_written_overlay_is_independent(self):
        overlay = self.base().overlay()
        overlay.add_fact("anc", ("a", "c"))
        clone = overlay.copy()
        assert clone.contains("anc", ("a", "c"))
        clone.add_fact("anc", ("a", "d"))
        assert not overlay.contains("anc", ("a", "d"))

    def test_restrict_and_materialize_see_the_union(self):
        overlay = self.base().overlay()
        overlay.add_fact("anc", ("a", "c"))
        restricted = overlay.restrict(["anc"])
        assert restricted.relation("anc") == {("a", "b"), ("a", "c")}
        assert restricted == overlay.restrict(["anc"])
        full = overlay.materialize()
        assert full.relation("par") == self.base().relation("par")
        assert full.relation("anc") == {("a", "b"), ("a", "c")}

    def test_update_from_delta_skips_base_facts(self):
        overlay = self.base().overlay()
        overlay.update(Database({"par": [("a", "b"), ("q", "r")]}))
        assert overlay.cardinality("par") == 3  # only ("q","r") was new

    def test_version_reflects_local_writes(self):
        overlay = self.base().overlay()
        v0 = overlay.version
        overlay.add_fact("anc", ("a", "c"))
        assert overlay.version > v0

    def test_cannot_remove_relations(self):
        with pytest.raises(TypeError, match="cannot remove"):
            self.base().overlay().remove_relation("par")
