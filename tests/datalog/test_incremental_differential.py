"""Differential fuzzing: incremental maintenance vs from-scratch evaluation.

The metamorphic oracle: after any interleaving of insert/delete batches, a
:class:`MaterializedView`'s model must equal what every registered engine
computes from scratch over the view's current base facts — compiled and
interpreted maintenance alike — and the support-count invariants must hold
(no fact with zero support survives, no rederivable fact is lost, counting
predicates carry the exact derivation count).

Programs and mutation batches come from the shared strategy pool
(:mod:`tests.datalog.strategies`): linear, indirect, non-linear, and mutual
recursion over random edge-labeled graphs, so both maintenance strategies
(counting for non-recursive strata, DRed for recursive ones) are exercised
on every run.
"""

from hypothesis import given, settings, strategies as st

from repro.datalog import Database, MaterializedView, available_engines, get_engine
from repro.datalog.atoms import Atom
from repro.datalog.engine.base import match_body
from repro.datalog.engine.registry import EngineNotApplicableError
from repro.datalog.terms import Constant, Variable

from tests.datalog.strategies import (
    PROGRAM_POOL,
    edge_databases,
    edge_fact_batches,
    program_indexes,
    stratified_view_programs,
)

evaluate_seminaive = get_engine("seminaive").evaluate


@st.composite
def mutation_sequences(draw, max_steps: int = 4):
    """A short interleaving of (insertions, deletions) batches."""
    steps = draw(st.integers(min_value=1, max_value=max_steps))
    return [
        (draw(edge_fact_batches()), draw(edge_fact_batches())) for _ in range(steps)
    ]


def recompute_support(view, predicate: str, values):
    """Independent derivation count: brute-force matching over the full model.

    This is what the view's counting maintenance claims to track
    incrementally for non-recursive strata — recomputed here from nothing
    but the rules and the (already verified) model.
    """
    count = 0
    for rule in view.program.rules:
        if rule.head.predicate != predicate:
            continue
        if rule.is_fact():
            if rule.head.as_fact_tuple() == values:
                count += 1
            continue
        for substitution in match_body(rule.body, view.model):
            head = tuple(
                substitution[term].value if isinstance(term, Variable) else term.value
                for term in rule.head.terms
            )
            if head == values:
                count += 1
    return count


def check_support_invariants(view):
    for predicate in view.counting_predicates:
        counts = view.support_counts(predicate)
        relation = view.relation(predicate)
        base = view.base_facts().relation(predicate)
        # No zombie: every fact in the model has positive support.
        for values in relation:
            assert view.support(predicate, values) > 0, (predicate, values)
        # No leak: every counted fact is in the model, with the exact count.
        for values, count in counts.items():
            assert count > 0
            assert values in relation, (predicate, values)
            assert count == recompute_support(view, predicate, values), (
                predicate,
                values,
            )
        # Presence is exactly base-assertion or derivation support.
        for values in relation:
            assert values in base or counts.get(values, 0) > 0, (predicate, values)


def check_against_engines(view):
    reference = evaluate_seminaive(view.program, view.base_facts())
    assert view.idb_facts() == reference.idb_facts
    goal = view.program.goal
    expected = reference.answers(goal)
    assert view.answers() == expected
    for name in available_engines():
        try:
            result = get_engine(name).evaluate(view.program, view.base_facts())
        except EngineNotApplicableError:
            continue
        assert result.answers(goal) == expected, name


@settings(max_examples=40, deadline=None)
@given(program_indexes, edge_databases(), mutation_sequences())
def test_incremental_matches_from_scratch_for_all_engines(
    program_index, database, mutations
):
    program = PROGRAM_POOL[program_index]
    compiled = MaterializedView(program, database)
    interpreted = MaterializedView(program, database, compiled=False)
    check_against_engines(compiled)
    for insertions, deletions in mutations:
        report = compiled.apply(insertions=insertions, deletions=deletions)
        interpreted.apply(insertions=insertions, deletions=deletions)
        # Compiled and interpreted maintenance walk identical models.
        assert compiled.idb_facts() == interpreted.idb_facts()
        assert compiled.base_facts() == interpreted.base_facts()
        check_against_engines(compiled)
        check_support_invariants(compiled)
        # Bookkeeping sanity: nothing rederived that was not overdeleted.
        assert report.rederived <= report.overdeleted


@settings(max_examples=30, deadline=None)
@given(stratified_view_programs, edge_databases(), mutation_sequences())
def test_stratified_negation_views_match_from_scratch(program, database, mutations):
    """Negation over lower strata rides the same signed maintenance sweep.

    The stratified pool's view-eligible programs put an anti-join over a
    recursive closure (and over an IDB domain predicate); after every
    mutation batch the maintained model must equal from-scratch evaluation
    by every applicable engine, with exact support counts on the counting
    strata — the negated rule's stratum among them.
    """
    compiled = MaterializedView(program, database)
    interpreted = MaterializedView(program, database, compiled=False)
    check_against_engines(compiled)
    check_support_invariants(compiled)
    for insertions, deletions in mutations:
        compiled.apply(insertions=insertions, deletions=deletions)
        interpreted.apply(insertions=insertions, deletions=deletions)
        assert compiled.idb_facts() == interpreted.idb_facts()
        assert compiled.base_facts() == interpreted.base_facts()
        check_against_engines(compiled)
        check_support_invariants(compiled)


@settings(max_examples=20, deadline=None)
@given(stratified_view_programs, edge_databases(), mutation_sequences(max_steps=3))
def test_stratified_view_rebuild_reproduces_support_counts(
    program, database, mutations
):
    """Base facts remain a complete account of a negation view's state."""
    view = MaterializedView(program, database)
    for insertions, deletions in mutations:
        view.apply(insertions=insertions, deletions=deletions)
    rebuilt = MaterializedView(program, view.base_facts())
    assert rebuilt.idb_facts() == view.idb_facts()
    for predicate in view.counting_predicates:
        assert rebuilt.support_counts(predicate) == view.support_counts(predicate)


# Rewrites assume the paper's EDB/IDB disjointness (Section 2.1: B interprets
# EDB predicates only) — magic renames IDB predicates, so database facts
# stored under an IDB name are outside its contract.  The mutation batches
# touch e/f, so the magic comparison runs on the pool programs where e/f are
# genuinely EDB (all but the fact-rule program, whose f is an IDB head).
MAGIC_SAFE_INDEXES = [
    index
    for index, program in enumerate(PROGRAM_POOL)
    if not ({"e", "f"} & program.idb_predicates())
]


@settings(max_examples=25, deadline=None)
@given(
    st.sampled_from(MAGIC_SAFE_INDEXES), edge_databases(), mutation_sequences(max_steps=3)
)
def test_incremental_matches_magic_on_bound_goals(program_index, database, mutations):
    """With a constant-bound goal the magic engine applies too; the view's
    answers must agree with it after every maintenance step."""
    program = PROGRAM_POOL[program_index]
    goal = program.goal
    bound_goal = Atom(goal.predicate, (Constant(0), Variable("Y")))
    bound_program = program.with_goal(bound_goal)
    view = MaterializedView(bound_program, database)
    magic = get_engine("magic")
    for insertions, deletions in mutations:
        view.apply(insertions=insertions, deletions=deletions)
        expected = magic.evaluate(bound_program, view.base_facts()).answers()
        assert view.answers() == expected


@settings(max_examples=25, deadline=None)
@given(edge_databases(), mutation_sequences(max_steps=3))
def test_rebuilding_from_base_facts_reproduces_the_view(database, mutations):
    """A view's base facts are a complete account of its retractable state:
    a fresh view built from them equals the maintained one."""
    program = PROGRAM_POOL[3]  # mutual recursion: both strata kinds under DRed
    view = MaterializedView(program, database)
    for insertions, deletions in mutations:
        view.apply(insertions=insertions, deletions=deletions)
    rebuilt = MaterializedView(program, view.base_facts())
    assert rebuilt.idb_facts() == view.idb_facts()
    for predicate in view.counting_predicates:
        assert rebuilt.support_counts(predicate) == view.support_counts(predicate)


def test_delete_everything_returns_to_empty():
    program = PROGRAM_POOL[2]
    facts = [("e", (0, 1)), ("e", (1, 2)), ("f", (0, 0)), ("f", (2, 0))]
    view = MaterializedView(program, Database())
    view.apply(insertions=facts)
    assert view.relation("s")
    view.apply(deletions=facts)
    assert view.idb_facts() == Database()
    assert view.base_facts() == Database()
    for predicate in view.counting_predicates:
        assert view.support_counts(predicate) == {}
