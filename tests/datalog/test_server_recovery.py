"""DurableDatalogService: crash recovery, snapshots, drain, and replay laws.

The central property: a server killed at any point — mid-run without a
close, with a torn WAL tail, or in the window between snapshot write and
WAL truncation — restarts with exactly the state every acknowledged write
produced, including registered programs and live materialized views.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog import (
    Database,
    DatalogService,
    QueryNotRegisteredError,
    ServiceDrainingError,
)
from repro.datalog.server.durable import (
    WAL_NAME,
    DurableDatalogService,
    resolve_transforms,
)
from repro.datalog.server.wal import WriteAheadLog
from repro.errors import EvaluationError, ParseError
from tests.datalog.strategies import edge_fact_batches

REACH = """\
?reach($src, Y)
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- reach(X, Z), edge(Z, Y).
"""

TRANS = """\
?t(X, Y)
t(X, Y) :- e(X, Y).
t(X, Y) :- t(X, Z), e(Z, Y).
"""


def make_durable(directory, **kwargs):
    kwargs.setdefault("snapshot_every", 10_000)  # never auto-snapshot unless asked
    return DurableDatalogService(directory, **kwargs)


def model(service) -> dict:
    """The observable state recovery must reproduce exactly."""
    database = service.service.database
    return {
        "facts": {
            name: database.relation(name) for name in sorted(database.predicates())
        },
        "programs": service.registered_queries(),
        "views": service.materialized_bindings(),
    }


# ----------------------------------------------------------------------
# Basic recovery
# ----------------------------------------------------------------------
class TestRecovery:
    def test_fresh_directory_starts_empty(self, tmp_path):
        service = make_durable(tmp_path)
        assert service.recovery.wal_records_replayed == 0
        assert not service.recovery.snapshot_loaded
        assert service.registered_queries() == ()
        service.close()

    def test_crash_without_close_recovers_exact_state(self, tmp_path):
        service = make_durable(tmp_path)
        service.register_program("reach", REACH)
        service.add_facts([("edge", ("a", "b")), ("edge", ("b", "c"))])
        service.materialize("reach", {"src": "a"})
        service.add_facts([("edge", ("c", "d"))])
        service.remove_facts([("edge", ("b", "c"))])
        expected = model(service)
        answers = service.execute("reach", {"src": "a"})
        del service  # crash: no close(), no snapshot

        recovered = make_durable(tmp_path)
        assert recovered.recovery.wal_records_replayed == 5
        assert not recovered.recovery.snapshot_loaded
        assert model(recovered) == expected
        assert recovered.execute("reach", {"src": "a"}) == answers
        recovered.close()

    def test_clean_close_snapshots_and_truncates_wal(self, tmp_path):
        service = make_durable(tmp_path)
        service.register_program("reach", REACH)
        service.add_facts([("edge", (1, 2))])
        expected = model(service)
        service.close()
        assert os.path.getsize(tmp_path / WAL_NAME) == 0

        recovered = make_durable(tmp_path)
        assert recovered.recovery.snapshot_loaded
        assert recovered.recovery.wal_records_replayed == 0
        assert model(recovered) == expected
        recovered.close()

    def test_register_with_transforms_and_engine_survives(self, tmp_path):
        service = make_durable(tmp_path)
        service.register_program(
            "reach", REACH, transforms=["magic"], engine="seminaive"
        )
        service.add_facts([("edge", (1, 2)), ("edge", (2, 3))])
        answers = service.execute("reach", {"src": 1})
        del service

        recovered = make_durable(tmp_path)
        assert recovered.execute("reach", {"src": 1}) == answers
        assert recovered._program_specs["reach"]["transforms"] == ["magic"]
        assert recovered._program_specs["reach"]["engine"] == "seminaive"
        recovered.close()

    def test_replace_register_last_wins_on_replay(self, tmp_path):
        service = make_durable(tmp_path)
        service.register_program("q", REACH)
        service.register_program("q", TRANS, replace=True)
        with pytest.raises(ValueError, match="replace"):
            service.register_program("q", REACH)
        del service

        recovered = make_durable(tmp_path)
        assert recovered._program_specs["q"]["source"] == TRANS
        recovered.close()

    def test_dematerialize_survives_crash(self, tmp_path):
        service = make_durable(tmp_path)
        service.register_program("reach", REACH)
        service.add_facts([("edge", (1, 2))])
        service.materialize("reach", {"src": 1})
        assert service.dematerialize("reach", {"src": 1}) is True
        del service

        recovered = make_durable(tmp_path)
        assert recovered.materialized_bindings() == ()
        recovered.close()

    def test_torn_wal_tail_is_dropped_and_reported(self, tmp_path):
        service = make_durable(tmp_path)
        service.register_program("reach", REACH)
        service.add_facts([("edge", (1, 2))])
        del service
        with open(tmp_path / WAL_NAME, "ab") as handle:
            handle.write(b"WR\x00\x00\x00")  # torn mid-header, as kill -9 leaves

        recovered = make_durable(tmp_path)
        assert recovered.recovery.wal_tail_corrupt
        assert recovered.recovery.wal_records_replayed == 2
        assert recovered.execute("reach", {"src": 1}) == frozenset({(2,)})
        recovered.close()

    def test_crash_between_snapshot_and_wal_truncate_is_idempotent(self, tmp_path):
        """The dangerous window: snapshot persisted, WAL not yet truncated.
        Replaying the full WAL over the snapshot that already contains its
        effects must land on the same state (final-write-wins semantics)."""
        service = make_durable(tmp_path)
        service.register_program("reach", REACH)
        service.add_facts([("edge", (1, 2)), ("edge", (2, 3))])
        service.materialize("reach", {"src": 1})
        service.remove_facts([("edge", (2, 3))])
        expected = model(service)
        # Simulate the torn snapshot(): state written, truncate never ran.
        service._snapshot_store.write(service._capture_state())
        del service

        recovered = make_durable(tmp_path)
        assert recovered.recovery.snapshot_loaded
        assert recovered.recovery.wal_records_replayed == 4  # full, stale WAL
        assert model(recovered) == expected
        recovered.close()


# ----------------------------------------------------------------------
# Rejected operations must never reach the WAL (a logged record that fails
# to apply would otherwise brick the data directory on restart)
# ----------------------------------------------------------------------
class TestRejectedOperationsAreNotLogged:
    def test_register_with_invalid_source_leaves_no_record(self, tmp_path):
        service = make_durable(tmp_path)
        with pytest.raises(ParseError):
            service.register_program("bad", "this is not datalog (((")
        assert service.statistics()["wal_records"] == 0
        del service  # crash without close

        recovered = make_durable(tmp_path)  # must not raise
        assert recovered.recovery.skipped == ()
        assert recovered.registered_queries() == ()
        recovered.close()

    def test_register_without_goal_leaves_no_record(self, tmp_path):
        service = make_durable(tmp_path)
        with pytest.raises(EvaluationError, match="no goal"):
            service.register_program("goalless", "p(X) :- q(X).\n")
        assert service.statistics()["wal_records"] == 0
        service.close()

    def test_materialize_of_unknown_query_leaves_no_record(self, tmp_path):
        service = make_durable(tmp_path)
        with pytest.raises(QueryNotRegisteredError):
            service.materialize("ghost", {"src": 1})
        assert service.statistics()["wal_records"] == 0
        del service  # crash without close

        recovered = make_durable(tmp_path)  # must not raise
        assert recovered.recovery.skipped == ()
        recovered.close()

    def test_noop_dematerialize_is_not_logged(self, tmp_path):
        service = make_durable(tmp_path)
        assert service.dematerialize("ghost", {"src": 1}) is False
        assert service.statistics()["wal_records"] == 0
        service.close()

    def test_exotic_fact_values_are_rejected_at_write_time(self, tmp_path):
        """Values outside the codec's native types must fail the write (the
        WAL refuses the pickle escape hatch), not poison recovery."""
        service = make_durable(tmp_path)
        service.register_program("reach", REACH)
        with pytest.raises(ValueError, match="pickle"):
            service.add_facts([("edge", (1 + 2j, "x"))])
        assert service.statistics()["wal_records"] == 1  # just the register
        assert service.service.database.fact_count() == 0  # write aborted
        service.close()

    def test_recovery_skips_and_reports_unreplayable_records(self, tmp_path):
        """A WAL written by a buggy or newer server (e.g. pre-fix logs of
        rejected requests) must not brick the directory: bad records are
        skipped and reported, everything else replays."""
        service = make_durable(tmp_path)
        service.register_program("reach", REACH)
        service.add_facts([("edge", (1, 2))])
        del service  # crash without close

        with WriteAheadLog(tmp_path / WAL_NAME) as wal:
            wal.append({"kind": "materialize", "name": "ghost", "params": {}})
            wal.append({"kind": "frobnicate"})
            wal.append({"kind": "add_facts", "facts": [("edge", (2, 3))]})

        recovered = make_durable(tmp_path)
        assert recovered.recovery.wal_records_replayed == 3
        assert len(recovered.recovery.skipped) == 2
        assert "ghost" in recovered.recovery.skipped[0]
        assert "frobnicate" in recovered.recovery.skipped[1]
        assert "skipped" in str(recovered.recovery)
        assert recovered.execute("reach", {"src": 1}) == frozenset({(2,), (3,)})
        recovered.close()


# ----------------------------------------------------------------------
# Snapshot policy
# ----------------------------------------------------------------------
class TestSnapshotPolicy:
    def test_auto_snapshot_truncates_wal(self, tmp_path):
        service = DurableDatalogService(tmp_path, snapshot_every=3)
        service.register_program("reach", REACH)  # record 1
        service.add_facts([("edge", (1, 2))])  # record 2
        assert service.statistics()["snapshots_taken"] == 0
        service.add_facts([("edge", (2, 3))])  # record 3 -> snapshot
        stats = service.statistics()
        assert stats["snapshots_taken"] == 1
        assert stats["wal_records"] == 0
        expected = model(service)
        del service

        recovered = make_durable(tmp_path)
        assert recovered.recovery.snapshot_loaded
        assert model(recovered) == expected
        recovered.close()

    def test_explicit_snapshot(self, tmp_path):
        service = make_durable(tmp_path)
        service.register_program("reach", REACH)
        service.add_facts([("edge", (1, 2))])
        service.snapshot()
        assert service.statistics()["wal_records"] == 0
        service.add_facts([("edge", (2, 3))])
        expected = model(service)
        del service

        recovered = make_durable(tmp_path)
        assert recovered.recovery.snapshot_loaded
        assert recovered.recovery.wal_records_replayed == 1
        assert model(recovered) == expected
        recovered.close()


# ----------------------------------------------------------------------
# Drain and close semantics
# ----------------------------------------------------------------------
class TestDrainAndClose:
    def test_drain_refuses_writes_but_serves_reads(self, tmp_path):
        service = make_durable(tmp_path)
        service.register_program("reach", REACH)
        service.add_facts([("edge", (1, 2))])
        service.begin_drain()
        with pytest.raises(ServiceDrainingError):
            service.add_facts([("edge", (9, 9))])
        with pytest.raises(ServiceDrainingError):
            service.register_program("other", TRANS)
        with pytest.raises(ServiceDrainingError):
            service.materialize("reach", {"src": 1})
        assert service.execute("reach", {"src": 1}) == frozenset({(2,)})
        service.service.end_drain()
        service.add_facts([("edge", (2, 3))])
        service.close()

    def test_operations_after_close_raise(self, tmp_path):
        service = make_durable(tmp_path)
        service.close()
        service.close()  # idempotent
        with pytest.raises(EvaluationError, match="closed"):
            service.add_facts([("edge", (1, 2))])

    def test_context_manager_closes(self, tmp_path):
        with make_durable(tmp_path) as service:
            service.register_program("reach", REACH)
        assert os.path.getsize(tmp_path / WAL_NAME) == 0

    def test_unknown_transform_is_rejected_before_logging(self, tmp_path):
        service = make_durable(tmp_path)
        with pytest.raises(EvaluationError, match="unknown transform"):
            service.register_program("q", REACH, transforms=["bogus"])
        assert service.statistics()["wal_records"] == 0
        service.close()

    def test_resolve_transforms_round_trip(self):
        stages = resolve_transforms(["magic", "rectify", "constants"])
        assert [type(stage).__name__ for stage in stages] == [
            "MagicSets",
            "Rectify",
            "PropagateConstants",
        ]


# ----------------------------------------------------------------------
# Property: kill at any WAL record == uninterrupted prefix
# ----------------------------------------------------------------------
@st.composite
def interleaved_operations(draw):
    """A random mixed sequence of add/remove batches over the e/f domain."""
    operations = []
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        kind = draw(st.sampled_from(["add_facts", "remove_facts"]))
        operations.append((kind, draw(edge_fact_batches(max_size=3))))
    return operations


@settings(max_examples=25, deadline=None)
@given(operations=interleaved_operations(), data=st.data())
def test_kill_at_any_wal_record_recovers_the_acknowledged_prefix(
    tmp_path_factory, operations, data
):
    """Run a random interleaving of write batches, crash after an arbitrary
    acknowledged record, restart — the recovered model must equal an
    uninterrupted in-memory run of exactly the acknowledged operations.

    ``fsync="always"`` makes every acknowledged record durable, so cutting
    the WAL at any *record boundary* simulates every possible kill point
    (mid-record kills are the torn-tail tests' territory — the boundary
    before the torn record is what survives).
    """
    directory = tmp_path_factory.mktemp("durable")
    service = DurableDatalogService(directory, snapshot_every=10_000)
    service.register_program("t", TRANS)
    applied = []
    for kind, batch in operations:
        if kind == "add_facts":
            service.add_facts(batch)
        else:
            service.remove_facts(batch)
        applied.append((kind, batch))
    del service  # crash

    # Choose the kill point: keep the first `survivors` WAL records.
    records, tail_corrupt = WriteAheadLog.replay(directory / WAL_NAME)
    assert not tail_corrupt
    assert len(records) == 1 + len(applied)  # register + one per batch
    survivors = data.draw(
        st.integers(min_value=1, max_value=len(records)), label="survivors"
    )
    if survivors < len(records):
        # Byte offset of the cut: re-frame the surviving records.
        kept = 0
        offset = 0
        with open(directory / WAL_NAME, "rb") as handle:
            blob = handle.read()
        while kept < survivors:
            _, offset = WriteAheadLog._decode_one(blob, offset)
            kept += 1
        with open(directory / WAL_NAME, "r+b") as handle:
            handle.truncate(offset)

    recovered = DurableDatalogService(directory, snapshot_every=10_000)
    assert recovered.recovery.wal_records_replayed == survivors

    # The reference: an uninterrupted in-memory run of the surviving ops.
    reference = DatalogService(Database())
    reference.register_program("t", TRANS)
    for kind, batch in applied[: survivors - 1]:
        getattr(reference, kind)(batch)

    recovered_db = recovered.service.database
    reference_db = reference.database
    assert {
        name: recovered_db.relation(name) for name in recovered_db.predicates()
    } == {name: reference_db.relation(name) for name in reference_db.predicates()}
    assert recovered.execute("t", {}) == reference.execute("t", {})
    recovered.close()
