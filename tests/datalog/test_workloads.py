"""The graph-analytics workload package: generators and program portfolio.

Generators must be deterministic per seed and emit the shared conventions
(node/source facts, edge orientation); the portfolio programs must
validate and — on instances small enough to check independently — produce
answers matching straightforward Python oracles (BFS distances, degree
counters, brute-force triangle enumeration, a hand-rolled Andersen
fixpoint).
"""

from collections import Counter, deque

import pytest

from repro.datalog import get_engine
from repro.datalog.workloads import (
    PORTFOLIO,
    add_ordering,
    add_successors,
    grid,
    parse_workload,
    points_to_input,
    preferential_attachment,
    random_graph,
)

SEMINAIVE = get_engine("seminaive")


class TestGenerators:
    def test_deterministic_per_seed(self):
        assert preferential_attachment(200, 3, seed=9) == preferential_attachment(
            200, 3, seed=9
        )
        assert random_graph(50, 200, seed=2) == random_graph(50, 200, seed=2)
        assert points_to_input(40, 100, seed=1) == points_to_input(40, 100, seed=1)
        assert preferential_attachment(200, 3, seed=9) != preferential_attachment(
            200, 3, seed=10
        )

    def test_conventions_node_source_edge(self):
        database = preferential_attachment(100, 4, seed=0)
        assert database.cardinality("node") == 100
        assert database.relation("source") == {(0,)}
        for u, v in database.relation("edge"):
            assert 0 <= u < 100 and 0 <= v < 100 and u != v

    def test_preferential_attachment_is_heavy_tailed(self):
        database = preferential_attachment(500, 4, seed=0)
        degrees = Counter(u for u, _ in database.relation("edge"))
        # The early hub collects far more than the per-node budget.
        assert max(degrees.values()) > 4 * 5

    def test_grid_shape(self):
        database = grid(4, 3)
        # Right edges: 3 per row x 3 rows; down edges: 4 per column pair x 2.
        assert database.cardinality("edge") == 3 * 3 + 4 * 2
        assert (0, 1) in database.relation("edge")
        assert (0, 4) in database.relation("edge")

    def test_random_graph_exact_edge_count(self):
        database = random_graph(30, 123, seed=7)
        assert database.cardinality("edge") == 123
        with pytest.raises(ValueError):
            random_graph(3, 100)

    def test_successors_and_ordering_helpers(self):
        database = add_successors(grid(3, 3), 5)
        assert database.relation("succ") == {(1, 2), (2, 3), (3, 4), (4, 5)}
        database = add_ordering(grid(2, 2), 3)
        assert database.relation("lt") == {(0, 1), (0, 2), (1, 2)}

    def test_points_to_every_heap_object_allocated(self):
        database = points_to_input(30, 200, seed=4)
        allocated = {heap for _, heap in database.relation("alloc")}
        assert allocated == {f"h{i}" for i in range(30 // 4)}


class TestPortfolio:
    def test_every_program_validates(self):
        for name in PORTFOLIO:
            parse_workload(name).validate()

    def test_unknown_workload_named_in_error(self):
        with pytest.raises(KeyError, match="no_such"):
            parse_workload("no_such")

    def test_reachability_and_complement_partition_nodes(self):
        database = preferential_attachment(300, 3, seed=2)
        result = SEMINAIVE.evaluate(parse_workload("unreachable"), database)
        reach = result.relation("reach")
        unreach = result.relation("unreach")
        assert reach | unreach == database.relation("node")
        assert not reach & unreach

    def test_shortest_path_matches_bfs(self):
        database = add_successors(grid(7, 5), 20)
        result = SEMINAIVE.evaluate(parse_workload("shortest_path"), database)
        edges = database.relation("edge")
        adjacency = {}
        for u, v in edges:
            adjacency.setdefault(u, []).append(v)
        distances, queue = {0: 0}, deque([0])
        while queue:
            u = queue.popleft()
            for v in adjacency.get(u, ()):
                if v not in distances:
                    distances[v] = distances[u] + 1
                    queue.append(v)
        expected = {(n, d) for n, d in distances.items() if 0 < d <= 20}
        assert result.relation("shortest") == expected

    def test_degree_matches_counter(self):
        database = random_graph(40, 160, seed=6)
        result = SEMINAIVE.evaluate(parse_workload("degree"), database)
        expected = Counter(u for u, _ in database.relation("edge"))
        assert dict(result.relation("degree")) == dict(expected)

    def test_triangle_matches_brute_force(self):
        database = add_ordering(random_graph(20, 80, seed=8), 20)
        result = SEMINAIVE.evaluate(parse_workload("triangle"), database)
        edges = database.relation("edge")
        expected = {
            (x, y, z)
            for x, y in edges
            for (y2, z) in edges
            if y2 == y and (z, x) in edges and x < y and x < z
        }
        assert result.relation("tri") == expected
        apexes = {x for x, _, _ in expected}
        if apexes:
            assert result.relation("tri_apexes") == {(len(apexes),)}
        else:
            assert result.relation("tri_apexes") == frozenset()

    def test_points_to_matches_hand_rolled_andersen(self):
        database = points_to_input(25, 120, seed=3)
        result = SEMINAIVE.evaluate(parse_workload("points_to"), database)
        alloc = database.relation("alloc")
        assign = database.relation("assign")
        store = database.relation("store")
        load = database.relation("load")
        pt = set(alloc)
        hpt = set()
        changed = True
        while changed:
            changed = False
            for v, u in assign:
                for u2, h in list(pt):
                    if u2 == u and (v, h) not in pt:
                        pt.add((v, h))
                        changed = True
            for u, v in store:
                for u2, h1 in list(pt):
                    if u2 != u:
                        continue
                    for v2, h2 in list(pt):
                        if v2 == v and (h1, h2) not in hpt:
                            hpt.add((h1, h2))
                            changed = True
            for v, u in load:
                for u2, h1 in list(pt):
                    if u2 != u:
                        continue
                    for h1b, h2 in list(hpt):
                        if h1b == h1 and (v, h2) not in pt:
                            pt.add((v, h2))
                            changed = True
        assert result.relation("pt") == pt
        assert result.relation("hpt") == hpt

    def test_same_generation_is_reflexive_and_symmetric(self):
        database = grid(4, 4)
        result = SEMINAIVE.evaluate(parse_workload("same_generation"), database)
        sg = result.relation("sg")
        for (node,) in database.relation("node"):
            assert (node, node) in sg
        assert all((y, x) in sg for x, y in sg)

    def test_portfolio_runs_on_columnar_layout(self):
        database = preferential_attachment(100, 3, seed=1, layout="columnar")
        result = SEMINAIVE.evaluate(parse_workload("unreachable"), database)
        tuple_result = SEMINAIVE.evaluate(
            parse_workload("unreachable"), preferential_attachment(100, 3, seed=1)
        )
        assert result.idb_facts == tuple_result.idb_facts
        assert (
            result.statistics.as_dict() == tuple_result.statistics.as_dict()
        )
