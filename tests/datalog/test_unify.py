"""Unit tests for matching and unification."""

from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant, Variable
from repro.datalog.unify import compose, match_atom, unify_atoms


class TestMatchAtom:
    def test_simple_match(self):
        bindings = match_atom(Atom("par", ("X", "Y")), ("john", "mary"))
        assert bindings == {Variable("X"): Constant("john"), Variable("Y"): Constant("mary")}

    def test_constant_mismatch(self):
        assert match_atom(Atom("par", ("john", "Y")), ("mary", "sue")) is None

    def test_constant_match(self):
        assert match_atom(Atom("par", ("john", "Y")), ("john", "sue")) is not None

    def test_repeated_variable_must_agree(self):
        assert match_atom(Atom("p", ("X", "X")), ("a", "a")) is not None
        assert match_atom(Atom("p", ("X", "X")), ("a", "b")) is None

    def test_existing_bindings_respected(self):
        existing = {Variable("X"): Constant("john")}
        assert match_atom(Atom("par", ("X", "Y")), ("john", "m"), existing) is not None
        assert match_atom(Atom("par", ("X", "Y")), ("mary", "m"), existing) is None

    def test_arity_mismatch(self):
        assert match_atom(Atom("p", ("X",)), ("a", "b")) is None

    def test_input_substitution_not_mutated(self):
        existing = {Variable("X"): Constant("john")}
        match_atom(Atom("par", ("X", "Y")), ("john", "m"), existing)
        assert existing == {Variable("X"): Constant("john")}


class TestUnifyAtoms:
    def test_unifies_variable_with_constant(self):
        result = unify_atoms(Atom("p", ("X", "b")), Atom("p", ("a", "Y")))
        assert result[Variable("X")] == Constant("a")
        assert result[Variable("Y")] == Constant("b")

    def test_predicate_mismatch(self):
        assert unify_atoms(Atom("p", ("X",)), Atom("q", ("X",))) is None

    def test_constant_clash(self):
        assert unify_atoms(Atom("p", ("a",)), Atom("p", ("b",))) is None

    def test_variable_chain(self):
        result = unify_atoms(Atom("p", ("X", "X")), Atom("p", ("Y", "a")))
        # X and Y both end at the constant a after chasing bindings.
        def resolve(term):
            while isinstance(term, Variable) and term in result:
                term = result[term]
            return term

        assert resolve(Variable("X")) == Constant("a")
        assert resolve(Variable("Y")) == Constant("a")


class TestCompose:
    def test_inner_applied_first(self):
        inner = {Variable("X"): Variable("Y")}
        outer = {Variable("Y"): Constant("a")}
        composed = compose(outer, inner)
        assert composed[Variable("X")] == Constant("a")
        assert composed[Variable("Y")] == Constant("a")
