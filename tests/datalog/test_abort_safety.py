"""The abort-safety property (Hypothesis): cancelling or timing out a query
at an *arbitrary* cooperative checkpoint leaves the observable state —
``Database.version``, materialized-view answer counts, and the WAL bytes of
a durable service — exactly as it was before the request.

The trigger is a counting token that reports "cancelled" after N checkpoint
reads, so Hypothesis steers the abort to every checkpoint an evaluation
reaches: round boundaries, kernel batch boundaries in both columnar lanes,
and top-down resolution steps — for every guard-supporting engine and both
database layouts.
"""

import os
import tempfile

from hypothesis import given, settings, strategies as st

from repro.datalog import CancellationToken, DatalogService, QuerySession, parse_program
from repro.datalog.engine import available_engines, get_engine
from repro.datalog.server.durable import WAL_NAME, DurableDatalogService
from repro.errors import QueryAborted, QueryCancelled

from .strategies import edge_databases

GUARD_ENGINES = tuple(
    name
    for name in available_engines()
    if getattr(get_engine(name), "supports_guard", False)
)

#: The program shapes of strategies.PROGRAM_POOL with *bound* goals, so the
#: magic engine (which requires at least one bound goal argument) runs the
#: same property as the bottom-up and top-down engines.  Kept as source
#: text because the durable service persists source, not Program objects.
SOURCE_POOL = [
    """\
?t(0, Y)
t(X, Y) :- e(X, Y).
t(X, Y) :- t(X, Z), e(Z, Y).
""",
    """\
?t(1, Y)
t(X, Y) :- e(X, Y).
t(X, Y) :- e(X, Z), f(Z, W), t(W, Y).
""",
    """\
?s(0, Y)
t(X, Y) :- e(X, Y).
t(X, Y) :- t(X, Z), t(Z, Y).
s(X, Y) :- f(X, Z), t(Z, Y).
""",
    """\
?odd(2, Y)
odd(X, Y) :- e(X, Z), even(Z, Y).
even(X, Y) :- e(X, Z), odd(Z, Y).
even(X, Y) :- e(X, Y).
""",
]

PROGRAM_POOL = [parse_program(source) for source in SOURCE_POOL]
program_indexes = st.sampled_from(range(len(PROGRAM_POOL)))


class TripAfter(CancellationToken):
    """A token that trips after the Nth checkpoint read.

    Each checkpoint reads :attr:`cancelled` exactly once, so ``TripAfter(n)``
    aborts the run precisely at checkpoint ``n + 1`` — letting the property
    walk the abort through every checkpoint the evaluation has.
    """

    def __init__(self, reads_before_trip: int):
        super().__init__()
        self._remaining = reads_before_trip

    @property
    def cancelled(self) -> bool:
        if self._remaining <= 0:
            return True
        self._remaining -= 1
        return False


def snapshot_views(service: DatalogService):
    """(name, binding) -> answer count for every live materialized view."""
    return {
        key: len(service.execute(key[0], dict(key[1])))
        for key in service.materialized_bindings()
    }


@settings(max_examples=60, deadline=None)
@given(
    database=edge_databases(),
    program_index=program_indexes,
    engine=st.sampled_from(GUARD_ENGINES),
    layout=st.sampled_from(["tuple", "columnar"]),
    trip_at=st.integers(min_value=0, max_value=30),
)
def test_abort_at_any_checkpoint_leaves_database_untouched(
    database, program_index, engine, layout, trip_at
):
    database = database.with_layout(layout)
    version = database.version
    program = PROGRAM_POOL[program_index]
    session = QuerySession(program, database)
    token = TripAfter(trip_at)
    try:
        session.evaluate(engine=engine, cancellation=token, max_iterations=200)
    except QueryCancelled:
        pass
    # Whether the run aborted (few checkpoints survived) or completed (the
    # trip point was past the last checkpoint), the input database is
    # byte-for-byte the caller's: same version, no mutation.
    assert database.version == version


@settings(max_examples=25, deadline=None)
@given(
    database=edge_databases(),
    source_index=st.integers(min_value=0, max_value=len(SOURCE_POOL) - 1),
    engine=st.sampled_from(GUARD_ENGINES),
    trip_at=st.integers(min_value=0, max_value=12),
)
def test_abort_leaves_service_views_and_wal_identical(
    database, source_index, engine, trip_at
):
    with tempfile.TemporaryDirectory() as data_dir:
        durable = DurableDatalogService(
            data_dir, fsync="never", snapshot_on_close=False
        )
        # The engine is fixed at registration: rewrite-per-call engines
        # (magic) must be compiled into the prepared pipeline, not passed
        # as a per-request override.
        durable.register_program("q", SOURCE_POOL[source_index], engine=engine)
        durable.add_facts(
            [
                (predicate, values)
                for predicate, rows in database.relations().items()
                for values in rows
            ]
        )
        # A live materialized view (own registration, default engine) that
        # the aborted query must leave untouched.
        durable.register_program("view", SOURCE_POOL[0])
        durable.materialize("view", {})
        durable.sync()
        wal_path = os.path.join(data_dir, WAL_NAME)
        with open(wal_path, "rb") as handle:
            wal_before = handle.read()
        version = durable.service.database.version
        views_before = snapshot_views(durable.service)

        token = TripAfter(trip_at)
        try:
            durable.execute("q", {}, fresh=True, cancellation=token)
        except QueryAborted:
            pass

        assert durable.service.database.version == version
        assert snapshot_views(durable.service) == views_before
        durable.sync()
        with open(wal_path, "rb") as handle:
            assert handle.read() == wal_before
        durable.close()
