"""DatalogService: registry, LRU result cache, cursors, and thread safety."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.workloads import parent_forest
from repro.datalog import (
    DatalogService,
    Database,
    QueryNotRegisteredError,
    QuerySession,
    parse_program,
)
from repro.datalog.transforms import MagicSets
from repro.errors import EvaluationError

TEMPLATE_TEXT = """
?anc($who, Y)
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), par(Z, Y).
"""


def make_service(cache_size=256, transforms=(MagicSets(),), database=None):
    service = DatalogService(
        database if database is not None else parent_forest(150, seed=4, root_count=5),
        cache_size=cache_size,
    )
    service.register_program("anc", TEMPLATE_TEXT, transforms=transforms)
    return service


def expected_answers(database, constant):
    program = parse_program(TEMPLATE_TEXT.replace("$who", str(constant)))
    return QuerySession(program, database).answers()


# ----------------------------------------------------------------------
# Registry behaviour
# ----------------------------------------------------------------------
class TestRegistry:
    def test_register_and_execute(self):
        service = make_service()
        assert service.registered_queries() == ("anc",)
        answers = service.execute("anc", who="john")
        assert answers == expected_answers(service.database, "john")

    def test_unknown_query_name(self):
        service = make_service()
        with pytest.raises(QueryNotRegisteredError, match="nope"):
            service.execute("nope", who="john")

    def test_duplicate_registration_requires_replace(self):
        service = make_service()
        with pytest.raises(ValueError, match="replace=True"):
            service.register_program("anc", TEMPLATE_TEXT)
        service.register_program("anc", TEMPLATE_TEXT, replace=True)

    def test_register_requires_a_goal(self):
        service = make_service()
        with pytest.raises(EvaluationError, match="goal"):
            service.register_program("broken", "anc(X, Y) :- par(X, Y).")

    def test_prepare_is_lazy_and_cached(self):
        service = make_service()
        assert service.statistics()["prepared_queries"] == 0
        prepared = service.prepare("anc")
        assert service.prepare("anc") is prepared
        assert service.statistics()["prepared_queries"] == 1


# ----------------------------------------------------------------------
# Result cache semantics
# ----------------------------------------------------------------------
class TestResultCache:
    def test_repeat_requests_hit_the_cache(self):
        service = make_service()
        first = service.execute("anc", who="john")
        second = service.execute("anc", who="john")
        assert first is second  # the identical frozenset object, not a re-run
        stats = service.statistics()
        assert stats["cache_hits"] == 1
        assert stats["cache_misses"] == 1
        assert stats["executions"] == 1

    def test_fresh_bypasses_the_cache(self):
        service = make_service()
        service.execute("anc", who="john")
        service.execute("anc", who="john", fresh=True)
        assert service.statistics()["executions"] == 2

    def test_database_writes_invalidate_cached_answers(self):
        service = make_service(transforms=())
        before = service.execute("anc", who="john")
        added = service.add_facts([("par", ("john", "zz_new"))])
        assert added == 1
        after = service.execute("anc", who="john")
        assert after == before | {("zz_new",)}

    def test_cache_is_bounded_lru(self):
        service = make_service(cache_size=2)
        service.execute("anc", who="john")
        service.execute("anc", who="p1")
        service.execute("anc", who="john")  # refresh john's recency
        service.execute("anc", who="p2")   # evicts p1
        service.execute("anc", who="john")
        stats = service.statistics()
        assert stats["cache_entries"] == 2
        assert stats["cache_hits"] == 2  # both john re-requests
        service.execute("anc", who="p1")  # p1 was evicted: a miss
        assert service.statistics()["cache_misses"] == 4

    def test_zero_cache_size_disables_caching(self):
        service = make_service(cache_size=0)
        service.execute("anc", who="john")
        service.execute("anc", who="john")
        stats = service.statistics()
        assert stats["executions"] == 2
        assert stats["cache_entries"] == 0

    def test_execute_many_populates_the_cache(self):
        service = make_service()
        pool = ["john", "p1", "p2"]
        batch = service.execute_many("anc", [{"who": who} for who in pool])
        assert batch == [expected_answers(service.database, who) for who in pool]
        service.execute("anc", who="p1")
        assert service.statistics()["cache_hits"] == 1

    def test_cursor_streams_cached_answers(self):
        service = make_service()
        rows = list(service.cursor("anc", who="john", batch_size=4))
        assert frozenset(rows) == service.execute("anc", who="john")


# ----------------------------------------------------------------------
# Concurrency: the satellite smoke test
# ----------------------------------------------------------------------
class TestConcurrency:
    THREADS = 8
    REQUESTS = 400

    def test_eight_threads_hammering_one_service_agree(self):
        """Satellite requirement: identical answers across all threads."""
        database = parent_forest(300, seed=11, root_count=6)
        service = make_service(database=database)
        pool = ["john", "p1", "p2", "p3", "p4", "p5"]
        expected = {who: expected_answers(database, who) for who in pool}
        mismatches = []
        barrier = threading.Barrier(self.THREADS)

        def worker(thread_index):
            barrier.wait()  # maximise interleaving on the cold caches
            for request in range(self.REQUESTS // self.THREADS):
                who = pool[(thread_index + request) % len(pool)]
                answers = service.execute("anc", who=who)
                if answers != expected[who]:
                    mismatches.append((thread_index, who))

        with ThreadPoolExecutor(max_workers=self.THREADS) as executor:
            list(executor.map(worker, range(self.THREADS)))
        assert not mismatches
        stats = service.statistics()
        assert stats["cache_hits"] + stats["cache_misses"] == self.REQUESTS

    def test_concurrent_uncached_executions_agree(self):
        """fresh=True forces every request through the engine concurrently."""
        database = parent_forest(150, seed=13, root_count=5)
        service = make_service(database=database)
        pool = ["john", "p1", "p2", "p3"]
        expected = {who: expected_answers(database, who) for who in pool}

        def worker(index):
            who = pool[index % len(pool)]
            return who, service.execute("anc", who=who, fresh=True)

        with ThreadPoolExecutor(max_workers=self.THREADS) as executor:
            results = list(executor.map(worker, range(80)))
        assert all(answers == expected[who] for who, answers in results)
        assert service.statistics()["executions"] == 80

    def test_concurrent_prepare_returns_one_object(self):
        service = make_service()
        seen = set()

        def worker(_):
            seen.add(id(service.prepare("anc")))

        with ThreadPoolExecutor(max_workers=self.THREADS) as executor:
            list(executor.map(worker, range(64)))
        assert len(seen) == 1


class TestWriteSnapshotSwap:
    def test_add_facts_swaps_the_snapshot_instead_of_mutating(self):
        service = make_service(transforms=())
        old_database = service.database
        old_version = old_database.version
        service.execute("anc", who="john")
        service.add_facts([("par", ("john", "zz_new"))])
        # in-flight readers of the old snapshot are never disturbed
        assert old_database.version == old_version
        assert not old_database.contains("par", ("john", "zz_new"))
        assert service.database is not old_database
        assert service.database.contains("par", ("john", "zz_new"))
        assert service.statistics()["write_epoch"] == 1

    def test_noop_write_keeps_the_snapshot(self):
        service = make_service(transforms=())
        service.execute("anc", who="john")
        snapshot = service.database
        assert service.add_facts([]) == 0
        assert service.database is snapshot
        assert service.statistics()["write_epoch"] == 0

    def test_prepared_queries_recompile_against_the_new_snapshot(self):
        service = make_service(transforms=(MagicSets(),))
        before = service.prepare("anc")
        service.add_facts([("par", ("john", "zz_new"))])
        after = service.prepare("anc")
        assert after is not before
        assert after.database is service.database


class TestExecutionCounting:
    def test_shared_batch_counts_as_one_engine_run(self):
        service = make_service(transforms=(MagicSets(),))
        prepared = service.prepare("anc")
        assert prepared.uses_shared_fixpoint(3)
        service.execute_many("anc", [{"who": w} for w in ("john", "p1", "p2")])
        assert service.statistics()["executions"] == 1

    def test_per_binding_batch_counts_each_run(self):
        from repro.datalog.transforms import PropagateConstants

        service = DatalogService(parent_forest(60, seed=3, root_count=3))
        service.register_program(
            "anc", TEMPLATE_TEXT, transforms=(PropagateConstants(),)
        )
        assert not service.prepare("anc").supports_shared_execution
        service.execute_many("anc", [{"who": w} for w in ("john", "p1", "p2")])
        assert service.statistics()["executions"] == 3

    def test_constant_wrapped_params_share_a_cache_entry(self):
        from repro.datalog import Constant

        service = make_service()
        service.execute("anc", who="john")
        service.execute("anc", who=Constant("john"))
        stats = service.statistics()
        assert stats["cache_hits"] == 1
        assert stats["executions"] == 1
