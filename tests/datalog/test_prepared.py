"""Prepared parameterized queries: Parameter terms, deferred seeds, execution."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.workloads import parent_forest
from repro.datalog import (
    Atom,
    Constant,
    Database,
    Parameter,
    QuerySession,
    Variable,
    format_program,
    parse_atom,
    parse_program,
)
from repro.datalog.prepared import AnswerCursor, PreparedQuery, resolve_prepared_engine
from repro.datalog.terms import make_term
from repro.datalog.transforms import (
    MagicSets,
    PropagateConstants,
    adorn_program,
    magic_transform,
    parameter_relation,
    parameter_seed_rules,
    parameterize_rules,
)
from repro.errors import EvaluationError, ValidationError

TEMPLATE_TEXT = """
?anc($who, Y)
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), par(Z, Y).
"""

CONSTANT_TEXT = """
?anc(john, Y)
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), par(Z, Y).
"""

DATABASE = parent_forest(120, seed=9, root_count=4)


# ----------------------------------------------------------------------
# Parameter terms: parsing, printing, coercion
# ----------------------------------------------------------------------
class TestParameterTerms:
    def test_parser_reads_dollar_identifiers_as_parameters(self):
        atom = parse_atom("anc($who, Y)")
        assert atom.terms == (Parameter("who"), Variable("Y"))

    def test_pretty_printer_round_trips_parameters(self):
        program = parse_program(TEMPLATE_TEXT)
        assert "?anc($who, Y)" in format_program(program)
        assert parse_program(format_program(program)) == program

    def test_make_term_coerces_dollar_strings(self):
        assert make_term("$who") == Parameter("who")
        assert make_term("who") == Constant("who")
        assert make_term("Who") == Variable("Who")
        # a bare "$" is not a parameter name
        assert make_term("$") == Constant("$")

    def test_atom_parameter_accessors_and_binding(self):
        atom = Atom("anc", ("$who", "Y"))
        assert atom.parameters() == (Parameter("who"),)
        bound = atom.bind_parameters({"who": "john"})
        assert bound == parse_atom("anc(john, Y)")
        # unbound parameters are left intact for partial binding
        two = Atom("sg", ("$left", "$right"))
        assert two.bind_parameters({"left": 1}).parameters() == (Parameter("right"),)

    def test_program_parameters_goal_first(self):
        program = parse_program(TEMPLATE_TEXT)
        assert program.parameters() == (Parameter("who"),)

    def test_validate_rejects_parameters_inside_rules(self):
        program = parse_program(
            """
            ?anc(Y)
            anc(Y) :- par($who, Y).
            """
        )
        with pytest.raises(ValidationError, match="prepare"):
            program.validate()

    def test_unbound_goal_parameter_fails_answer_selection(self):
        session = QuerySession(parse_program(TEMPLATE_TEXT), DATABASE)
        with pytest.raises(EvaluationError, match=r"\$who"):
            session.answers()


# ----------------------------------------------------------------------
# Binding-pattern-driven transforms
# ----------------------------------------------------------------------
class TestParameterizedTransforms:
    def test_parameter_counts_as_bound_for_adornment(self):
        template = adorn_program(parse_program(TEMPLATE_TEXT))
        concrete = adorn_program(parse_program(CONSTANT_TEXT))
        assert template.goal_adornment == concrete.goal_adornment == "bf"
        # the adorned rule sets are identical: the rewrite depends only on
        # the binding pattern, never on the constant
        assert template.program.rules == concrete.program.rules

    def test_magic_transform_carries_parameters_into_the_seed(self):
        transformed = magic_transform(parse_program(TEMPLATE_TEXT))
        seed = transformed.rules[0]
        assert seed.head.predicate == "magic_anc__bf"
        assert seed.head.terms == (Parameter("who"),)

    def test_parameterize_rules_compiles_seeds_to_param_relations(self):
        transformed = magic_transform(parse_program(TEMPLATE_TEXT))
        runtime = parameterize_rules(transformed)
        runtime.validate()  # parameter-free rules
        seed = runtime.rules[0]
        assert seed.body[0].predicate == parameter_relation("who")
        assert seed.head.terms == seed.body[0].terms  # same fresh variable
        # untouched rules are the very same objects (plans stay valid)
        for before, after in zip(transformed.rules[1:], runtime.rules[1:]):
            assert before is after

    def test_parameter_seed_rules_are_ground_facts(self):
        (rule,) = parameter_seed_rules({"who": "john"})
        assert rule.is_fact() and rule.head.is_ground()
        assert rule.head.predicate == parameter_relation("who")
        assert rule.head.as_fact_tuple() == ("john",)

    def test_propagate_constants_accepts_parameters(self):
        specialized = PropagateConstants().apply(parse_program(TEMPLATE_TEXT))
        assert specialized.goal == parse_atom("anc_who(Y)")
        runtime = parameterize_rules(specialized)
        runtime.validate()


# ----------------------------------------------------------------------
# PreparedQuery semantics
# ----------------------------------------------------------------------
class TestPreparedQuery:
    @pytest.fixture
    def template(self):
        return parse_program(TEMPLATE_TEXT)

    def adhoc(self, constant, transform=None, engine="seminaive"):
        session = QuerySession(
            parse_program(CONSTANT_TEXT.replace("john", str(constant))), DATABASE
        )
        if transform is not None:
            session = session.with_transforms(transform)
        return session.answers(engine)

    def test_parity_with_adhoc_constant_goal_across_engines(self, template):
        for engine in ("seminaive", "naive", "topdown"):
            prepared = QuerySession(template, DATABASE).prepare(engine=engine)
            for constant in ("john", "p1", "p17"):
                assert prepared.answers(who=constant) == self.adhoc(
                    constant, engine=engine
                ), (engine, constant)

    def test_parity_with_adhoc_magic_pipeline(self, template):
        prepared = (
            QuerySession(template, DATABASE).with_transforms(MagicSets()).prepare()
        )
        for constant in ("john", "p1", "p17", "nobody"):
            assert prepared.answers(who=constant) == self.adhoc(constant, MagicSets())

    def test_prepare_folds_rewrite_engines(self, template):
        prepared = QuerySession(template, DATABASE).prepare(engine="magic")
        assert prepared.default_engine == "seminaive"
        assert [stage.name for stage in prepared.provenance.stages] == ["magic"]
        assert prepared.answers(who="john") == self.adhoc("john", MagicSets())

    def test_execute_rejects_rewrite_engines(self, template):
        prepared = QuerySession(template, DATABASE).prepare()
        with pytest.raises(EvaluationError, match="rewrites the program per call"):
            prepared.answers({"who": "john"}, engine="magic")

    def test_binding_validation(self, template):
        prepared = QuerySession(template, DATABASE).prepare()
        with pytest.raises(EvaluationError, match=r"missing \$who"):
            prepared.execute()
        with pytest.raises(EvaluationError, match=r"unknown \$whom"):
            prepared.execute(who="john", whom="mary")
        with pytest.raises(EvaluationError, match="hashable"):
            prepared.execute(who=["john"])

    def test_plan_compiled_once_and_reused(self, template):
        prepared = QuerySession(template, DATABASE).prepare()
        plan = prepared.plan()
        assert prepared.plan() is plan
        result = prepared.execute(who="john")
        assert result.statistics.plans_compiled == 0
        assert result.statistics.plan_cache_hits == 1

    def test_plan_refreshes_after_database_mutation(self, template):
        database = parent_forest(40, seed=2)
        prepared = QuerySession(template, database).prepare()
        plan = prepared.plan()
        before = prepared.answers(who="john")
        database.add_fact("par", ("john", "newchild"))
        assert prepared.plan() is not plan
        assert prepared.answers(who="john") == before | {("newchild",)}

    def test_execution_does_not_mutate_the_database(self, template):
        version = DATABASE.version
        facts = DATABASE.fact_count()
        prepared = (
            QuerySession(template, DATABASE).with_transforms(MagicSets()).prepare()
        )
        prepared.execute(who="john")
        assert DATABASE.version == version
        assert DATABASE.fact_count() == facts

    def test_binding_pattern_and_parameters(self, template):
        prepared = QuerySession(template, DATABASE).prepare()
        assert prepared.parameters == ("who",)
        assert prepared.binding_pattern == "bf"
        assert "$who" in prepared.describe()

    def test_prepared_queries_are_cached_per_engine_on_the_session(self, template):
        session = QuerySession(template, DATABASE)
        assert session.prepare() is session.prepare()
        assert session.prepare() is not session.prepare(engine="topdown")

    def test_prepare_works_for_constant_goals_too(self):
        prepared = QuerySession(parse_program(CONSTANT_TEXT), DATABASE).prepare()
        assert prepared.parameters == ()
        assert prepared.answers() == self.adhoc("john")


# ----------------------------------------------------------------------
# execute_many: shared fixpoints
# ----------------------------------------------------------------------
class TestExecuteMany:
    POOL = ("john", "p1", "p2", "p17", "john")

    def test_shared_execution_supported_for_magic_and_plain(self):
        template = parse_program(TEMPLATE_TEXT)
        assert QuerySession(template, DATABASE).prepare().supports_shared_execution
        magic = QuerySession(template, DATABASE).with_transforms(MagicSets()).prepare()
        assert magic.supports_shared_execution

    def test_shared_execution_rejected_when_parameter_is_projected_away(self):
        template = parse_program(TEMPLATE_TEXT)
        specialized = (
            QuerySession(template, DATABASE)
            .with_transforms(PropagateConstants())
            .prepare()
        )
        assert not specialized.supports_shared_execution
        # ... but per-binding execution still answers correctly
        session = QuerySession(parse_program(CONSTANT_TEXT), DATABASE)
        assert specialized.answers(who="john") == session.answers()

    @pytest.mark.parametrize("transform", [None, MagicSets()])
    def test_batch_answers_equal_solo_answers_in_order(self, transform):
        session = QuerySession(parse_program(TEMPLATE_TEXT), DATABASE)
        if transform is not None:
            session = session.with_transforms(transform)
        prepared = session.prepare()
        batch = prepared.execute_many([{"who": who} for who in self.POOL])
        assert batch == [prepared.answers(who=who) for who in self.POOL]

    def test_empty_batch(self):
        prepared = QuerySession(parse_program(TEMPLATE_TEXT), DATABASE).prepare()
        assert prepared.execute_many([]) == []


# ----------------------------------------------------------------------
# Answer cursors
# ----------------------------------------------------------------------
class TestAnswerCursor:
    ANSWERS = frozenset({("a",), ("b",), ("c",), ("d",), ("e",)})

    def test_streams_in_stable_sorted_order(self):
        first = AnswerCursor(self.ANSWERS).fetchall()
        second = AnswerCursor(self.ANSWERS).fetchall()
        assert first == second == sorted(self.ANSWERS, key=repr)

    def test_fetchone_fetchmany_fetchall(self):
        cursor = AnswerCursor(self.ANSWERS, batch_size=2)
        assert cursor.rowcount == 5
        assert cursor.fetchone() == ("a",)
        assert cursor.fetchmany() == [("b",), ("c",)]
        assert cursor.fetchall() == [("d",), ("e",)]
        assert cursor.fetchone() is None
        assert cursor.fetchmany() == []

    def test_iteration_protocol(self):
        assert list(AnswerCursor(self.ANSWERS)) == sorted(self.ANSWERS, key=repr)

    def test_close(self):
        cursor = AnswerCursor(self.ANSWERS)
        cursor.close()
        with pytest.raises(EvaluationError, match="closed"):
            cursor.fetchone()

    def test_bound_query_cursor(self):
        prepared = QuerySession(parse_program(TEMPLATE_TEXT), DATABASE).prepare()
        bound = prepared.bind(who="john")
        cursor = bound.cursor(batch_size=3)
        assert frozenset(cursor.fetchall()) == bound.answers()


# ----------------------------------------------------------------------
# Engine resolution helper
# ----------------------------------------------------------------------
class TestResolvePreparedEngine:
    def test_base_engines_resolve_to_themselves(self):
        assert resolve_prepared_engine("seminaive") == ("seminaive", ())
        assert resolve_prepared_engine("topdown") == ("topdown", ())

    def test_rewrite_engines_fold_into_pipeline_stages(self):
        resolved, stages = resolve_prepared_engine("magic")
        assert resolved == "seminaive"
        assert [stage.name for stage in stages] == ["magic"]

    def test_prepared_query_requires_a_goal(self):
        program = parse_program("anc(X, Y) :- par(X, Y).")
        with pytest.raises(EvaluationError, match="goal"):
            PreparedQuery(program, DATABASE)


# ----------------------------------------------------------------------
# Hypothesis: prepared-then-bound equals an ad-hoc constant goal
# (random graphs from the shared strategy pool)
# ----------------------------------------------------------------------
from tests.datalog.strategies import edge_databases

PARAM_TC = parse_program(
    """
    ?t($src, Y)
    t(X, Y) :- e(X, Y).
    t(X, Y) :- t(X, Z), e(Z, Y).
    """
)


@settings(max_examples=40, deadline=None)
@given(edge_databases(), st.integers(min_value=0, max_value=4))
def test_prepared_binding_matches_adhoc_constant_goal(database, source):
    prepared = QuerySession(PARAM_TC, database).prepare()
    adhoc = PARAM_TC.with_goal(
        Atom("t", (Constant(source), Variable("Y")))
    )
    expected = QuerySession(adhoc, database).answers()
    assert prepared.answers(src=source) == expected
    magic = QuerySession(PARAM_TC, database).with_transforms(MagicSets()).prepare()
    assert magic.answers(src=source) == expected
    (batched,) = prepared.execute_many([{"src": source}])
    assert batched == expected


# ----------------------------------------------------------------------
# Regression tests for review findings
# ----------------------------------------------------------------------
class TestSharedExecutionSoundness:
    def test_parameterized_fact_rules_disable_sharing(self):
        """A seeded predicate tested against a constant downstream could leak
        one binding's derivations into another's answers; such templates must
        fall back to per-binding execution (and then agree with solo runs)."""
        template = parse_program(
            """
            ?p($who, Y)
            p(X, Y) :- q(X), r(Y).
            q($who).
            r(c) :- q(b).
            """
        )
        database = Database({"dummy": []})
        prepared = QuerySession(template, database).prepare()
        assert not prepared.supports_shared_execution
        batch = prepared.execute_many([{"who": "a"}, {"who": "b"}])
        assert batch == [prepared.answers(who="a"), prepared.answers(who="b")]
        assert batch[0] == frozenset()            # a alone never derives r(c)
        assert batch[1] == {("c",)}               # answers project the free Y only

    def test_unknown_pipeline_stages_disable_sharing(self):
        from repro.datalog.transforms import FunctionTransform

        identity = FunctionTransform("custom-stage", lambda program: program)
        prepared = (
            QuerySession(parse_program(TEMPLATE_TEXT), DATABASE)
            .with_transforms(identity)
            .prepare()
        )
        assert not prepared.supports_shared_execution
        batch = prepared.execute_many([{"who": "john"}, {"who": "p1"}])
        assert batch == [prepared.answers(who="john"), prepared.answers(who="p1")]


class TestConstantWrappedBindings:
    def test_constant_values_unwrap_to_domain_values(self):
        prepared = (
            QuerySession(parse_program(TEMPLATE_TEXT), DATABASE)
            .with_transforms(MagicSets())
            .prepare()
        )
        plain = prepared.answers(who="john")
        assert plain  # non-trivial
        assert prepared.answers(who=Constant("john")) == plain
        bound = prepared.bind(who=Constant("john"))
        assert bound.bindings == {"who": "john"}
