"""Incremental view maintenance: database removal, counting, DRed, integration."""

import pytest

from repro.core.workloads import parent_forest
from repro.datalog import (
    Database,
    DatalogService,
    MaterializedView,
    QuerySession,
    get_engine,
    parse_program,
)
from repro.datalog.database import OverlayDatabase
from repro.datalog.transforms import MagicSets
from repro.errors import EvaluationError

TC = parse_program(
    """
    ?tc(X, Y)
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- tc(X, Z), e(Z, Y).
    """
)

GRANDPARENT = parse_program(
    """
    ?gp(X, Y)
    gp(X, Y) :- par(X, Z), par(Z, Y).
    """
)


def chain_dict(length=10):
    return [(i, i + 1) for i in range(length)]


def from_scratch(program, view):
    return get_engine("seminaive").evaluate(program, view.base_facts())


# ----------------------------------------------------------------------
# Database removal (the write-side mirror of add_facts)
# ----------------------------------------------------------------------
class TestDatabaseRemoval:
    def test_remove_fact_and_retract(self):
        database = Database({"e": [(1, 2), (2, 3)]})
        assert database.remove_fact("e", (1, 2))
        assert not database.remove_fact("e", (1, 2))
        assert database.retract("e", (9, 9)) is False
        assert database.relation("e") == {(2, 3)}

    def test_remove_facts_bumps_version_once(self):
        database = Database({"e": [(1, 2), (2, 3), (3, 4)]})
        version = database.version
        removed = database.remove_facts([("e", (1, 2)), ("e", (3, 4)), ("e", (9, 9))])
        assert removed == 2
        assert database.version == version + 1
        # removing nothing does not bump
        assert database.remove_facts([("e", (9, 9))]) == 0
        assert database.version == version + 1

    def test_removal_maintains_snapshots_and_indexes(self):
        database = Database({"e": [(1, 2), (1, 3), (2, 3)]})
        # Warm the snapshot and a position index, then retract through them.
        assert database.relation("e") == {(1, 2), (1, 3), (2, 3)}
        assert set(database.probe("e", 0, 1)) == {(1, 2), (1, 3)}
        database.remove_facts([("e", (1, 2))])
        assert database.relation("e") == {(1, 3), (2, 3)}
        assert set(database.probe("e", 0, 1)) == {(1, 3)}
        assert database.cardinality("e") == 2
        # A fully retracted probe value falls back to the shared empty result.
        database.remove_facts([("e", (1, 3))])
        assert list(database.probe("e", 0, 1)) == []

    def test_emptied_relations_leave_no_phantoms(self):
        database = Database({"e": [(1, 2)]})
        database.remove_facts([("e", (1, 2))])
        assert database.predicates() == frozenset()
        assert database == Database()

    def test_atoms_accepted_like_add_facts(self):
        from repro.datalog.atoms import ground_atom

        database = Database({"e": [(1, 2)]})
        assert database.remove_facts([ground_atom("e", (1, 2))]) == 1

    def test_overlay_retraction_cannot_touch_the_base(self):
        base = Database({"e": [(1, 2)]})
        overlay = OverlayDatabase(base)
        overlay.add_fact("e", (2, 3))
        with pytest.raises(TypeError, match="cannot retract"):
            overlay.remove_facts([("e", (1, 2))])
        with pytest.raises(TypeError, match="cannot retract"):
            overlay.remove_fact("e", (1, 2))
        assert base.relation("e") == {(1, 2)}
        assert overlay.contains("e", (1, 2))
        # Local-only facts retract fine and leave the base untouched.
        assert overlay.remove_fact("e", (2, 3))
        assert base.relation("e") == {(1, 2)}


# ----------------------------------------------------------------------
# MaterializedView: build, counting, DRed
# ----------------------------------------------------------------------
class TestMaterializedView:
    def test_initial_build_matches_engine(self):
        database = Database({"e": chain_dict()})
        view = MaterializedView(TC, database)
        reference = get_engine("seminaive").evaluate(TC, database)
        assert view.idb_facts() == reference.idb_facts
        assert view.answers() == reference.answers()
        # The input database is not mutated (the view owns its own model).
        assert database.fact_count() == 10

    def test_strata_classified_counting_vs_dred(self):
        program = parse_program(
            """
            ?s(X, Y)
            t(X, Y) :- e(X, Y).
            t(X, Y) :- t(X, Z), e(Z, Y).
            s(X, Y) :- f(X, Z), t(Z, Y).
            """
        )
        view = MaterializedView(program, Database({"e": [(1, 2)], "f": [(0, 1)]}))
        assert view.counting_predicates == frozenset({"s"})
        text = view.describe()
        assert "counting" in text and "DRed" in text

    def test_insertion_propagates_through_recursion(self):
        database = Database({"e": chain_dict()})
        view = MaterializedView(TC, database)
        report = view.apply(insertions=[("e", (10, 11))])
        assert report.base_inserted == 1
        assert report.derived_added == 11  # tc(i, 11) for i in 0..10
        assert view.idb_facts() == from_scratch(TC, view).idb_facts

    def test_duplicate_insert_is_a_noop(self):
        view = MaterializedView(TC, Database({"e": chain_dict()}))
        version = view.model.version
        report = view.apply(insertions=[("e", (0, 1))])
        assert report.base_inserted == 0 and report.derived_added == 0
        assert view.model.version == version

    def test_deleting_underived_fact_is_a_noop(self):
        view = MaterializedView(TC, Database({"e": chain_dict()}))
        report = view.apply(deletions=[("e", (99, 100)), ("tc", (0, 5))])
        assert report.base_deleted == 0
        assert view.idb_facts() == from_scratch(TC, view).idb_facts

    def test_counting_supports_are_exact(self):
        database = Database(
            {"par": [("a", "b"), ("b", "c"), ("b", "d"), ("x", "b")]}
        )
        view = MaterializedView(GRANDPARENT, database)
        assert view.counting_predicates == frozenset({"gp"})
        assert view.support("gp", ("a", "c")) == 1
        view.apply(insertions=[("par", ("a", "b2")), ("par", ("b2", "c"))])
        assert view.support("gp", ("a", "c")) == 2
        # Losing one of two derivations keeps the fact.
        view.apply(deletions=[("par", ("b", "c"))])
        assert view.support("gp", ("a", "c")) == 1
        assert ("a", "c") in view.relation("gp")
        # Losing the last derivation removes it.
        view.apply(deletions=[("par", ("b2", "c"))])
        assert view.support("gp", ("a", "c")) == 0
        assert ("a", "c") not in view.relation("gp")
        assert view.idb_facts() == from_scratch(GRANDPARENT, view).idb_facts

    def test_program_fact_rules_count_as_one_support(self):
        # A fact-rule tuple of a counting predicate has exactly one support
        # (the fact rule, tracked inside the derivation counts) — support()
        # must not add a second one on top.
        program = parse_program(
            """
            ?t(X, Y)
            t(1, 2).
            t(X, Y) :- e(X, Y).
            """
        )
        view = MaterializedView(program, Database({"e": [(3, 4)]}))
        assert view.support("t", (1, 2)) == 1
        assert view.support_counts("t") == {(1, 2): 1, (3, 4): 1}
        # Base-asserting the same tuple adds exactly one more support.
        view.apply(insertions=[("t", (1, 2))])
        assert view.support("t", (1, 2)) == 2

    def test_support_counts_rejects_recursive_predicates(self):
        view = MaterializedView(TC, Database({"e": [(1, 2)]}))
        with pytest.raises(EvaluationError, match="Delete-and-Rederive"):
            view.support_counts("tc")

    def test_base_assertion_of_derived_fact_survives_derivation_loss(self):
        # gp(a, c) is both derived and explicitly asserted; retracting the
        # deriving par facts must keep it (base support), and retracting the
        # assertion afterwards must finally remove it.
        database = Database(
            {"par": [("a", "b"), ("b", "c")], "gp": [("a", "c")]}
        )
        view = MaterializedView(GRANDPARENT, database)
        assert view.support("gp", ("a", "c")) == 2  # derivation + assertion
        view.apply(deletions=[("par", ("a", "b"))])
        assert ("a", "c") in view.relation("gp")
        view.apply(deletions=[("gp", ("a", "c"))])
        assert ("a", "c") not in view.relation("gp")

    def test_mixed_batch_deletes_before_inserts(self):
        view = MaterializedView(TC, Database({"e": chain_dict()}))
        # Replace edge 5->6 with a detour through a fresh node in one batch.
        view.apply(
            insertions=[("e", (5, 50)), ("e", (50, 6))],
            deletions=[("e", (5, 6))],
        )
        assert view.idb_facts() == from_scratch(TC, view).idb_facts
        assert (0, 10) in view.relation("tc")

    def test_interpreted_view_matches_compiled(self):
        database = Database({"e": chain_dict(), "f": [(0, 3)]})
        program = parse_program(
            """
            ?s(X, Y)
            t(X, Y) :- e(X, Y).
            t(X, Y) :- t(X, Z), e(Z, Y).
            s(X, Y) :- f(X, Z), t(Z, Y).
            """
        )
        compiled = MaterializedView(program, database)
        interpreted = MaterializedView(program, database, compiled=False)
        for ins, dels in [
            ([("e", (10, 11))], []),
            ([], [("e", (3, 4))]),
            ([("f", (1, 5))], [("e", (0, 1))]),
        ]:
            compiled.apply(insertions=ins, deletions=dels)
            interpreted.apply(insertions=ins, deletions=dels)
            assert compiled.idb_facts() == interpreted.idb_facts()

    def test_view_accepts_overlay_databases(self):
        base = Database({"e": chain_dict()})
        overlay = base.overlay()
        overlay.add_fact("e", (10, 11))
        view = MaterializedView(TC, overlay)
        view.apply(deletions=[("e", (10, 11))])
        assert base.contains("e", (0, 1))
        assert view.idb_facts() == from_scratch(TC, view).idb_facts


# ----------------------------------------------------------------------
# Deletion edge cases (regression tests)
# ----------------------------------------------------------------------
class TestDeletionEdgeCases:
    def test_dred_keeps_fact_rederivable_through_a_cycle(self):
        # The shortcut e(a, c) and the cycle path a->b->c both prove
        # tc(a, c); retracting the shortcut must keep every tc fact, because
        # rederivation finds the alternative proof around the cycle.
        database = Database(
            {"e": [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a"), ("a", "c")]}
        )
        view = MaterializedView(TC, database)
        before = view.relation("tc")
        report = view.apply(deletions=[("e", ("a", "c"))])
        assert report.overdeleted > 0
        assert report.rederived == report.overdeleted  # everything came back
        assert view.relation("tc") == before
        assert view.idb_facts() == from_scratch(TC, view).idb_facts

    def test_dred_cycle_break_removes_exactly_the_unreachable(self):
        database = Database({"e": [("a", "b"), ("b", "c"), ("c", "a")]})
        view = MaterializedView(TC, database)
        assert ("a", "a") in view.relation("tc")
        view.apply(deletions=[("e", ("c", "a"))])
        reference = from_scratch(TC, view)
        assert view.idb_facts() == reference.idb_facts
        assert ("a", "a") not in view.relation("tc")
        assert ("a", "c") in view.relation("tc")

    def test_fact_rule_only_predicate_base_deletion(self):
        # p has no proper rules, so no stratum owns it — its base facts must
        # still be retractable (while the program's own fact rule is pinned).
        program = parse_program(
            """
            ?q(X)
            p(a).
            q(X) :- p(X).
            """
        )
        view = MaterializedView(program, Database({"p": [("b",)]}))
        assert view.answers() == {("a",), ("b",)}
        report = view.apply(deletions=[("p", ("b",)), ("p", ("a",))])
        assert report.base_deleted == 1  # p(a) is program-pinned, not base
        assert view.answers() == {("a",)}
        assert view.idb_facts() == from_scratch(program, view).idb_facts

    def test_param_seed_relations_are_not_retractable(self):
        template = parse_program(
            """
            ?anc($who, Y)
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- anc(X, Z), par(Z, Y).
            """
        )
        database = parent_forest(60, seed=3, root_count=2)
        prepared = (
            QuerySession(template, database).with_transforms(MagicSets()).prepare()
        )
        view = prepared.materialize(who="john")
        answers = view.answers()
        assert answers == prepared.answers(who="john")
        # The binding's seed fact is program-level support, not a base fact:
        # retracting it is a no-op and the answers survive.
        report = view.apply(deletions=[("__param_who", ("john",))])
        assert report.base_deleted == 0
        assert view.answers() == answers
        # Retracting a real EDB fact feeding the seeded magic chain works.
        child = sorted(answers)[0][0]
        view.apply(deletions=[("par", ("john", child))])
        reference = get_engine("seminaive").evaluate(
            view.program, view.base_facts()
        )
        assert view.answers() == reference.answers()

    def test_overlay_retraction_goes_through_the_view_not_the_base(self):
        # A view built over an overlay materializes its own model, so
        # retracting through the view never touches the overlay's base.
        base = Database({"e": [("a", "b"), ("b", "c")]})
        overlay = base.overlay()
        view = MaterializedView(TC, overlay)
        view.apply(deletions=[("e", ("a", "b"))])
        assert base.relation("e") == {("a", "b"), ("b", "c")}
        assert ("a", "b") not in view.relation("tc")


# ----------------------------------------------------------------------
# Session / service integration
# ----------------------------------------------------------------------
class TestSessionMaterialize:
    def test_session_materialize_tracks_transforms(self):
        database = parent_forest(60, seed=7, root_count=2)
        program = parse_program(
            """
            ?anc(john, Y)
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- anc(X, Z), par(Z, Y).
            """
        )
        session = QuerySession(program, database).with_transforms(MagicSets())
        view = session.materialize()
        assert view.answers() == session.answers()
        view.apply(insertions=[("par", ("john", "fresh"))])
        assert ("fresh",) in view.answers()

    def test_parameterized_templates_must_be_prepared_first(self):
        template = parse_program(
            """
            ?anc($who, Y)
            anc(X, Y) :- par(X, Y).
            """
        )
        session = QuerySession(template, parent_forest(20, seed=1))
        with pytest.raises(Exception, match="prepare"):
            session.materialize()


class TestServiceMaterializedViews:
    TEMPLATE = """
    ?anc($who, Y)
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- anc(X, Z), par(Z, Y).
    """

    def build(self):
        service = DatalogService(parent_forest(80, seed=5, root_count=3))
        service.register_program("anc", self.TEMPLATE, transforms=(MagicSets(),))
        return service

    def test_materialized_bindings_served_from_the_view(self):
        service = self.build()
        baseline = service.execute("anc", who="john")
        service.materialize("anc", who="john")
        assert service.execute("anc", who="john") == baseline
        statistics = service.statistics()
        assert statistics["materialized_views"] == 1
        assert statistics["view_hits"] == 1

    def test_writes_maintain_views_instead_of_invalidating(self):
        service = self.build()
        view = service.materialize("anc", who="john")
        executions_before = service.statistics()["executions"]
        service.add_facts([("par", ("john", "zz1")), ("par", ("zz1", "zz2"))])
        answers = service.execute("anc", who="john")
        assert ("zz1",) in answers and ("zz2",) in answers
        service.remove_facts([("par", ("zz1", "zz2"))])
        answers = service.execute("anc", who="john")
        assert ("zz1",) in answers and ("zz2",) not in answers
        # No engine executions were spent on the materialized binding.
        assert service.statistics()["executions"] == executions_before
        assert view.maintenance.applies == 2

    def test_fresh_and_engine_override_bypass_the_view(self):
        # fresh=True promises "the engine really runs" and an explicit
        # engine choice must be honoured — neither may be silently served
        # from a live view.
        service = self.build()
        baseline = service.execute("anc", who="john", fresh=True)
        service.materialize("anc", who="john")
        executions = service.statistics()["executions"]
        assert service.execute("anc", who="john", fresh=True) == baseline
        assert service.execute("anc", who="john", engine="seminaive") == baseline
        assert service.statistics()["executions"] == executions + 2
        assert service.statistics()["view_hits"] == 0

    def test_unmaterialized_bindings_still_invalidate_by_epoch(self):
        service = self.build()
        service.materialize("anc", who="john")
        before = service.execute("anc", who="p1")
        epoch = service.statistics()["write_epoch"]
        service.add_facts([("par", ("p1", "zz9"))])
        assert service.statistics()["write_epoch"] == epoch + 1
        assert service.execute("anc", who="p1") == before | {("zz9",)}

    def test_remove_facts_swaps_snapshots(self):
        service = self.build()
        database_before = service.database
        removed = service.remove_facts([("par", ("nobody", "never"))])
        assert removed == 0
        assert service.database is database_before  # no-op writes do not swap
        child = next(
            values[1]
            for values in sorted(service.database.relation("par"), key=repr)
            if values[0] == "john"
        )
        assert service.remove_facts([("par", ("john", child))]) == 1
        assert service.database is not database_before
        assert database_before.contains("par", ("john", child))

    def test_materialize_same_binding_returns_same_view(self):
        service = self.build()
        assert service.materialize("anc", who="john") is service.materialize(
            "anc", who="john"
        )
        assert service.dematerialize("anc", who="john")
        assert not service.dematerialize("anc", who="john")

    def test_reregistration_drops_views(self):
        service = self.build()
        service.materialize("anc", who="john")
        service.register_program("anc", self.TEMPLATE, replace=True)
        assert service.statistics()["materialized_views"] == 0


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestIncrementalCli:
    def test_evaluate_incremental_flag(self, tmp_path, capsys):
        from repro.cli import main

        program = tmp_path / "q.dl"
        program.write_text(
            "?tc(X, Y)\n"
            "tc(X, Y) :- e(X, Y).\n"
            "tc(X, Y) :- tc(X, Z), e(Z, Y).\n"
        )
        facts = tmp_path / "facts.dl"
        facts.write_text("e(a, b).\ne(b, c).\n")
        assert main(["evaluate", str(program), str(facts), "--incremental"]) == 0
        out = capsys.readouterr().out
        assert "materialized view" in out
        assert "DRed" in out

    def test_serve_bench_writes_and_materialize(self, tmp_path, capsys):
        from repro.cli import main

        program = tmp_path / "q.dl"
        program.write_text(
            "?anc($who, Y)\n"
            "anc(X, Y) :- par(X, Y).\n"
            "anc(X, Y) :- anc(X, Z), par(Z, Y).\n"
        )
        facts = tmp_path / "facts.dl"
        facts.write_text("\n".join(f"par(p{i}, p{i + 1})." for i in range(10)))
        code = main(
            [
                "serve-bench",
                str(program),
                str(facts),
                "--requests",
                "40",
                "--threads",
                "1",
                "--distinct",
                "4",
                "--writes",
                "4",
                "--materialize",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "view hits" in out
        assert "write lat." in out
        assert "bindings kept live" in out
