"""Unit tests for derivation trees and proof-depth analysis."""

from repro.datalog import Database
from repro.datalog.atoms import ground_atom
from repro.datalog.engine.derivation import DerivationAnalyzer


class TestProofHeights:
    def test_edb_fact_has_height_one(self, ancestor_a, family_database):
        analyzer = DerivationAnalyzer(ancestor_a.program, family_database)
        assert analyzer.proof_height(ground_atom("par", ("john", "mary"))) == 1

    def test_direct_child_has_height_two(self, ancestor_a, family_database):
        analyzer = DerivationAnalyzer(ancestor_a.program, family_database)
        assert analyzer.proof_height(ground_atom("anc", ("john", "mary"))) == 2

    def test_depth_grows_along_chain(self, ancestor_a, family_database):
        analyzer = DerivationAnalyzer(ancestor_a.program, family_database)
        near = analyzer.proof_height(ground_atom("anc", ("john", "mary")))
        far = analyzer.proof_height(ground_atom("anc", ("john", "tim")))
        assert far > near

    def test_underivable_fact(self, ancestor_a, family_database):
        analyzer = DerivationAnalyzer(ancestor_a.program, family_database)
        assert analyzer.proof_height(ground_atom("anc", ("tim", "john"))) is None

    def test_max_goal_proof_height(self, ancestor_a, family_database):
        analyzer = DerivationAnalyzer(ancestor_a.program, family_database)
        assert analyzer.max_goal_proof_height() == 4  # john -> mary -> sue -> tim


class TestTrees:
    def test_tree_structure(self, ancestor_a, family_database):
        analyzer = DerivationAnalyzer(ancestor_a.program, family_database)
        tree = analyzer.derivation_tree(ground_atom("anc", ("john", "sue")))
        assert tree is not None
        assert tree.fact == ground_atom("anc", ("john", "sue"))
        assert tree.rule is not None
        assert tree.height() == analyzer.proof_height(ground_atom("anc", ("john", "sue")))
        leaves = tree.leaves()
        assert ground_atom("par", ("john", "mary")) in leaves
        assert ground_atom("par", ("mary", "sue")) in leaves

    def test_leaf_tree(self, ancestor_a, family_database):
        analyzer = DerivationAnalyzer(ancestor_a.program, family_database)
        tree = analyzer.derivation_tree(ground_atom("par", ("john", "mary")))
        assert tree.rule is None
        assert tree.size() == 1

    def test_missing_fact_has_no_tree(self, ancestor_a, family_database):
        analyzer = DerivationAnalyzer(ancestor_a.program, family_database)
        assert analyzer.derivation_tree(ground_atom("anc", ("tim", "john"))) is None
