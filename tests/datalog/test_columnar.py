"""Unit tests for the columnar layout's building blocks.

Mirrors the :mod:`tests.datalog.test_database` coverage one level down:
:class:`InternTable` round-trips and ordering stability,
:class:`ColumnarRelation` append/index/key semantics, packed-key helpers,
the :class:`ColumnarStore` lifecycle behind ``layout="columnar"`` (lazy
encoding, mutation maintenance, invalidation on retraction, copy/overlay
sharing), and the lazily decoded result databases the vector lane returns.
"""

import pytest

from repro.datalog.columnar import (
    KEY_BITS,
    ColumnarRelation,
    InternTable,
    arity_of_key,
    pack_codes,
    unpack_key,
)
from repro.datalog.columnar.decode import LazyDecodedDatabase
from repro.datalog.database import Database


class TestInternTable:
    def test_round_trips_mixed_value_kinds(self):
        table = InternTable()
        constants = ["a", 7, -3, 2.5, None, b"bytes", ("pair", 1), True]
        codes = [table.intern(value) for value in constants]
        assert codes == list(range(len(constants)))
        for value, code in zip(constants, codes):
            assert table.value(code) == value
            assert table.lookup(value) == code
            assert value in table

    def test_interning_is_idempotent(self):
        table = InternTable()
        assert table.intern("x") == table.intern("x") == 0
        assert len(table) == 1

    def test_equal_values_share_a_code_like_set_membership(self):
        # The tuple layout stores facts in sets where 1 == True == 1.0;
        # the table must key codes the same way or columnar membership
        # would be stricter than tuple membership.
        table = InternTable()
        assert table.intern(1) == table.intern(True) == table.intern(1.0)
        assert table.value(0) == 1  # first-seen representative wins

    def test_lookup_of_unseen_value_is_none(self):
        assert InternTable().lookup("missing") is None

    def test_intern_many_preserves_order(self):
        table = InternTable()
        assert table.intern_many(["b", "a", "b"]) == [0, 1, 0]
        assert table.values() == ["b", "a"]

    def test_codes_stay_stable_across_database_copy(self):
        database = Database({"e": [("a", "b"), ("b", "c")]}).with_layout("columnar")
        table = database.columnar_store().table
        database.columnar_parts("e")  # encode: assigns codes
        before = {value: table.lookup(value) for value in ("a", "b", "c")}
        clone = database.copy()
        clone.add_fact("e", ("c", "d"))
        clone.columnar_parts("e")
        # The clone shares the table; old codes never move, new values append.
        assert clone.columnar_store().table is table
        after = {value: table.lookup(value) for value in ("a", "b", "c")}
        assert after == before
        assert table.lookup("d") == len(before)


class TestPackedKeys:
    def test_pack_unpack_round_trip(self):
        for codes in [(), (0,), (5,), (1, 2), (7, 0, 9), (1, 2, 3, 4)]:
            key = pack_codes(codes)
            assert arity_of_key(key) == len(codes)
            assert unpack_key(key, len(codes)) == tuple(codes)

    def test_arity_seed_prevents_cross_arity_collisions(self):
        # Without the seed, (5,) and (0, 5) would pack identically.
        assert pack_codes((5,)) != pack_codes((0, 5))
        assert pack_codes(()) != pack_codes((0,))

    def test_keys_occupy_disjoint_32_bit_lanes(self):
        key = pack_codes((3, 4))
        assert key == (2 << (2 * KEY_BITS)) | (3 << KEY_BITS) | 4


class TestColumnarRelation:
    def test_append_rows_dedups_and_counts_new(self):
        part = ColumnarRelation(2)
        assert part.append_rows([(1, 2), (3, 4), (1, 2)]) == 2
        assert len(part) == 2
        assert (1, 2) in part and (3, 4) in part and (2, 1) not in part
        assert part.row(0) == (1, 2) and part.row(1) == (3, 4)

    def test_index_built_lazily_and_maintained_on_append(self):
        part = ColumnarRelation(2)
        part.append_rows([(1, 2), (1, 3)])
        index = part.index(0)
        assert index == {1: [0, 1]}
        part.append_rows([(1, 4), (5, 6)])
        assert part.index(0) is index  # maintained in place, not rebuilt
        assert index == {1: [0, 1, 2], 5: [3]}
        assert part.index(1) == {2: [0], 3: [1], 4: [2], 6: [3]}

    def test_distinct_counts_track_mutation(self):
        part = ColumnarRelation(2)
        part.append_rows([(1, 2), (1, 3), (4, 3)])
        assert part.distinct(0) == 2
        assert part.distinct(1) == 2
        part.append_rows([(9, 9)])
        assert part.distinct(0) == 3

    def test_extend_columns_trusts_pre_deduped_input(self):
        part = ColumnarRelation(2)
        part.append_rows([(1, 2)])
        part.index(0)  # build, so the bulk append must maintain it
        keys = [pack_codes((3, 4)), pack_codes((5, 6))]
        part.extend_columns(([3, 5], [4, 6]), keys)
        assert len(part) == 3
        assert (3, 4) in part and (5, 6) in part
        assert part.index(0) == {1: [0], 3: [1], 5: [2]}

    def test_zero_arity_relation_holds_at_most_the_empty_row(self):
        part = ColumnarRelation(0)
        assert len(part) == 0
        assert part.append_rows([()]) == 1
        assert len(part) == 1
        assert part.append_rows([()]) == 0


class TestColumnarStoreLifecycle:
    def test_layout_round_trip_and_validation(self):
        database = Database({"e": [(1, 2)]})
        assert database.layout == "tuple"
        columnar = database.with_layout("columnar")
        assert columnar.layout == "columnar"
        assert columnar == database  # layout is invisible to equality
        assert columnar.with_layout("tuple").layout == "tuple"
        with pytest.raises(ValueError, match="unknown layout"):
            database.with_layout("rowgroup")

    def test_parts_encode_lazily_and_group_by_arity(self):
        database = Database({"m": [(1,), (1, 2), (3, 4)]}).with_layout("columnar")
        store = database.columnar_store()
        assert not store.encoded("m")
        parts = database.columnar_parts("m")
        assert store.encoded("m")
        assert sorted(part.arity for part in parts) == [1, 2]
        by_arity = {part.arity: part for part in parts}
        assert len(by_arity[1]) == 1 and len(by_arity[2]) == 2

    def test_encoded_predicate_is_maintained_on_add_fact(self):
        database = Database({"e": [("a", "b")]}).with_layout("columnar")
        (part,) = database.columnar_parts("e")
        database.add_fact("e", ("b", "c"))
        assert len(part) == 2  # same part object, appended in place
        table = database.columnar_store().table
        assert part.row(1) == (table.lookup("b"), table.lookup("c"))

    def test_unencoded_predicates_ignore_mutation_hooks(self):
        database = Database({"e": [("a", "b")]}).with_layout("columnar")
        database.add_fact("e", ("b", "c"))  # never encoded: hook is a no-op
        assert not database.columnar_store().encoded("e")
        (part,) = database.columnar_parts("e")
        assert len(part) == 2

    def test_retraction_invalidates_and_reencodes(self):
        database = Database({"e": [("a", "b"), ("b", "c")]}).with_layout("columnar")
        database.columnar_parts("e")
        store = database.columnar_store()
        database.remove_relation("e")
        assert not store.encoded("e")
        database.add_fact("e", ("x", "y"))
        (part,) = database.columnar_parts("e")
        assert len(part) == 1
        # Codes for retracted values survive: the table is append-only.
        assert store.table.lookup("a") is not None

    def test_column_distincts_report_the_dominant_arity_group(self):
        database = Database(
            {"m": [(1, 2), (1, 3), (9,)], "empty": []}
        ).with_layout("columnar")
        store = database.columnar_store()
        assert store.column_distincts("m") == {0: 1, 1: 2}
        assert store.column_distincts("empty") == {}


class TestColumnarOverlay:
    def test_overlay_inherits_layout_and_shares_the_intern_table(self):
        base = Database({"e": [("a", "b")]}).with_layout("columnar")
        overlay = base.overlay()
        assert overlay.layout == "columnar"
        assert overlay.columnar_store().table is base.columnar_store().table

    def test_overlay_parts_append_local_groups_after_base(self):
        base = Database({"e": [("a", "b")]}).with_layout("columnar")
        base.columnar_parts("e")
        overlay = base.overlay()
        assert overlay.columnar_parts("e") == base.columnar_parts("e")
        overlay.add_fact("e", ("b", "c"))
        parts = overlay.columnar_parts("e")
        assert len(parts) == 2
        assert parts[0] is base.columnar_parts("e")[0]
        table = base.columnar_store().table
        assert parts[1].row(0) == (table.lookup("b"), table.lookup("c"))
        # The base mirror never sees the overlay's local facts.
        assert len(base.columnar_parts("e")[0]) == 1

    def test_seed_codes_land_in_the_base_code_space(self):
        base = Database({"e": [("a", "b")]}).with_layout("columnar")
        base.columnar_parts("e")
        overlay = base.overlay()
        overlay.add_fact("seed", ("a",))
        (part,) = overlay.columnar_parts("seed")
        # "a" reuses the code the base assigned — no per-overlay domains.
        assert part.row(0) == (base.columnar_store().table.lookup("a"),)


class TestLazyDecodedDatabase:
    def test_thunk_runs_once_on_first_read(self):
        calls = []

        def decode():
            calls.append(1)
            return {"t": {("a", "b")}}

        database = LazyDecodedDatabase.defer(decode)
        assert not calls
        assert database.relation("t") == {("a", "b")}
        assert database.relation("t") == {("a", "b")}
        assert calls == [1]

    def test_behaves_as_a_database_after_decoding(self):
        database = LazyDecodedDatabase.defer(lambda: {"t": {(1, 2)}})
        assert database == Database({"t": [(1, 2)]})
        assert database.fact_count() == 1
        database.add_fact("t", (3, 4))
        assert database.relation("t") == {(1, 2), (3, 4)}
