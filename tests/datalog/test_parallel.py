"""The parallel evaluation layer and the planner-cache races it rode in with.

Three concerns share this module because they share one contract:

* **parity** — ``workers=N`` must produce the *identical* model and the
  *identical* :class:`EvaluationStatistics` as the serial run, for every
  engine, layout, and worker count (the Hypothesis differential property);
* **concurrency safety** — the planner cache and the prepared-query plan
  are shared across threads by the service; the hammer tests here fail on
  the pre-fix lock-free code (eviction scan racing a ``del`` raises
  ``RuntimeError: dictionary changed size``, lost counter updates break
  the one-count-per-call invariant);
* **teardown** — aborting a sharded evaluation (cancellation, budget)
  must unwind every forked worker: no orphan processes.
"""

import multiprocessing
import random
import sys
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.workloads import parent_forest
from repro.datalog import Database, DatalogService, QuerySession, parse_program
from repro.datalog.columnar import shard
from repro.datalog.engine import compile_program_plan, get_engine
from repro.datalog.engine.parallel import depth_groups, resolve_workers
from repro.datalog.engine.planner import Planner
from repro.datalog.guard import CancellationToken, ResourceBudget
from repro.datalog.prepared import PreparedQuery
from repro.errors import BudgetExceeded, EvaluationError, QueryCancelled
from tests.datalog.strategies import (
    PROGRAM_POOL,
    STRATIFIED_PROGRAM_POOL,
    WIDE_PROGRAM_POOL,
    edge_databases,
    wide_databases,
)

# Two independent closures (same depth, disjoint heads) feeding a join one
# depth deeper: the only shape that actually exercises the multi-stratum
# thread group — the shared pools are all chains of singleton groups.
SIBLING_PROGRAM = parse_program(
    """
    ?q(X, Y)
    t(X, Y) :- e(X, Y).
    t(X, Y) :- t(X, Z), e(Z, Y).
    s(X, Y) :- f(X, Y).
    s(X, Y) :- s(X, Z), f(Z, Y).
    q(X, Y) :- t(X, Z), s(Z, Y).
    """
)

# Vector-ineligible (the arity-3 head) so ``workers > 1`` on the columnar
# layout routes through the process-sharded driver rather than staying on
# the serial NumPy lane.
SHARDABLE_PROGRAM = parse_program(
    """
    ?t(X, Y)
    t(X, Y) :- e(X, Y).
    t(X, Y) :- t(X, Z), e(Z, Y).
    w(X, X, X) :- e(X, Y).
    """
)


def random_graph(nodes: int, edges: int, seed: int = 7) -> Database:
    rng = random.Random(seed)
    database = Database()
    for _ in range(edges):
        database.add_fact("e", (rng.randrange(nodes), rng.randrange(nodes)))
    return database


def assert_parity(serial, parallel):
    """The full parity contract: identical model AND identical statistics."""
    assert parallel.idb_facts == serial.idb_facts
    assert parallel.statistics == serial.statistics


# ----------------------------------------------------------------------
# The workers knob
# ----------------------------------------------------------------------
class TestResolveWorkers:
    def test_none_means_serial(self):
        assert resolve_workers(None) == 1

    def test_positive_ints_pass_through(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7

    @pytest.mark.parametrize("bad", [True, False, 2.0, "2", 0, -3])
    def test_rejects_non_positive_and_non_ints(self, bad):
        with pytest.raises(EvaluationError, match="workers"):
            resolve_workers(bad)

    def test_engines_without_the_layer_refuse_workers(self):
        program = PROGRAM_POOL[0]
        database = random_graph(5, 8)
        with pytest.raises(EvaluationError, match="parallel workers"):
            get_engine("topdown").evaluate(program, database, workers=2)

    def test_magic_forwards_workers_to_its_delegate(self):
        program = parse_program(
            """
            ?t(0, Y)
            t(X, Y) :- e(X, Y).
            t(X, Y) :- t(X, Z), e(Z, Y).
            """
        )
        database = random_graph(6, 12)
        engine = get_engine("magic")
        assert engine.supports_workers
        assert_parity(
            engine.evaluate(program, database),
            engine.evaluate(program, database, workers=2),
        )


# ----------------------------------------------------------------------
# Depth annotation and grouping
# ----------------------------------------------------------------------
class TestDepthGroups:
    def test_sibling_strata_share_a_depth_and_a_group(self):
        plan = compile_program_plan(SIBLING_PROGRAM, random_graph(5, 8))
        by_head = {
            predicate: stratum
            for stratum in plan.strata
            for predicate in stratum.predicates
        }
        assert by_head["t"].depth == 0
        assert by_head["s"].depth == 0
        assert by_head["q"].depth == 1
        groups = depth_groups(plan.strata)
        assert [sorted(p for s in group for p in s.predicates) for group in groups] == [
            ["s", "t"],
            ["q"],
        ]
        # Within a group the planner's original index order is preserved —
        # it is the order results fold back in.
        assert [s.index for s in groups[0]] == sorted(s.index for s in groups[0])

    def test_depth_groups_follow_dependency_order(self):
        for program in PROGRAM_POOL + STRATIFIED_PROGRAM_POOL:
            plan = compile_program_plan(program, random_graph(5, 10))
            seen_depths = [group[0].depth for group in depth_groups(plan.strata)]
            assert seen_depths == sorted(seen_depths)
            # Every cross-stratum dependency sits at a strictly lower depth
            # (depth = 1 + max over dependencies), so same-depth siblings
            # never read each other's heads — the concurrency invariant.
            depth_of = {}
            for stratum in plan.strata:
                for predicate in stratum.predicates:
                    depth_of[predicate] = stratum.depth
            for stratum in plan.strata:
                for rule in stratum.rules:
                    for atom in rule.body:
                        other = depth_of.get(atom.predicate)
                        if other is not None and atom.predicate not in stratum.predicates:
                            assert other < stratum.depth

    def test_describe_annotates_positive_depths_only(self):
        plan = compile_program_plan(SIBLING_PROGRAM, random_graph(5, 8))
        text = plan.describe()
        assert ", depth 1" in text
        assert ", depth 0" not in text


# ----------------------------------------------------------------------
# Parity: workers=N is invisible to results and statistics
# ----------------------------------------------------------------------
class TestParity:
    @pytest.mark.parametrize("engine", ["naive", "seminaive"])
    @pytest.mark.parametrize("layout", ["tuple", "columnar"])
    def test_sibling_strata_threaded(self, engine, layout):
        database = random_graph(12, 30, seed=11)
        rng = random.Random(13)
        for _ in range(20):
            database.add_fact("f", (rng.randrange(12), rng.randrange(12)))
        if layout == "columnar":
            database = database.with_layout("columnar")
        evaluate = get_engine(engine).evaluate
        serial = evaluate(SIBLING_PROGRAM, database)
        for workers in (2, 4):
            assert_parity(serial, evaluate(SIBLING_PROGRAM, database, workers=workers))

    @settings(deadline=None, max_examples=30)
    @given(
        database=edge_databases(),
        index=st.integers(min_value=0, max_value=len(PROGRAM_POOL)),
        engine=st.sampled_from(["naive", "seminaive"]),
        layout=st.sampled_from(["tuple", "columnar"]),
        workers=st.sampled_from([2, 3]),
    )
    def test_differential_parallel_vs_serial(self, database, index, engine, layout, workers):
        program = (PROGRAM_POOL + [SIBLING_PROGRAM])[index]
        if layout == "columnar":
            database = database.with_layout("columnar")
        evaluate = get_engine(engine).evaluate
        # Guards armed (generous: nothing here should abort) so the parity
        # property also covers the checkpointed code paths.
        guard = ResourceBudget(timeout=60.0).start(CancellationToken())
        serial = evaluate(program, database)
        parallel = evaluate(program, database, workers=workers, guard=guard)
        assert_parity(serial, parallel)

    @settings(deadline=None, max_examples=20)
    @given(
        database=wide_databases(),
        index=st.integers(min_value=0, max_value=len(WIDE_PROGRAM_POOL) - 1),
        workers=st.sampled_from([2, 3]),
    )
    def test_differential_wide_columnar(self, database, index, workers):
        # Arity-3/4 heads are vector-ineligible, so on the columnar layout
        # these route through the sharded driver (small rounds fire
        # in-driver; the bookkeeping is the shared code either way).
        program = WIDE_PROGRAM_POOL[index]
        database = database.with_layout("columnar")
        evaluate = get_engine("seminaive").evaluate
        serial = evaluate(program, database)
        assert_parity(serial, evaluate(program, database, workers=workers))

    def test_session_and_stratified_parity(self):
        database = random_graph(8, 20, seed=5)
        for program in STRATIFIED_PROGRAM_POOL:
            session = QuerySession(program, database)
            assert session.answers(workers=2) == session.answers()

    def test_session_rejects_workers_on_topdown(self):
        session = QuerySession(PROGRAM_POOL[0], random_graph(5, 8))
        with pytest.raises(EvaluationError, match="parallel workers"):
            session.evaluate("topdown", workers=2)


# ----------------------------------------------------------------------
# The process-sharded columnar lane
# ----------------------------------------------------------------------
fork_only = pytest.mark.skipif(
    not shard.available(), reason="fork start method unavailable"
)


@fork_only
class TestShardedDeltas:
    def test_applicable_requires_wide_heads(self):
        database = random_graph(400, 1100).with_layout("columnar")
        plan = compile_program_plan(SHARDABLE_PROGRAM, database)
        assert shard.applicable(plan, database, SHARDABLE_PROGRAM, workers=2)
        assert not shard.applicable(plan, database, SHARDABLE_PROGRAM, workers=1)
        # Binary heads stay on the (already C-speed) vector lane, serial.
        narrow = PROGRAM_POOL[0]
        narrow_plan = compile_program_plan(narrow, database)
        assert not shard.applicable(narrow_plan, database, narrow, workers=2)

    def test_forked_rounds_match_serial_exactly(self):
        # Big enough that recursive rounds clear MIN_SHARD_ROWS and the
        # pools really fork; parity must hold bit-for-bit anyway.
        database = random_graph(400, 1100).with_layout("columnar")
        evaluate = get_engine("seminaive").evaluate
        serial = evaluate(SHARDABLE_PROGRAM, database)
        assert_parity(serial, evaluate(SHARDABLE_PROGRAM, database, workers=2))
        assert_parity(serial, evaluate(SHARDABLE_PROGRAM, database, workers=3))

    def test_shard_groups_merge_repeated_payload_entries(self):
        # A clean merged commit ships one payload entry per shard piece,
        # so one (predicate, arity) appears repeatedly; regression: the
        # slicer replaced the group on the second entry instead of
        # extending it, silently dropping delta rows in every worker.
        bits = shard.KEY_BITS
        def entry(rows):
            keys = [(1 << (2 * bits)) | (a << bits) | b for a, b in rows]
            columns = [[a for a, _ in rows], [b for _, b in rows]]
            return ("t", 2, columns, keys)

        payload = [entry([(0, 1), (1, 2)]), entry([(2, 3), (3, 4)])]
        for nshards in (1, 2, 3):
            merged = set()
            for s in range(nshards):
                delta = shard._shard_groups(payload, s, nshards)
                if delta:
                    merged |= delta["t"][2].keys
            assert merged == {k for _, _, _, keys in payload for k in keys}

    def test_every_round_sharded_nondecomposable_still_matches(self, monkeypatch):
        # The reversed closure is linear but NOT decomposable (the head's
        # first column is not carried from the delta atom), so every
        # round round-trips the payload through _shard_groups — the path
        # where clean multi-piece payloads must merge, not replace.
        monkeypatch.setattr(shard, "MIN_SHARD_ROWS", 1)
        program = parse_program(
            """
            ?t(X, Y)
            t(X, Y) :- e(X, Y).
            t(X, Y) :- t(Z, Y), e(Z, X).
            w(X, X, X) :- e(X, Y).
            """
        )
        database = random_graph(60, 150, seed=3).with_layout("columnar")
        evaluate = get_engine("seminaive").evaluate
        serial = evaluate(program, database)
        assert_parity(serial, evaluate(program, database, workers=2))
        assert_parity(serial, evaluate(program, database, workers=3))

    def test_every_round_sharded_still_matches(self, monkeypatch):
        # Force even tiny rounds across the process boundary: the
        # incremental mirror sync runs every round instead of hiding
        # behind the in-driver small-round path.
        monkeypatch.setattr(shard, "MIN_SHARD_ROWS", 1)
        database = random_graph(60, 150, seed=3).with_layout("columnar")
        evaluate = get_engine("seminaive").evaluate
        serial = evaluate(SHARDABLE_PROGRAM, database)
        assert_parity(serial, evaluate(SHARDABLE_PROGRAM, database, workers=2))

    def test_decomposable_strata_classification(self):
        # The owner-computes analysis: a closure whose single recursive
        # variant carries the delta's shard column into the head's first
        # column is shard-closed; probing the head positionally anywhere,
        # or breaking the alignment, disqualifies it.
        def classify(program):
            database = random_graph(10, 20).with_layout("columnar")
            plan = compile_program_plan(program, database)
            working = shard._BatchWorking(database)
            rules = shard._lowered_rules(plan, working)
            probed = shard._probed_predicates(rules)
            anti = shard._anti_predicates(rules)
            decomposable = shard._decomposable_strata(plan, probed, anti)
            by_head = {
                predicate: stratum.index
                for stratum in plan.strata
                for predicate in stratum.predicates
            }
            return {decomposable.get(by_head["t"])}

        assert classify(SHARDABLE_PROGRAM) == {0}
        # A *nonrecursive* downstream consumer is harmless — static passes
        # fire in-driver, where the model is always complete — so it does
        # not disqualify the closure.
        assert classify(
            parse_program(
                """
                ?p(X, Y)
                t(X, Y) :- e(X, Y).
                t(X, Y) :- t(X, Z), e(Z, Y).
                p(X, Y) :- t(X, Z), t(Z, Y).
                w(X, X, X) :- e(X, Y).
                """
            )
        ) == {0}
        # A *recursive* downstream consumer probes t from a delta variant,
        # which runs in the workers: their t mirrors would be shard-partial
        # if t's stratum skipped the sync, so it must not.
        assert classify(
            parse_program(
                """
                ?p(X, Y)
                t(X, Y) :- e(X, Y).
                t(X, Y) :- t(X, Z), e(Z, Y).
                p(X, Y) :- e(X, Y).
                p(X, Y) :- p(X, Z), t(Z, Y).
                w(X, X, X) :- e(X, Y).
                """
            )
        ) == {None}
        # Reversed closure: the head's first column is not carried from
        # the delta atom at all — sharding it would scatter derivations.
        assert classify(
            parse_program(
                """
                ?t(X, Y)
                t(X, Y) :- e(X, Y).
                t(X, Y) :- t(Z, Y), e(Z, X).
                w(X, X, X) :- e(X, Y).
                """
            )
        ) == {None}

    def test_owner_computes_reseeds_after_in_driver_rounds(self, monkeypatch):
        # A dense component (big early rounds) plus a fan->chain->fan
        # bottleneck (small mid rounds, then a fan*fan bang) drives the
        # decomposable stratum through every retained-delta transition:
        # seed -> use -> in-driver (retained state invalidated) -> reseed.
        rng = random.Random(0)
        database = Database()
        for _ in range(110):
            database.add_fact(
                "e", (1000 + rng.randrange(40), 1000 + rng.randrange(40))
            )
        for i in range(20):
            database.add_fact("e", (i, 100))
            database.add_fact("e", (108, 200 + i))
        for i in range(8):
            database.add_fact("e", (100 + i, 100 + i + 1))
        database = database.with_layout("columnar")
        evaluate = get_engine("seminaive").evaluate
        serial = evaluate(SHARDABLE_PROGRAM, database)

        tags = []
        commit_merged = shard._commit_merged
        commit_with_payload = shard._commit_with_payload

        def spy_merged(working, buckets, head_arities, clean):
            tags.append("sharded")
            return commit_merged(working, buckets, head_arities, clean)

        def spy_driver(working, buckets, head_arities):
            tags.append("driver")
            return commit_with_payload(working, buckets, head_arities)

        monkeypatch.setattr(shard, "MIN_SHARD_ROWS", 100)
        monkeypatch.setattr(shard, "_commit_merged", spy_merged)
        monkeypatch.setattr(shard, "_commit_with_payload", spy_driver)
        for workers in (2, 3):
            tags.clear()
            assert_parity(serial, evaluate(SHARDABLE_PROGRAM, database, workers=workers))
            first = tags.index("sharded")
            last = len(tags) - 1 - tags[::-1].index("sharded")
            # At least one in-driver round strictly between two sharded
            # rounds: the second sharded round had to re-shard its delta
            # (retained worker state was stale), not reuse it.
            assert "driver" in tags[first + 1 : last]

    def test_budget_abort_leaves_no_orphan_workers(self):
        database = random_graph(400, 1100).with_layout("columnar")
        # Rounds 1-2 are the static passes plus the first (sharded, pools
        # forked) recursive rounds; the cap trips after that, while the
        # shard workers are live — exactly the teardown under test.
        budget = ResourceBudget(max_rounds=4)
        before = {id(p) for p in multiprocessing.active_children()}
        with pytest.raises(BudgetExceeded):
            get_engine("seminaive").evaluate(
                SHARDABLE_PROGRAM,
                database,
                workers=2,
                guard=budget.start(),
            )
        for process in multiprocessing.active_children():
            if id(process) not in before:
                process.join(timeout=5)
                assert not process.is_alive()

    def test_cancellation_aborts_all_shards(self, monkeypatch):
        # MIN_SHARD_ROWS=1 makes every round a process round-trip, so the
        # evaluation is reliably still running when the token flips; the
        # driver observes it at a wait-slice checkpoint and the workers at
        # their next rule boundary.
        monkeypatch.setattr(shard, "MIN_SHARD_ROWS", 1)
        chain = Database()
        for i in range(260):
            chain.add_fact("e", (i, i + 1))
        database = chain.with_layout("columnar")
        token = CancellationToken()
        timer = threading.Timer(0.05, token.cancel)
        timer.start()
        before = {id(p) for p in multiprocessing.active_children()}
        try:
            with pytest.raises(QueryCancelled):
                get_engine("seminaive").evaluate(
                    SHARDABLE_PROGRAM,
                    database,
                    workers=2,
                    guard=ResourceBudget().start(token),
                )
        finally:
            timer.cancel()
        for process in multiprocessing.active_children():
            if id(process) not in before:
                process.join(timeout=5)
                assert not process.is_alive()


# ----------------------------------------------------------------------
# Planner cache under thread fire (regression: pre-fix this was lock-free)
# ----------------------------------------------------------------------
class TestPlannerHammer:
    THREADS = 8
    CALLS = 1500
    ROUNDS = 4

    def test_shared_planner_with_constant_eviction(self):
        # Calibrated against the pre-fix lock-free cache: at these volumes
        # one round trips it >80% of the time ("dictionary changed size
        # during iteration" from the eviction scan, KeyError from the LRU
        # del/re-insert, or lost counter updates), so four rounds make the
        # regression effectively certain while the locked cache sails
        # through deterministically.
        switch = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)  # amplify preemption at bytecode level
        try:
            for _ in range(self.ROUNDS):
                self._hammer_one_round()
        finally:
            sys.setswitchinterval(switch)

    def _hammer_one_round(self) -> None:
        planner = Planner()
        planner.MAX_ENTRIES = 4  # instance override: every miss evicts
        database = random_graph(6, 14)
        # More live (program, database) pairs than cache slots, and each a
        # distinct object so the cache cannot collapse them.
        programs = [
            parse_program(
                """
                ?t(X, Y)
                t(X, Y) :- e(X, Y).
                t(X, Y) :- t(X, Z), e(Z, Y).
                """
            )
            for _ in range(12)
        ]
        errors = []
        barrier = threading.Barrier(self.THREADS)

        def worker(seed: int) -> None:
            rng = random.Random(seed)
            try:
                barrier.wait()
                for _ in range(self.CALLS):
                    plan = planner.plan(rng.choice(programs), database)
                    assert plan.strata  # a real plan, not a torn read
            except BaseException as error:  # noqa: BLE001 - the assertion payload
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(seed,))
            for seed in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        # Exactly one count per call: lost updates or double-counts mean
        # the counters (and therefore the cache structure) raced.
        assert (
            planner.plans_compiled + planner.cache_hits
            == self.THREADS * self.CALLS
        )
        assert len(planner._cache) <= planner.MAX_ENTRIES

    def test_shared_service_mixed_programs_under_threads(self):
        service = DatalogService(
            parent_forest(80, seed=4, root_count=4), cache_size=2
        )
        service.register_program(
            "anc",
            """
            ?anc($who, Y)
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- anc(X, Z), par(Z, Y).
            """,
        )
        service.register_program(
            "sib",
            """
            ?sib($who, Y)
            sib(X, Y) :- par(Z, X), par(Z, Y).
            """,
        )
        whos = [f"p{i}" for i in range(1, 9)] + ["john"]
        expected = {
            (name, who): service.execute(name, who=who)
            for name in ("anc", "sib")
            for who in whos
        }
        errors = []
        barrier = threading.Barrier(6)

        def worker(seed: int) -> None:
            rng = random.Random(seed)
            try:
                barrier.wait()
                for _ in range(25):
                    name = rng.choice(("anc", "sib"))
                    who = rng.choice(whos)
                    answers = service.execute(name, who=who, fresh=rng.random() < 0.5)
                    assert answers == expected[(name, who)]
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_prepared_plan_compiles_once_across_threads(self):
        prepared = PreparedQuery(
            parse_program(
                """
                ?anc($who, Y)
                anc(X, Y) :- par(X, Y).
                anc(X, Y) :- anc(X, Z), par(Z, Y).
                """
            ),
            parent_forest(60, seed=3, root_count=3),
        )
        plans = []
        barrier = threading.Barrier(8)

        def worker() -> None:
            barrier.wait()
            plans.append(prepared.plan())

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(plans) == 8
        assert all(plan is plans[0] for plan in plans)
        # A database mutation invalidates the published pair.
        prepared.database.add_fact("par", ("zz_a", "zz_b"))
        assert prepared.plan() is not plans[0]


# ----------------------------------------------------------------------
# Service-level workers plumbing
# ----------------------------------------------------------------------
class TestServiceWorkers:
    @pytest.mark.parametrize("bad", [0, -1, True, 1.5])
    def test_constructor_validates_workers(self, bad):
        with pytest.raises(ValueError, match="workers"):
            DatalogService(Database(), workers=bad)

    def test_service_default_workers_apply_to_supporting_engines(self):
        database = parent_forest(60, seed=3, root_count=3)
        text = """
        ?anc($who, Y)
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- anc(X, Z), par(Z, Y).
        """
        serial = DatalogService(database)
        parallel = DatalogService(database, workers=2)
        for service in (serial, parallel):
            service.register_program("anc", text)
        assert parallel.execute("anc", who="john") == serial.execute("anc", who="john")

    def test_service_default_degrades_for_engines_without_the_layer(self):
        # The service-wide default is a hint across a mixed-engine registry:
        # engines without the parallel layer silently run serial instead of
        # rejecting every request.
        database = parent_forest(40, seed=3, root_count=2)
        service = DatalogService(database, workers=2)
        service.register_program(
            "anc",
            """
            ?anc($who, Y)
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- anc(X, Z), par(Z, Y).
            """,
        )
        baseline = DatalogService(database)
        baseline.register_program(
            "anc",
            """
            ?anc($who, Y)
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- anc(X, Z), par(Z, Y).
            """,
        )
        assert service.execute("anc", who="john", engine="topdown") == baseline.execute(
            "anc", who="john", engine="topdown"
        )

    def test_per_call_workers_stay_strict(self):
        service = DatalogService(parent_forest(40, seed=3, root_count=2))
        service.register_program(
            "anc",
            """
            ?anc($who, Y)
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- anc(X, Z), par(Z, Y).
            """,
        )
        with pytest.raises(EvaluationError, match="parallel workers"):
            service.execute("anc", who="john", engine="topdown", workers=2)
