"""Shared Hypothesis strategies for the Datalog test suites.

One home for the random-input generators that several suites previously
duplicated: the edge-labeled graph databases and the pool of
chain/recursive/mutually-recursive programs (``test_executor``,
``test_planner``, ``test_prepared``, ``test_incremental_differential``), and
the small mixed-type databases and goal atoms
(``test_properties_hypothesis``).  Keeping them here means a new engine- or
maintenance-level property automatically fuzzes the same program shapes every
other suite does.
"""

from hypothesis import strategies as st

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.datalog.terms import Constant, Variable

# ----------------------------------------------------------------------
# Small mixed-type databases (relations p/q/r over ints and strings)
# ----------------------------------------------------------------------
values = st.one_of(st.integers(min_value=0, max_value=5), st.sampled_from(["a", "b", "c"]))
tuples2 = st.tuples(values, values)
relation_names = st.sampled_from(["p", "q", "r"])


@st.composite
def databases(draw):
    """A database of up to 12 binary facts over relations p, q, r."""
    database = Database()
    for _ in range(draw(st.integers(min_value=0, max_value=12))):
        database.add_fact(draw(relation_names), draw(tuples2))
    return database


@st.composite
def goal_atoms(draw):
    """A binary goal atom mixing variables X/Y and constants from the domain."""

    def term():
        if draw(st.booleans()):
            return Variable(draw(st.sampled_from(["X", "Y"])))
        return Constant(draw(values))

    return Atom(draw(relation_names), (term(), term()))


# ----------------------------------------------------------------------
# Edge-labeled graphs (relations e/f over a 5-node domain)
# ----------------------------------------------------------------------
edge_tuples = st.tuples(
    st.integers(min_value=0, max_value=4), st.integers(min_value=0, max_value=4)
)
edge_relation_names = st.sampled_from(["e", "f"])


@st.composite
def edge_databases(draw):
    """A graph database of 1-14 edges over relations e and f."""
    database = Database()
    for _ in range(draw(st.integers(min_value=1, max_value=14))):
        database.add_fact(draw(edge_relation_names), draw(edge_tuples))
    return database


@st.composite
def edge_fact_batches(draw, max_size: int = 4):
    """A batch of (predicate, values) pairs over the e/f edge domain.

    The incremental-maintenance harness feeds these as insertion and
    deletion batches; they deliberately include facts that may already be
    present (inserts must be idempotent) or absent (deletes of underived
    facts must be no-ops).
    """
    return [
        (draw(edge_relation_names), draw(edge_tuples))
        for _ in range(draw(st.integers(min_value=0, max_value=max_size)))
    ]


# The shared pool of recursive program shapes: linear recursion, indirect
# recursion through a second relation, non-linear recursion feeding a
# projection, mutual recursion, and linear recursion seeded through a
# fact-rule-defined relation (f has a program fact but no proper rules —
# the no-stratum-owns-it case).  Every program is evaluable over an
# edge_databases() draw, and f/e are exactly the relations the mutation
# batches touch.
PROGRAM_POOL = [
    parse_program(
        """
        ?t(X, Y)
        t(X, Y) :- e(X, Y).
        t(X, Y) :- t(X, Z), e(Z, Y).
        """
    ),
    parse_program(
        """
        ?t(X, Y)
        t(X, Y) :- e(X, Y).
        t(X, Y) :- e(X, Z), f(Z, W), t(W, Y).
        """
    ),
    parse_program(
        """
        ?s(X, Y)
        t(X, Y) :- e(X, Y).
        t(X, Y) :- t(X, Z), t(Z, Y).
        s(X, Y) :- f(X, Z), t(Z, Y).
        """
    ),
    parse_program(
        """
        ?odd(X, Y)
        odd(X, Y) :- e(X, Z), even(Z, Y).
        even(X, Y) :- e(X, Z), odd(Z, Y).
        even(X, Y) :- e(X, Y).
        """
    ),
    parse_program(
        """
        ?t(X, Y)
        f(0, 0).
        t(X, Y) :- f(X, Y).
        t(X, Y) :- t(X, Z), e(Z, Y).
        """
    ),
    # Self-join shape: Z threads through THREE body atoms (t, e, f), so one
    # batch of candidate bindings joins against two more relations on the
    # same column before reaching the head.  Batch kernels dedup candidate
    # rows between such probes; nothing else in the pool repeats a variable
    # across more than two atoms, so this is the shape that fuzzes it.
    parse_program(
        """
        ?t(X, Y)
        t(X, Y) :- e(X, Y).
        t(X, Y) :- t(X, Z), e(X, Z), f(Z, Y).
        """
    ),
]

program_indexes = st.sampled_from(range(len(PROGRAM_POOL)))
pool_programs = st.sampled_from(PROGRAM_POOL)


# ----------------------------------------------------------------------
# Stratified negation / aggregate programs over the same e/f edge domain
# ----------------------------------------------------------------------
# Every program is stratified and safe: negated variables are bound by a
# positive IDB domain predicate (n collects edge endpoints), and negation
# and aggregation always read strata that close below them.  The shapes:
# complement of a recursive closure, binary non-edge over the closure,
# grouped count, min over a join, a global count over a negation stratum,
# and sum guarded by negation on the second EDB relation.
STRATIFIED_PROGRAM_POOL = [
    parse_program(
        """
        ?u(X)
        n(X) :- e(X, Y).
        n(Y) :- e(X, Y).
        r(Y) :- e(0, Y).
        r(Y) :- r(X), e(X, Y).
        u(X) :- n(X), not r(X).
        """
    ),
    parse_program(
        """
        ?nt(X, Y)
        n(X) :- e(X, Y).
        n(Y) :- e(X, Y).
        t(X, Y) :- e(X, Y).
        t(X, Y) :- t(X, Z), e(Z, Y).
        nt(X, Y) :- n(X), n(Y), not t(X, Y).
        """
    ),
    parse_program(
        """
        ?d(X, C)
        d(X, count<Y>) :- e(X, Y).
        """
    ),
    parse_program(
        """
        ?m(X, M)
        j(X, Y) :- e(X, Z), f(Z, Y).
        m(X, min<Y>) :- j(X, Y).
        """
    ),
    parse_program(
        """
        ?c(C)
        n(X) :- e(X, Y).
        n(Y) :- e(X, Y).
        r(Y) :- e(0, Y).
        r(Y) :- r(X), e(X, Y).
        u(X) :- n(X), not r(X).
        c(count<X>) :- u(X).
        """
    ),
    parse_program(
        """
        ?s(X, S)
        live(X) :- e(X, Y), not f(X, Y).
        s(X, sum<Y>) :- e(X, Y), live(X).
        """
    ),
]

#: The pool entries a MaterializedView accepts: negation over strata that
#: close below (aggregate heads are rejected at view construction).
STRATIFIED_VIEW_POOL = STRATIFIED_PROGRAM_POOL[:2]

stratified_programs = st.sampled_from(STRATIFIED_PROGRAM_POOL)
stratified_view_programs = st.sampled_from(STRATIFIED_VIEW_POOL)


# ----------------------------------------------------------------------
# Wider-arity EDBs over a larger mixed domain (columnar differential)
# ----------------------------------------------------------------------
# The columnar lanes split by head arity (<=2 rows ride the vector lane,
# 3-4 the packed-bigint lane), so the differential harness needs EDBs
# whose programs exercise both — plus a domain big and mixed enough that
# intern codes stop being tiny consecutive ints.
wide_values = st.one_of(
    st.integers(min_value=0, max_value=30),
    st.sampled_from(["u", "v", "w", "deep", "wide"]),
)


@st.composite
def wide_databases(draw):
    """An EDB mixing arities: binary e, ternary g, quaternary h."""
    database = Database()
    for _ in range(draw(st.integers(min_value=1, max_value=10))):
        database.add_fact("e", (draw(wide_values), draw(wide_values)))
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        database.add_fact(
            "g", (draw(wide_values), draw(wide_values), draw(wide_values))
        )
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        database.add_fact("h", tuple(draw(wide_values) for _ in range(4)))
    return database


@st.composite
def wide_fact_batches(draw, max_size: int = 4):
    """Insertion/deletion batches over the wide-arity e/g/h domain."""
    batch = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_size))):
        predicate = draw(st.sampled_from(["e", "g", "h"]))
        arity = {"e": 2, "g": 3, "h": 4}[predicate]
        batch.append((predicate, tuple(draw(wide_values) for _ in range(arity))))
    return batch


# Recursive programs whose heads carry arity 3 and 4 (packed-bigint lane)
# alongside binary projections (vector lane), including a cross-arity join
# with a repeated variable inside one atom (h(Y, Z, W, W)).
WIDE_PROGRAM_POOL = [
    parse_program(
        """
        ?j(X, Y, Z)
        j(X, Y, Z) :- g(X, Y, Z).
        j(X, Y, Z) :- j(X, Y, W), e(W, Z).
        """
    ),
    parse_program(
        """
        ?k(A, B, C, D)
        k(A, B, C, D) :- h(A, B, C, D).
        k(A, B, C, D) :- k(A, B, C, W), e(W, D).
        """
    ),
    parse_program(
        """
        ?p(X, W)
        p(X, W) :- g(X, Y, Z), h(Y, Z, W, W).
        p(X, W) :- p(X, Z), e(Z, W).
        """
    ),
    parse_program(
        """
        ?q(X, Z)
        wide(X, Y, Z, Z) :- g(X, Y, Z).
        wide(X, Y, Z, W) :- wide(X, Y, Z, V), e(V, W).
        q(X, W) :- wide(X, Y, Z, W), e(X, Y).
        """
    ),
]

wide_programs = st.sampled_from(WIDE_PROGRAM_POOL)
wide_program_indexes = st.sampled_from(range(len(WIDE_PROGRAM_POOL)))
