"""Shared Hypothesis strategies for the Datalog test suites.

One home for the random-input generators that several suites previously
duplicated: the edge-labeled graph databases and the pool of
chain/recursive/mutually-recursive programs (``test_executor``,
``test_planner``, ``test_prepared``, ``test_incremental_differential``), and
the small mixed-type databases and goal atoms
(``test_properties_hypothesis``).  Keeping them here means a new engine- or
maintenance-level property automatically fuzzes the same program shapes every
other suite does.
"""

from hypothesis import strategies as st

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.datalog.terms import Constant, Variable

# ----------------------------------------------------------------------
# Small mixed-type databases (relations p/q/r over ints and strings)
# ----------------------------------------------------------------------
values = st.one_of(st.integers(min_value=0, max_value=5), st.sampled_from(["a", "b", "c"]))
tuples2 = st.tuples(values, values)
relation_names = st.sampled_from(["p", "q", "r"])


@st.composite
def databases(draw):
    """A database of up to 12 binary facts over relations p, q, r."""
    database = Database()
    for _ in range(draw(st.integers(min_value=0, max_value=12))):
        database.add_fact(draw(relation_names), draw(tuples2))
    return database


@st.composite
def goal_atoms(draw):
    """A binary goal atom mixing variables X/Y and constants from the domain."""

    def term():
        if draw(st.booleans()):
            return Variable(draw(st.sampled_from(["X", "Y"])))
        return Constant(draw(values))

    return Atom(draw(relation_names), (term(), term()))


# ----------------------------------------------------------------------
# Edge-labeled graphs (relations e/f over a 5-node domain)
# ----------------------------------------------------------------------
edge_tuples = st.tuples(
    st.integers(min_value=0, max_value=4), st.integers(min_value=0, max_value=4)
)
edge_relation_names = st.sampled_from(["e", "f"])


@st.composite
def edge_databases(draw):
    """A graph database of 1-14 edges over relations e and f."""
    database = Database()
    for _ in range(draw(st.integers(min_value=1, max_value=14))):
        database.add_fact(draw(edge_relation_names), draw(edge_tuples))
    return database


@st.composite
def edge_fact_batches(draw, max_size: int = 4):
    """A batch of (predicate, values) pairs over the e/f edge domain.

    The incremental-maintenance harness feeds these as insertion and
    deletion batches; they deliberately include facts that may already be
    present (inserts must be idempotent) or absent (deletes of underived
    facts must be no-ops).
    """
    return [
        (draw(edge_relation_names), draw(edge_tuples))
        for _ in range(draw(st.integers(min_value=0, max_value=max_size)))
    ]


# The shared pool of recursive program shapes: linear recursion, indirect
# recursion through a second relation, non-linear recursion feeding a
# projection, mutual recursion, and linear recursion seeded through a
# fact-rule-defined relation (f has a program fact but no proper rules —
# the no-stratum-owns-it case).  Every program is evaluable over an
# edge_databases() draw, and f/e are exactly the relations the mutation
# batches touch.
PROGRAM_POOL = [
    parse_program(
        """
        ?t(X, Y)
        t(X, Y) :- e(X, Y).
        t(X, Y) :- t(X, Z), e(Z, Y).
        """
    ),
    parse_program(
        """
        ?t(X, Y)
        t(X, Y) :- e(X, Y).
        t(X, Y) :- e(X, Z), f(Z, W), t(W, Y).
        """
    ),
    parse_program(
        """
        ?s(X, Y)
        t(X, Y) :- e(X, Y).
        t(X, Y) :- t(X, Z), t(Z, Y).
        s(X, Y) :- f(X, Z), t(Z, Y).
        """
    ),
    parse_program(
        """
        ?odd(X, Y)
        odd(X, Y) :- e(X, Z), even(Z, Y).
        even(X, Y) :- e(X, Z), odd(Z, Y).
        even(X, Y) :- e(X, Y).
        """
    ),
    parse_program(
        """
        ?t(X, Y)
        f(0, 0).
        t(X, Y) :- f(X, Y).
        t(X, Y) :- t(X, Z), e(Z, Y).
        """
    ),
]

program_indexes = st.sampled_from(range(len(PROGRAM_POOL)))
pool_programs = st.sampled_from(PROGRAM_POOL)
