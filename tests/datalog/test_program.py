"""Unit tests for repro.datalog.program."""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.program import Program
from repro.errors import UnsafeRuleError, ValidationError


class TestClassification:
    def test_idb_edb_split(self, ancestor_a):
        program = ancestor_a.program
        assert program.idb_predicates() == {"anc"}
        assert program.edb_predicates() == {"par"}

    def test_predicates_includes_goal(self):
        program = parse_program("?q(X)\nq(X) :- b(X).")
        assert "q" in program.predicates()
        assert "b" in program.predicates()

    def test_arities(self, ancestor_a):
        assert ancestor_a.program.predicate_arities() == {"anc": 2, "par": 2}

    def test_inconsistent_arity_rejected(self):
        program = parse_program("p(X) :- b(X).\np(X, Y) :- b(X), b(Y).")
        with pytest.raises(ValidationError):
            program.predicate_arities()

    def test_is_monadic(self, ancestor_a, ancestor_d):
        assert not ancestor_a.program.is_monadic()
        assert ancestor_d.is_monadic()

    def test_monadic_allows_binary_edbs(self):
        program = parse_program("?w(Y)\nw(Y) :- par(c, Y).")
        assert program.is_monadic()


class TestValidation:
    def test_valid_program(self, ancestor_a):
        ancestor_a.program.validate()

    def test_unsafe_rule_rejected(self):
        program = parse_program("p(X, Y) :- b(X, X).")
        with pytest.raises(UnsafeRuleError):
            program.validate()

    def test_goal_must_be_idb(self):
        program = parse_program("?q(X)\np(X) :- b(X).")
        with pytest.raises(ValidationError):
            program.validate()


class TestUpdates:
    def test_with_goal(self, ancestor_a):
        new_goal = Atom("anc", ("X", "Y"))
        updated = ancestor_a.program.with_goal(new_goal)
        assert updated.goal == new_goal
        assert updated.rules == ancestor_a.program.rules

    def test_add_rules(self, ancestor_a):
        extra = parse_rule("anc(X, Y) :- par(X, Y).")
        updated = ancestor_a.program.add_rules([extra])
        assert len(updated) == len(ancestor_a.program) + 1

    def test_rename_predicates(self, ancestor_a):
        renamed = ancestor_a.program.rename_predicates({"anc": "ancestor"})
        assert renamed.idb_predicates() == {"ancestor"}
        assert renamed.goal.predicate == "ancestor"
        assert renamed.edb_predicates() == {"par"}

    def test_rules_for(self, ancestor_a):
        assert len(ancestor_a.program.rules_for("anc")) == 2
        assert ancestor_a.program.rules_for("par") == ()
