"""Unit tests for program analysis (dependency graph, recursion, linearity)."""

from repro.datalog.analysis import (
    dependency_graph,
    is_linear_program,
    is_recursive,
    predicate_usage,
    recursive_predicates,
    relevant_rules,
    stratification,
)
from repro.datalog.parser import parse_program


class TestDependencyGraph:
    def test_edges(self, ancestor_a):
        graph = dependency_graph(ancestor_a.program)
        assert ("anc", "par") in graph.edges
        assert ("anc", "anc") in graph.edges

    def test_successors_predecessors(self, ancestor_a):
        graph = dependency_graph(ancestor_a.program)
        assert graph.successors("anc") == {"par", "anc"}
        assert graph.predecessors("par") == {"anc"}

    def test_reachable_from(self):
        program = parse_program(
            """
            a(X) :- b(X).
            b(X) :- c(X).
            d(X) :- e(X).
            """
        )
        graph = dependency_graph(program)
        assert graph.reachable_from("a") == {"a", "b", "c"}

    def test_sccs_identify_mutual_recursion(self):
        program = parse_program(
            """
            p(X) :- q(X).
            q(X) :- p(X).
            r(X) :- p(X).
            """
        )
        graph = dependency_graph(program)
        components = graph.strongly_connected_components()
        assert frozenset({"p", "q"}) in components


class TestRecursion:
    def test_recursive_predicates(self, ancestor_a):
        assert recursive_predicates(ancestor_a.program) == {"anc"}
        assert is_recursive(ancestor_a.program)

    def test_non_recursive(self):
        program = parse_program("gp(X, Y) :- par(X, Z), par(Z, Y).")
        assert not is_recursive(program)
        assert recursive_predicates(program) == frozenset()

    def test_linear_vs_nonlinear(self, ancestor_a, ancestor_c):
        assert is_linear_program(ancestor_a.program)
        assert not is_linear_program(ancestor_c.program)


class TestMisc:
    def test_relevant_rules_filters_unreachable(self):
        program = parse_program(
            """
            ?a(X)
            a(X) :- b(X).
            z(X) :- b(X).
            """
        )
        kept = relevant_rules(program)
        assert [rule.head.predicate for rule in kept] == ["a"]

    def test_relevant_rules_without_goal_keeps_all(self):
        program = parse_program("a(X) :- b(X).\nz(X) :- b(X).")
        assert len(relevant_rules(program)) == 2

    def test_predicate_usage(self, ancestor_a):
        usage = predicate_usage(ancestor_a.program)
        assert usage["par"] == 2
        assert usage["anc"] == 1

    def test_stratification_orders_components(self):
        program = parse_program(
            """
            top(X) :- mid(X).
            mid(X) :- base(X).
            mid(X) :- mid(X).
            """
        )
        strata = stratification(program)
        flat = [predicate for stratum in strata for predicate in stratum]
        assert flat.index("base") < flat.index("mid") < flat.index("top")
