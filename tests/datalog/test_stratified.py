"""Stratified negation and aggregates: language, evaluation, and surfaces.

The subsystem's contract, end to end: the parser accepts ``not p(X)``
literals and ``count/sum/min/max`` aggregate head terms; safety and
stratification validation rejects bad programs with precise diagnostics;
every bottom-up engine computes the standard stratified model (negation as
complement against fully-closed lower strata, aggregates at stratum
close); and each public surface — ``Program.validate``, the CLI, the
service registry, the HTTP endpoint — refuses invalid programs with the
same diagnostic, leaving no durable state behind.
"""

import pytest

from repro.datalog import Database, MaterializedView, available_engines, get_engine
from repro.datalog.analysis import check_stratified, negative_dependency_edges
from repro.datalog.atoms import NegatedAtom
from repro.datalog.engine.registry import EngineNotApplicableError
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.pretty import format_program, format_rule
from repro.datalog.service import DatalogService
from repro.datalog.terms import Aggregate
from repro.errors import (
    EvaluationError,
    UnsafeRuleError,
    UnstratifiableProgramError,
    ValidationError,
)

SEMINAIVE = get_engine("seminaive")

UNREACHABLE = """
n(X) :- e(X, Y).
n(Y) :- e(X, Y).
r(Y) :- e(0, Y).
r(Y) :- r(X), e(X, Y).
u(X) :- n(X), not r(X).
"""

WIN = """
win(X) :- move(X, Y), not win(Y).
"""


def edge_db(*edges):
    database = Database()
    for edge in edges:
        database.add_fact("e", edge)
    return database


# ----------------------------------------------------------------------
# Language: parsing, printing, construction
# ----------------------------------------------------------------------
class TestLanguage:
    def test_parse_negated_literal(self):
        rule = parse_rule("u(X) :- n(X), not r(X).")
        assert isinstance(rule.body[1], NegatedAtom)
        assert rule.body[1].predicate == "r"
        assert rule.positive_body() == (rule.body[0],)
        assert rule.negated_body() == (rule.body[1],)

    def test_parse_aggregate_head(self):
        rule = parse_rule("degree(X, count<Y>) :- e(X, Y).")
        aggregate = rule.head.terms[1]
        assert isinstance(aggregate, Aggregate)
        assert aggregate.op == "count"
        assert aggregate.variable.name == "Y"

    @pytest.mark.parametrize("op", ["count", "sum", "min", "max"])
    def test_all_aggregate_ops_parse(self, op):
        rule = parse_rule(f"a(X, {op}<Y>) :- e(X, Y).")
        assert rule.head.terms[1].op == op

    def test_pretty_round_trips_negation_and_aggregates(self):
        rule = parse_rule("u(X, count<Y>) :- n(X), e(X, Y), not r(X).")
        assert parse_rule(format_rule(rule)) == rule
        program = parse_program(UNREACHABLE)
        assert parse_program(format_program(program)).rules == program.rules

    def test_negated_head_rejected(self):
        with pytest.raises(Exception):
            parse_rule("not u(X) :- n(X).")


# ----------------------------------------------------------------------
# Validation: safety and stratification diagnostics
# ----------------------------------------------------------------------
class TestValidation:
    def test_unsafe_negated_variable_named_in_diagnostic(self):
        rule = parse_rule("u(X) :- n(X), not r(X, Z).")
        with pytest.raises(UnsafeRuleError, match="Z"):
            rule.check_safe()

    def test_aggregate_head_variable_must_be_bound(self):
        rule = parse_rule("a(X, count<W>) :- e(X, Y).")
        with pytest.raises(UnsafeRuleError):
            rule.check_safe()

    def test_win_lose_cycle_is_named(self):
        program = parse_program(WIN)
        with pytest.raises(UnstratifiableProgramError) as excinfo:
            check_stratified(program)
        message = str(excinfo.value)
        assert "win -> win" in message
        assert "negation" in message
        assert "lower stratum" in message

    def test_recursion_through_aggregate_rejected(self):
        program = parse_program(
            """
            p(X, count<Y>) :- q(X, Y).
            q(X, Y) :- p(X, C), e(X, Y).
            """
        )
        with pytest.raises(UnstratifiableProgramError, match="aggregation"):
            check_stratified(program)

    def test_negative_edges_cover_negation_and_aggregates(self):
        program = parse_program(UNREACHABLE + "c(count<X>) :- u(X).\n")
        edges = negative_dependency_edges(program)
        assert ("u", "r") in edges
        assert ("c", "u") in edges

    def test_unknown_aggregate_op_rejected_at_parse(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            parse_program("a(X, avg<Y>) :- e(X, Y).")

    def test_validate_rejects_aggregate_also_grouped(self):
        program = parse_program("a(Y, count<Y>) :- e(X, Y).")
        with pytest.raises(ValidationError):
            program.validate()

    def test_validate_accepts_the_stratified_portfolio(self):
        parse_program(UNREACHABLE).validate()


# ----------------------------------------------------------------------
# Evaluation semantics across engines
# ----------------------------------------------------------------------
class TestEvaluation:
    def test_negation_as_complement_of_closed_stratum(self):
        database = edge_db((0, 1), (1, 2), (3, 4))
        result = SEMINAIVE.evaluate(parse_program(UNREACHABLE), database)
        assert result.relation("r") == {(1,), (2,)}
        assert result.relation("u") == {(0,), (3,), (4,)}

    def test_all_engines_agree_on_negation(self):
        database = edge_db((0, 1), (1, 0), (2, 3))
        program = parse_program("?u(X)\n" + UNREACHABLE)
        expected = SEMINAIVE.evaluate(program, database).answers()
        assert expected  # nonempty complement, or the check is vacuous
        for name in available_engines():
            try:
                result = get_engine(name).evaluate(program, database)
            except EngineNotApplicableError:
                continue
            assert result.answers() == expected, name

    def test_count_is_over_distinct_bindings(self):
        database = edge_db((0, 1), (0, 1), (0, 2), (1, 2))
        result = SEMINAIVE.evaluate(
            parse_program("d(X, count<Y>) :- e(X, Y)."), database
        )
        assert result.relation("d") == {(0, 2), (1, 1)}

    def test_sum_min_max_over_groups(self):
        database = edge_db((0, 3), (0, 5), (1, 7))
        program = parse_program(
            """
            s(X, sum<Y>) :- e(X, Y).
            lo(X, min<Y>) :- e(X, Y).
            hi(X, max<Y>) :- e(X, Y).
            """
        )
        result = SEMINAIVE.evaluate(program, database)
        assert result.relation("s") == {(0, 8), (1, 7)}
        assert result.relation("lo") == {(0, 3), (1, 7)}
        assert result.relation("hi") == {(0, 5), (1, 7)}

    def test_global_aggregate_has_one_group(self):
        database = edge_db((0, 1), (2, 3), (2, 4))
        result = SEMINAIVE.evaluate(
            parse_program("c(count<X>) :- e(X, Y)."), database
        )
        assert result.relation("c") == {(2,)}

    def test_empty_body_relation_yields_no_groups(self):
        result = SEMINAIVE.evaluate(
            parse_program("d(X, count<Y>) :- e(X, Y)."), Database()
        )
        assert result.relation("d") == frozenset()

    def test_aggregate_over_recursive_stratum(self):
        # Count each node's reachable set over the transitive closure.
        database = edge_db((0, 1), (1, 2))
        program = parse_program(
            """
            t(X, Y) :- e(X, Y).
            t(X, Y) :- t(X, Z), e(Z, Y).
            fan(X, count<Y>) :- t(X, Y).
            """
        )
        result = SEMINAIVE.evaluate(program, database)
        assert result.relation("fan") == {(0, 2), (1, 1)}

    def test_compiled_interpreted_statistics_parity(self):
        database = edge_db((0, 1), (1, 2), (2, 0), (3, 1))
        program = parse_program(UNREACHABLE + "c(count<X>) :- u(X).\n")
        compiled = SEMINAIVE.evaluate(program, database, compiled=True)
        interpreted = SEMINAIVE.evaluate(program, database, compiled=False)
        assert compiled.idb_facts == interpreted.idb_facts
        assert compiled.statistics.as_dict() == interpreted.statistics.as_dict()

    def test_engines_reject_unstratifiable_program(self):
        database = Database()
        database.add_fact("move", (0, 1))
        with pytest.raises(UnstratifiableProgramError):
            SEMINAIVE.evaluate(parse_program(WIN), database)


# ----------------------------------------------------------------------
# Incremental views
# ----------------------------------------------------------------------
class TestViews:
    def test_negation_view_maintains_complement(self):
        program = parse_program("?u(X)\n" + UNREACHABLE)
        view = MaterializedView(program, edge_db((0, 1), (3, 4)))
        assert view.relation("u") == {(0,), (3,), (4,)}
        view.apply(insertions=[("e", (1, 3))])
        # 3 and 4 become reachable through the new edge.
        assert view.relation("u") == {(0,)}
        view.apply(deletions=[("e", (1, 3))])
        assert view.relation("u") == {(0,), (3,), (4,)}

    def test_deletion_joined_with_insertion_does_not_phantom_overdelete(self):
        """Regression: under insert-first signed maintenance, DRed's
        overdeletion joins against the live model — which already holds
        this batch's insertions.  A deleted edge joined with a *newly
        inserted* reach fact must not overdelete a head that existed in
        neither the old nor the new state; recording such a phantom as
        removed poisons the negation stratum's signed tallies."""
        program = parse_program(
            """
            ?u(X)
            n(X) :- e(X, Y).
            n(Y) :- e(X, Y).
            reach(Y) :- s(X), e(X, Y).
            reach(Z) :- reach(Y), e(Y, Z).
            u(X) :- n(X), not reach(X).
            """
        )
        database = Database()
        database.add_fact("s", (0,))
        database.add_fact("e", (0, 5))
        database.add_fact("e", (2, 7))
        view = MaterializedView(program, database)
        # reach(2) is new this batch; e(2, 7) leaves in the same batch.
        # reach(7) was never derivable in either state.
        view.apply(insertions=[("e", (0, 2))], deletions=[("e", (2, 7))])
        assert view.relation("reach") == {(5,), (2,)}
        assert view.relation("u") == {(0,)}
        rebuilt = MaterializedView(program, view.base_facts())
        assert view.idb_facts() == rebuilt.idb_facts()
        for predicate in view.counting_predicates:
            assert view.support_counts(predicate) == rebuilt.support_counts(
                predicate
            ), predicate

    def test_signed_maintenance_sweep_matches_rebuilds(self):
        """A deterministic mini-port of the development-time fuzz loop:
        random insert/delete batches against the reach/unreach program,
        checking the model against from-scratch evaluation and the support
        counts against a freshly built view after every step."""
        import random as random_module

        program = parse_program("?u(X)\n" + UNREACHABLE)
        rng = random_module.Random(7)
        for _ in range(12):
            database = Database()
            for _ in range(rng.randrange(1, 10)):
                database.add_fact("e", (rng.randrange(8), rng.randrange(8)))
            view = MaterializedView(program, database)
            for _ in range(3):
                insertions = [
                    ("e", (rng.randrange(8), rng.randrange(8)))
                    for _ in range(rng.randrange(4))
                ]
                deletions = [
                    ("e", (rng.randrange(8), rng.randrange(8)))
                    for _ in range(rng.randrange(4))
                ]
                view.apply(insertions=insertions, deletions=deletions)
                scratch = SEMINAIVE.evaluate(program, view.base_facts())
                assert view.idb_facts() == scratch.idb_facts
                rebuilt = MaterializedView(program, view.base_facts())
                for predicate in view.counting_predicates:
                    assert view.support_counts(predicate) == rebuilt.support_counts(
                        predicate
                    )

    def test_aggregate_view_rejected(self):
        program = parse_program("?d(X, C)\nd(X, count<Y>) :- e(X, Y).")
        with pytest.raises(EvaluationError):
            MaterializedView(program, Database())

    def test_recursive_negation_view_rejected(self):
        with pytest.raises(UnstratifiableProgramError):
            MaterializedView(parse_program("?win(X)\n" + WIN), Database())


# ----------------------------------------------------------------------
# Rejection surfaces: same diagnostic everywhere, no state left behind
# ----------------------------------------------------------------------
class TestSurfaces:
    def test_program_validate_is_the_single_source(self):
        with pytest.raises(UnstratifiableProgramError, match="win -> win"):
            parse_program(WIN).validate()

    def test_cli_rejects_unstratifiable_with_diagnostic(self, tmp_path, capsys):
        from repro.cli import main

        program = tmp_path / "win.dl"
        program.write_text("?win(X)\n" + WIN)
        facts = tmp_path / "facts.dl"
        facts.write_text("move(0, 1).\n")
        assert main(["evaluate", str(program), str(facts)]) == 2
        err = capsys.readouterr().err
        assert "not stratifiable" in err
        assert "win -> win" in err

    def test_cli_explain_shows_strata_and_anti_join(self, tmp_path, capsys):
        from repro.cli import main

        program = tmp_path / "unreach.dl"
        program.write_text("?u(X)\n" + UNREACHABLE)
        facts = tmp_path / "facts.dl"
        facts.write_text("e(0, 1).\ne(1, 2).\ne(3, 4).\n")
        assert main(["evaluate", str(program), str(facts), "--explain"]) == 0
        out = capsys.readouterr().out
        assert "negative edge: u -> r" in out
        assert "anti-join" in out

    def test_service_register_rejects_invalid_templates(self):
        service = DatalogService()
        with pytest.raises(UnstratifiableProgramError, match="win -> win"):
            service.register_program("win", "?win(X)\n" + WIN)
        assert "win" not in service.registered_queries()

    def test_service_register_rejects_unsafe_rules(self):
        service = DatalogService()
        with pytest.raises(UnsafeRuleError):
            service.register_program("bad", "?u(X)\nu(X) :- n(X), not r(X, Z).")
        assert "bad" not in service.registered_queries()
