"""Integration tests for Theorem 3.3: constructed monadic programs are finite-query equivalent.

The "if" direction of the theorem promises, for every chain program with a
regular (respectively finite) language and a constant (respectively
``p(X, X)``) goal, a monadic program with the same answers on *every*
database.  These tests verify the constructions produced by the library on
families of randomly generated databases, and additionally check the
language-level claim (the path-witness Claim used in the proof).
"""

import pytest

from repro.core.chain import ChainProgram
from repro.core.counterexamples import cycle_length_program
from repro.core.examples_catalog import program_a, program_b, program_c
from repro.core.grammar_map import to_grammar
from repro.core.propagation import PropagationVerdict, propagate_selection
from repro.core.workloads import cycle_database, labeled_random_graph, parent_forest
from repro.datalog import get_engine

evaluate_seminaive = get_engine("seminaive").evaluate
from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant, Variable
from repro.languages.cfg_analysis import cfg_membership


REGULAR_CONSTANT_GOAL_PROGRAMS = [
    ("program A", program_a(), "par"),
    ("program B", program_b(), "par"),
    ("program C", program_c(), "par"),
    (
        "two-letter right-linear",
        ChainProgram.from_text(
            """
            ?p(c, Y)
            p(X, Y) :- b1(X, Y).
            p(X, Y) :- b1(X, X1), p(X1, Y).
            p(X, Y) :- b2(X, X1), p(X1, Y).
            """
        ),
        "b1",
    ),
    (
        "mutual recursion",
        ChainProgram.from_text(
            """
            ?p(c, Y)
            p(X, Y) :- b1(X, X1), q(X1, Y).
            q(X, Y) :- b2(X, Y).
            q(X, Y) :- b2(X, X1), p(X1, Y).
            """
        ),
        "b1",
    ),
]


def databases_for(chain, count=4):
    alphabet = sorted(chain.edb_predicates())
    constants = [c.value for c in chain.goal_constants()]
    result = []
    for seed in range(count):
        database = labeled_random_graph(8, 24, alphabet, seed=seed)
        for constant in constants:
            # Wire the goal constant into the random graph so the query is non-trivial.
            database.add_edge(alphabet[0], constant, "v0")
            database.add_edge(alphabet[-1], "v1", constant)
        result.append(database)
    if "par" in chain.edb_predicates():
        result.append(parent_forest(60, seed=11, root=constants[0] if constants else "john"))
    return result


class TestConstantGoalConstructions:
    @pytest.mark.parametrize("name,chain,first_label", REGULAR_CONSTANT_GOAL_PROGRAMS, ids=lambda p: p if isinstance(p, str) else "")
    def test_monadic_rewrite_is_equivalent(self, name, chain, first_label):
        result = propagate_selection(chain)
        assert result.verdict == PropagationVerdict.PROPAGATABLE, name
        monadic = result.monadic_program
        assert monadic is not None and monadic.is_monadic()
        for database in databases_for(chain):
            original = evaluate_seminaive(chain.program, database).answers()
            rewritten = evaluate_seminaive(monadic, database).answers()
            assert original == rewritten, (name, database)

    def test_backward_goal_construction(self):
        chain = program_b().with_goal(Atom("anc", (Variable("X"), Constant("target"))))
        result = propagate_selection(chain)
        assert result.verdict == PropagationVerdict.PROPAGATABLE
        database = parent_forest(60, seed=3)
        database.add_edge("par", "p17", "target")
        original = evaluate_seminaive(chain.program, database).answers()
        rewritten = evaluate_seminaive(result.monadic_program, database).answers()
        assert original == rewritten

    def test_boolean_goal_construction(self):
        chain = program_a().with_goal(Atom("anc", (Constant("john"), Constant("p5"))))
        result = propagate_selection(chain)
        database = parent_forest(40, seed=9)
        original = evaluate_seminaive(chain.program, database).boolean_answer()
        rewritten = evaluate_seminaive(result.monadic_program, database).boolean_answer()
        assert original == rewritten


class TestEqualityGoalConstruction:
    @pytest.mark.parametrize("length", [1, 2, 3, 4])
    def test_closed_walk_queries(self, length):
        chain = cycle_length_program(length)
        result = propagate_selection(chain)
        assert result.verdict == PropagationVerdict.PROPAGATABLE
        for database in [
            cycle_database(length),
            cycle_database(length + 1),
            labeled_random_graph(7, 20, ["b"], seed=length),
        ]:
            original = evaluate_seminaive(chain.program, database).answers()
            rewritten = evaluate_seminaive(result.monadic_program, database).answers()
            assert original == rewritten


class TestPathWitnessClaim:
    """The Claim in the proof of Theorem 3.3: p_i(c1, c2) holds iff a path labeled by
    a word generated by the corresponding nonterminal connects c1 to c2."""

    @pytest.mark.parametrize("seed", range(3))
    def test_claim_on_random_graphs(self, seed):
        chain = ChainProgram.from_text(
            """
            ?p(X, Y)
            p(X, Y) :- b1(X, X1), b2(X1, Y).
            p(X, Y) :- b1(X, X1), p(X1, Y1), b2(Y1, Y).
            """
        )
        grammar = to_grammar(chain, start="p")
        database = labeled_random_graph(6, 14, ["b1", "b2"], seed=seed)
        derived = evaluate_seminaive(chain.program, database).relation("p")

        # Enumerate all labeled paths up to a modest length and compare.
        def labeled_paths(max_length):
            adjacency = {}
            for label in ("b1", "b2"):
                for (source, target) in database.relation(label):
                    adjacency.setdefault(source, []).append((label, target))
            paths = {}
            frontier = [(node, node, ()) for node in database.active_domain()]
            for _ in range(max_length):
                next_frontier = []
                for start, end, word in frontier:
                    for label, target in adjacency.get(end, []):
                        new_word = word + (label,)
                        next_frontier.append((start, target, new_word))
                        paths.setdefault((start, target), set()).add(new_word)
                frontier = next_frontier
            return paths

        paths = labeled_paths(6)
        expected = {
            pair
            for pair, words in paths.items()
            if any(cfg_membership(grammar, word) for word in words)
        }
        # Every expected pair must be derived; derived pairs with witnesses longer than
        # the enumeration bound may be missing from `expected`, so check one-sided plus
        # spot-check the derived pairs against the grammar through short witnesses.
        assert expected <= set(derived)
