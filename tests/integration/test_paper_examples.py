"""Integration tests replaying the paper's worked examples end to end."""

import pytest

from repro.core.chain import GoalForm
from repro.core.counterexamples import anbn_program, cycle_length_program, cycle_program
from repro.core.examples_catalog import (
    ancestor_portfolio,
    program_a,
    program_b,
    program_c,
    program_d,
    section7_transformed,
)
from repro.core.grammar_map import to_grammar
from repro.core.inf_model import check_proposition_3_1
from repro.core.magic_chain import magic_transform_chain
from repro.core.propagation import PropagationVerdict, propagate_selection
from repro.core.workloads import chain_database, cycle_database, layered_anbn_graph, parent_forest
from repro.datalog import get_engine

evaluate_seminaive = get_engine("seminaive").evaluate
from repro.datalog.transforms import magic_transform, propagate_goal_constant
from repro.languages.cfg_analysis import enumerate_language
from repro.languages.cfg_properties import is_left_linear, is_right_linear, is_linear
from repro.logic.ef import monadic_colour_uniformity_on_cycle


class TestExample11:
    """Example 1.1: the four ancestor programs and their treatment."""

    def test_grammar_shapes_match_the_paper(self):
        assert is_left_linear(to_grammar(program_a()))
        assert is_right_linear(to_grammar(program_b()))
        assert not is_linear(to_grammar(program_c()))

    def test_all_grammars_define_par_plus(self):
        expected = [("par",) * n for n in range(1, 6)]
        for chain in (program_a(), program_b(), program_c()):
            assert enumerate_language(to_grammar(chain), 5) == expected

    def test_programs_semantically_equivalent_on_databases(self):
        for seed in range(3):
            database = parent_forest(120, seed=seed)
            answers = {
                name: evaluate_seminaive(
                    chain.program if hasattr(chain, "program") else chain, database
                ).answers()
                for name, chain in ancestor_portfolio().items()
            }
            assert answers["A"] == answers["B"] == answers["C"] == answers["D"]

    def test_naive_propagation_turns_a_into_d(self):
        database = parent_forest(100, seed=2)
        rewritten = propagate_goal_constant(program_a().program)
        assert rewritten.is_monadic()
        assert (
            evaluate_seminaive(rewritten, database).answers()
            == evaluate_seminaive(program_d(), database).answers()
        )

    def test_monadic_form_is_cheaper_than_binary_form(self):
        database = chain_database(80, relation="par")
        database.add_edge("par", "john", "n0")
        binary = evaluate_seminaive(program_a().program, database)
        monadic = evaluate_seminaive(program_d(), database)
        assert binary.answers() == monadic.answers()
        # The binary program derives Θ(n²) ancestor facts, the monadic one Θ(n).
        assert binary.statistics.facts_derived > 5 * monadic.statistics.facts_derived

    def test_magic_sets_restrict_a_and_b_to_program_d_behaviour(self):
        # Several independent family trees: only john's tree is relevant to the goal.
        database = parent_forest(150, seed=4, root_count=5)
        gold = evaluate_seminaive(program_d(), database)
        for chain in (program_a(), program_b()):
            transformed = evaluate_seminaive(magic_transform(chain.program), database)
            assert transformed.answers() == gold.answers()
            # The magic-restricted evaluation derives far fewer facts of the binary
            # recursive predicate than the unrestricted binary recursion.
            unrestricted = evaluate_seminaive(chain.program, database)
            binary_facts_magic = transformed.statistics.facts_per_predicate.get("anc__bf", 0)
            binary_facts_plain = unrestricted.statistics.facts_per_predicate.get("anc", 0)
            assert binary_facts_magic < binary_facts_plain


class TestSection7:
    """The a^n b^n example: quotients, magic rules, pruning."""

    def test_verdict_and_proof(self, anbn):
        result = propagate_selection(anbn)
        assert result.verdict == PropagationVerdict.NOT_PROPAGATABLE
        assert result.witness is not None

    def test_quotient_magic_agrees_with_paper_magic(self, anbn):
        database = layered_anbn_graph(7, noise_branches=2)
        plain = evaluate_seminaive(anbn.program, database)
        ours = evaluate_seminaive(magic_transform_chain(anbn), database)
        paper = evaluate_seminaive(section7_transformed(), database)
        assert plain.answers() == ours.answers() == paper.answers()
        # The pruning target is the binary recursive predicate p: the guarded programs
        # derive its facts only inside the magic (b1-reachable) region.
        assert ours.statistics.facts_per_predicate["p"] < plain.statistics.facts_per_predicate["p"]
        assert paper.statistics.facts_per_predicate["p"] < plain.statistics.facts_per_predicate["p"]

    def test_proposition_3_1_on_the_example(self, anbn):
        assert check_proposition_3_1(anbn, 6).agrees


class TestSection6:
    """Lemma 6.1's executable consequences for the CYCLE query."""

    def test_cycle_query_not_propagatable(self):
        result = propagate_selection(cycle_program())
        assert result.verdict == PropagationVerdict.NOT_PROPAGATABLE
        assert result.goal_form == GoalForm.EQUAL

    def test_cycle_query_actually_detects_cycles(self):
        cycle = cycle_database(6)
        path = chain_database(6, relation="b")
        assert evaluate_seminaive(cycle_program().program, cycle).answers()
        assert not evaluate_seminaive(cycle_program().program, path).answers()

    def test_monadic_programs_colour_large_cycles_uniformly(self):
        from repro.datalog import parse_program

        monadic = parse_program(
            """
            ?w(X)
            w(X) :- b(X, Y).
            w(X) :- b(X, Y), w(Y).
            """
        )
        for length in (5, 9, 13):
            assert monadic_colour_uniformity_on_cycle(monadic, length)

    def test_finite_length_query_distinguishes_cycles(self):
        chain = cycle_length_program(3)
        on_three = evaluate_seminaive(chain.program, cycle_database(3)).answers()
        on_four = evaluate_seminaive(chain.program, cycle_database(4)).answers()
        assert on_three and not on_four

    def test_bounded_case_is_propagatable_and_equivalent(self):
        chain = cycle_length_program(3)
        result = propagate_selection(chain)
        assert result.verdict == PropagationVerdict.PROPAGATABLE
        for database in (cycle_database(3), cycle_database(4), cycle_database(6)):
            assert (
                evaluate_seminaive(chain.program, database).answers()
                == evaluate_seminaive(result.monadic_program, database).answers()
            )
