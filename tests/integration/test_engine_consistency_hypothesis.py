"""Property-based integration tests: engine agreement, monotonicity, and the language view.

These are the library-wide invariants:

* the three evaluation engines compute the same answers on the same input;
* Datalog is monotone — adding facts never removes answers;
* for chain programs, the derived relation coincides with "pairs connected by
  a path whose label is in L(H)" (the Claim of Theorem 3.3), checked here via
  membership of sampled path labels;
* transformations (magic sets, constant propagation, monadic rewrites)
  preserve the goal answers on random databases.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.chain import ChainProgram, chain_program_from_productions
from repro.core.propagation import PropagationVerdict, propagate_selection
from repro.datalog import Database, QuerySession, get_engine

evaluate_naive = get_engine("naive").evaluate
evaluate_seminaive = get_engine("seminaive").evaluate
evaluate_topdown = get_engine("topdown").evaluate
from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant, Variable
from repro.datalog.transforms import magic_transform


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
ALPHABET = ("b1", "b2")


@st.composite
def chain_programs(draw):
    """Random small chain programs over IDBs {p, q} and EDBs {b1, b2} with goal p(c, Y)."""
    idbs = ["p", "q"]
    symbols = list(ALPHABET) + idbs
    productions = []
    rule_count = draw(st.integers(min_value=1, max_value=4))
    for _ in range(rule_count):
        head = draw(st.sampled_from(idbs))
        body = tuple(
            draw(st.lists(st.sampled_from(symbols), min_size=1, max_size=3))
        )
        productions.append((head, body))
    # Ensure p has at least one rule grounded purely in EDBs so the language is non-trivial.
    productions.append(("p", tuple(draw(st.lists(st.sampled_from(list(ALPHABET)), min_size=1, max_size=2)))))
    goal = Atom("p", (Constant("c"), Variable("Y")))
    return chain_program_from_productions(tuple(productions), goal)


@st.composite
def labeled_databases(draw):
    """Random labeled graphs over a handful of nodes, always containing the constant c."""
    node_count = draw(st.integers(min_value=2, max_value=6))
    nodes = ["c"] + [f"n{i}" for i in range(node_count)]
    edge_count = draw(st.integers(min_value=1, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    database = Database()
    for _ in range(edge_count):
        database.add_edge(rng.choice(ALPHABET), rng.choice(nodes), rng.choice(nodes))
    return database


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(chain_programs(), labeled_databases())
def test_all_engines_agree(chain: ChainProgram, database: Database):
    naive = evaluate_naive(chain.program, database).answers()
    seminaive = evaluate_seminaive(chain.program, database).answers()
    topdown = evaluate_topdown(chain.program, database).answers()
    assert naive == seminaive == topdown


@settings(max_examples=30, deadline=None)
@given(chain_programs(), labeled_databases())
def test_every_registered_engine_agrees_via_query_session(
    chain: ChainProgram, database: Database
):
    """The registry-wide generalisation of the three-engine agreement property.

    Any engine registered now or by a later PR is held to the same contract:
    identical goal answers on random chain programs and databases.  The goal
    ``p(c, Y)`` always has a constant, so even the ``magic`` engine applies.
    """
    results = QuerySession(chain, database).compare()
    assert set(results) >= {"magic", "naive", "seminaive", "topdown"}
    answer_sets = {name: result.answers() for name, result in results.items()}
    reference = answer_sets["seminaive"]
    assert all(answers == reference for answers in answer_sets.values()), answer_sets


@settings(max_examples=30, deadline=None)
@given(chain_programs(), labeled_databases(), labeled_databases())
def test_datalog_is_monotone(chain: ChainProgram, smaller: Database, extra: Database):
    merged = smaller.copy()
    merged.update(extra)
    before = evaluate_seminaive(chain.program, smaller).answers()
    after = evaluate_seminaive(chain.program, merged).answers()
    assert before <= after


@settings(max_examples=25, deadline=None)
@given(chain_programs(), labeled_databases())
def test_magic_transformation_preserves_answers(chain: ChainProgram, database: Database):
    original = evaluate_seminaive(chain.program, database).answers()
    transformed = magic_transform(chain.program)
    rewritten = evaluate_seminaive(transformed, database).answers()
    assert original == rewritten


@settings(max_examples=25, deadline=None)
@given(chain_programs(), labeled_databases())
def test_propagation_constructions_are_equivalent_when_produced(
    chain: ChainProgram, database: Database
):
    result = propagate_selection(chain)
    if result.verdict != PropagationVerdict.PROPAGATABLE or result.monadic_program is None:
        return
    if not result.construction_exact:
        return  # empirical unary certificates are exercised by targeted tests
    original = evaluate_seminaive(chain.program, database).answers()
    rewritten = evaluate_seminaive(result.monadic_program, database).answers()
    assert original == rewritten


@settings(max_examples=25, deadline=None)
@given(chain_programs())
def test_propagation_verdict_is_stable_and_sound(chain: ChainProgram):
    first = propagate_selection(chain)
    second = propagate_selection(chain)
    assert first.verdict == second.verdict
    if first.verdict == PropagationVerdict.PROPAGATABLE:
        assert first.regularity is not None and first.regularity.regular
    elif first.verdict == PropagationVerdict.NOT_PROPAGATABLE:
        assert first.witness is not None or first.goal_form.name == "EQUAL"


@settings(max_examples=25, deadline=None)
@given(chain_programs(), labeled_databases())
def test_prepared_parameterized_answers_equal_adhoc_constant_answers(
    chain: ChainProgram, database: Database
):
    """Satellite property: prepare-then-bind is indistinguishable from ad hoc.

    The same chain program is queried two ways: with the constant ``c``
    baked into the goal (the classical path, per engine), and as a prepared
    template ``?p($x, Y)`` bound to ``c`` at execution time.  Answers must
    agree for every registered base engine and for the magic pipeline —
    the rewrites genuinely depend only on the binding pattern.
    """
    from repro.datalog.terms import Parameter
    from repro.datalog.transforms import MagicSets

    program = chain.program
    goal = program.goal
    constant = goal.terms[0]
    template = program.with_goal(Atom(goal.predicate, (Parameter("x"), goal.terms[1])))

    for engine in ("naive", "seminaive", "topdown"):
        adhoc = QuerySession(program, database).answers(engine)
        prepared = QuerySession(template, database).prepare(engine=engine)
        assert prepared.answers(x=constant.value) == adhoc, engine

    magic_adhoc = (
        QuerySession(program, database).with_transforms(MagicSets()).answers()
    )
    magic_prepared = (
        QuerySession(template, database).with_transforms(MagicSets()).prepare()
    )
    assert magic_prepared.answers(x=constant.value) == magic_adhoc

    # batched bindings over extra domain constants agree with solo runs
    pool = [constant.value, "n0", "n1"]
    batch = magic_prepared.execute_many([{"x": value} for value in pool])
    assert batch == [magic_prepared.answers(x=value) for value in pool]
