"""Shared fixtures: the paper's programs and small databases."""

import pytest

from repro.core.examples_catalog import (
    program_a,
    program_b,
    program_c,
    program_d,
    section7_program,
)
from repro.datalog import Database, parse_program


@pytest.fixture
def ancestor_a():
    """Example 1.1 Program A (left-linear ancestor recursion, goal ?anc(john, Y))."""
    return program_a()


@pytest.fixture
def ancestor_b():
    return program_b()


@pytest.fixture
def ancestor_c():
    return program_c()


@pytest.fixture
def ancestor_d():
    return program_d()


@pytest.fixture
def anbn():
    """The Section 7 program with L(H) = { b1^n b2^n }."""
    return section7_program()


@pytest.fixture
def family_database():
    """A small family tree: john -> mary -> sue -> tim, plus an unrelated branch."""
    database = Database()
    for parent, child in [
        ("john", "mary"),
        ("mary", "sue"),
        ("sue", "tim"),
        ("ann", "bob"),
        ("bob", "carl"),
    ]:
        database.add_edge("par", parent, child)
    return database


@pytest.fixture
def transitive_closure_program():
    """Plain transitive closure of b with a free goal."""
    return parse_program(
        """
        ?p(X, Y)
        p(X, Y) :- b(X, Y).
        p(X, Y) :- p(X, Z), b(Z, Y).
        """
    )
