"""Tests for the command-line interface."""

import pytest

from repro.cli import main

PROGRAM_A = """
?anc(john, Y)
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), par(Z, Y).
"""

ANBN = """
?p(c, Y)
p(X, Y) :- b1(X, X1), b2(X1, Y).
p(X, Y) :- b1(X, X1), p(X1, Y1), b2(Y1, Y).
"""

FACTS = """
par(john, mary).
par(mary, sue).
par(ann, bob).
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "program.dl"
    path.write_text(PROGRAM_A)
    return str(path)


@pytest.fixture
def anbn_file(tmp_path):
    path = tmp_path / "anbn.dl"
    path.write_text(ANBN)
    return str(path)


@pytest.fixture
def facts_file(tmp_path):
    path = tmp_path / "facts.dl"
    path.write_text(FACTS)
    return str(path)


class TestAnalyze:
    def test_propagatable_program(self, program_file, capsys):
        assert main(["analyze", program_file, "--show-program"]) == 0
        output = capsys.readouterr().out
        assert "propagatable" in output
        assert "left-linear" in output
        assert "answer" in output  # the printed monadic program

    def test_not_propagatable_program(self, anbn_file, capsys):
        assert main(["analyze", anbn_file]) == 0
        output = capsys.readouterr().out
        assert "not propagatable" in output
        assert "Pumping" in output or "pumping" in output

    def test_missing_file(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "missing.dl")]) == 2

    def test_non_chain_program_reports_error(self, tmp_path, capsys):
        path = tmp_path / "bad.dl"
        path.write_text("?p(c, Y)\np(X, Y) :- b(Y, X).")
        assert main(["analyze", str(path)]) == 2
        assert "error" in capsys.readouterr().err


class TestGrammarAndRewrite:
    def test_grammar_report(self, program_file, capsys):
        assert main(["grammar", program_file, "--max-length", "3"]) == 0
        output = capsys.readouterr().out
        assert "anc -> par | anc par" in output
        assert "par par par" in output

    def test_rewrite_success(self, program_file, capsys):
        assert main(["rewrite", program_file]) == 0
        assert "answer" in capsys.readouterr().out

    def test_rewrite_failure_for_nonregular(self, anbn_file, capsys):
        assert main(["rewrite", anbn_file]) == 1
        assert "no monadic program" in capsys.readouterr().out

    def test_magic_output(self, anbn_file, capsys):
        assert main(["magic", anbn_file]) == 0
        output = capsys.readouterr().out
        assert "magic(X)" in output


class TestEvaluateAndBounded:
    def test_evaluate(self, program_file, facts_file, capsys):
        assert main(["evaluate", program_file, facts_file]) == 0
        output = capsys.readouterr().out
        assert "(mary)" in output
        assert "(sue)" in output
        assert "2 answers" in output

    @pytest.mark.parametrize("engine", ["naive", "seminaive", "topdown", "magic"])
    def test_evaluate_with_every_registered_engine(self, program_file, facts_file, capsys, engine):
        assert main(["evaluate", program_file, facts_file, "--engine", engine]) == 0
        output = capsys.readouterr().out
        assert "(mary)" in output
        assert "(sue)" in output
        assert f"engine={engine}" in output

    def test_evaluate_rejects_unknown_engine(self, program_file, facts_file, capsys):
        assert main(["evaluate", program_file, facts_file, "--engine", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown engine 'nope'" in err
        assert "seminaive" in err  # the error lists what is registered

    def test_evaluate_max_iterations_reports_error(self, program_file, facts_file, capsys):
        assert main(["evaluate", program_file, facts_file, "--max-iterations", "1"]) == 2
        assert "error" in capsys.readouterr().err

    def test_evaluate_explain_prints_join_plan(self, program_file, facts_file, capsys):
        assert main(["evaluate", program_file, facts_file, "--explain"]) == 0
        output = capsys.readouterr().out
        assert "stratum 1: anc [recursive]" in output
        assert "order:" in output  # the chosen join order per rule
        assert "delta on anc(X, Z)" in output
        assert "probe par" in output
        assert "(mary)" in output  # answers still follow the plan dump

    def test_evaluate_explain_shows_the_rewritten_plan_for_magic(
        self, program_file, facts_file, capsys
    ):
        # The magic engine rewrites internally; EXPLAIN must describe the
        # plan for the program it actually runs, not the original rules.
        assert main(["evaluate", program_file, facts_file, "--engine", "magic", "--explain"]) == 0
        output = capsys.readouterr().out
        assert "rewrites the program before evaluating" in output
        assert "magic_anc" in output  # strata/join orders over the rewritten rules
        assert "(mary)" in output

    def test_evaluate_explain_notes_non_planning_engines(self, program_file, facts_file, capsys):
        assert main(
            ["evaluate", program_file, facts_file, "--engine", "topdown", "--explain"]
        ) == 0
        output = capsys.readouterr().out
        assert "does not use the bottom-up join planner" in output
        assert "stratum" not in output  # no plan the engine will not execute
        assert "(mary)" in output

    def test_engines_listing(self, capsys):
        assert main(["engines"]) == 0
        output = capsys.readouterr().out
        for name in ("naive", "seminaive", "topdown", "magic"):
            assert name in output
        assert "semi-naive" in output  # descriptions are printed too

    def test_bounded_report_for_unbounded_program(self, program_file, capsys):
        assert main(["bounded", program_file]) == 0
        assert "False" in capsys.readouterr().out

    def test_bounded_report_for_bounded_program(self, tmp_path, capsys):
        path = tmp_path / "gp.dl"
        path.write_text("?gp(john, Y)\ngp(X, Y) :- par(X, X1), par(X1, Y).")
        assert main(["bounded", str(path)]) == 0
        output = capsys.readouterr().out
        assert "True" in output
        assert "par par" in output


class TestServeAndLoadBench:
    def test_load_bench_drives_a_live_server(self, tmp_path, capsys):
        import asyncio
        import threading

        from repro.datalog.server import DatalogHTTPServer, DurableDatalogService

        durable = DurableDatalogService(
            tmp_path / "data", fsync="never", snapshot_every=10_000
        )
        server = DatalogHTTPServer(durable, port=0)
        loop = asyncio.new_event_loop()
        started = threading.Event()
        stop_holder = {}

        async def serve():
            stop_holder["stop"] = asyncio.Event()
            await server.start()
            started.set()
            await server.serve_until(stop_holder["stop"])

        thread = threading.Thread(
            target=lambda: (asyncio.set_event_loop(loop), loop.run_until_complete(serve())),
            daemon=True,
        )
        thread.start()
        assert started.wait(10)
        try:
            assert main(
                [
                    "load-bench",
                    "--port", str(server.port),
                    "--processes", "2",
                    "--requests", "15",
                    "--json",
                ]
            ) == 0
            import json

            report = json.loads(capsys.readouterr().out)
            assert report["processes"] == 2
            assert report["errors"] == 0
            assert report["read_p95"] >= report["read_p50"] > 0
        finally:
            loop.call_soon_threadsafe(stop_holder["stop"].set)
            thread.join(timeout=30)
            loop.close()

    def test_load_bench_requires_port(self, capsys):
        with pytest.raises(SystemExit):
            main(["load-bench"])

    def test_serve_validates_fsync_choice(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["serve", str(tmp_path), "--fsync", "sometimes"])
