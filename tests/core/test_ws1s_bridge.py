"""Unit tests for the executable Lemma 5.1 construction (monadic programs on strings)."""

import pytest

from repro.core.ws1s_bridge import (
    StringProgramEncoding,
    accepted_string_language,
    program_semantics_formula,
    string_database,
)
from repro.datalog import get_engine, parse_program

evaluate_seminaive = get_engine("seminaive").evaluate
from repro.errors import ValidationError
from repro.languages.regular.properties import is_finite_language


def words_over(alphabet, max_length):
    import itertools

    for length in range(max_length + 1):
        yield from itertools.product(alphabet, repeat=length)


def cross_check(program, letters, max_length=4):
    """The WS1S-extracted language must agree with direct bottom-up evaluation."""
    encoding = StringProgramEncoding(program, letters)
    dfa = accepted_string_language(encoding)
    for word in words_over(letters, max_length):
        database = string_database(word, letters)
        derived = bool(evaluate_seminaive(program, database).answers())
        assert dfa.accepts(word) == derived, word
    return dfa


class TestAcceptedLanguages:
    def test_first_letter_program(self):
        program = parse_program(
            """
            ?w(0)
            w(X) :- a(X).
            """
        )
        dfa = cross_check(program, ("a", "b"))
        assert dfa.accepts(("a", "b", "b"))
        assert not dfa.accepts(("b", "a"))

    def test_a_star_b_program(self):
        program = parse_program(
            """
            ?w(0)
            w(X) :- b(X).
            w(X) :- a(X), next(X, Y), w(Y).
            """
        )
        dfa = cross_check(program, ("a", "b"))
        assert dfa.accepts(("a", "a", "b"))
        assert not dfa.accepts(("a", "a"))

    def test_two_predicate_program(self):
        # even(X): an even-indexed position holds a; the goal asks for a at position 0
        # reachable through pairs of next steps.
        program = parse_program(
            """
            ?w(0)
            w(X) :- a(X).
            w(X) :- a(X), next(X, Y), next(Y, Z), w(Z).
            """
        )
        cross_check(program, ("a", "b"), max_length=4)

    def test_language_is_regular_automaton_is_finite_object(self):
        program = parse_program(
            """
            ?w(0)
            w(X) :- b(X).
            w(X) :- a(X), next(X, Y), w(Y).
            """
        )
        dfa = accepted_string_language(StringProgramEncoding(program, ("a", "b")))
        # Regularity is witnessed by the explicit finite automaton; the language is infinite.
        assert len(dfa.states) < 10
        assert not is_finite_language(dfa)


class TestEncodingValidation:
    def test_goal_must_be_monadic_with_constant(self):
        program = parse_program("?w(X)\nw(X) :- a(X).")
        with pytest.raises(ValidationError):
            program_semantics_formula(StringProgramEncoding(program, ("a",)))

    def test_binary_non_next_predicates_rejected(self):
        program = parse_program("?w(0)\nw(X) :- edge(X, Y).")
        with pytest.raises(ValidationError):
            program_semantics_formula(StringProgramEncoding(program, ("a",)))

    def test_string_database_rejects_unknown_letters(self):
        with pytest.raises(ValidationError):
            string_database(("z",), ("a", "b"))

    def test_string_database_shape(self):
        database = string_database(("a", "b", "a"), ("a", "b"))
        assert database.relation("a") == {(0,), (2,)}
        assert database.relation("b") == {(1,)}
        assert database.relation("next") == {(0, 1), (1, 2)}
