"""Unit tests for the Theorem 3.3 decision procedure."""

import pytest

from repro.core.chain import ChainProgram, GoalForm
from repro.core.counterexamples import anbn_program, cycle_length_program, cycle_program
from repro.core.examples_catalog import program_a, program_b, program_c, same_generation_program
from repro.core.propagation import PropagationVerdict, SelectionPropagator, propagate_selection
from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant, Variable
from repro.errors import ValidationError


class TestConstantGoals:
    """Theorem 3.3 part (1)."""

    def test_left_linear_is_propagatable(self):
        result = propagate_selection(program_a())
        assert result.verdict == PropagationVerdict.PROPAGATABLE
        assert result.monadic_program is not None
        assert result.monadic_program.is_monadic()
        assert result.construction_exact

    def test_right_linear_is_propagatable(self):
        result = propagate_selection(program_b())
        assert result.verdict == PropagationVerdict.PROPAGATABLE
        assert result.regularity.reason == "right-linear grammar"

    def test_nonlinear_unary_is_propagatable(self):
        result = propagate_selection(program_c())
        assert result.verdict == PropagationVerdict.PROPAGATABLE
        assert result.monadic_program is not None

    def test_anbn_is_not_propagatable(self):
        result = propagate_selection(anbn_program())
        assert result.verdict == PropagationVerdict.NOT_PROPAGATABLE
        assert result.witness is not None
        assert "pumping" in result.witness.proof.lower()

    def test_same_generation_is_unknown(self):
        # up^n down^n over two letters is non-regular, but it does not match the
        # registered witness families exactly as written (the matcher is shape-based),
        # so the honest answer from the decision procedure is a definite NOT_PROPAGATABLE
        # only if a witness matches, otherwise UNKNOWN.
        result = propagate_selection(same_generation_program())
        assert result.verdict in (
            PropagationVerdict.NOT_PROPAGATABLE,
            PropagationVerdict.UNKNOWN,
        )
        assert result.propagatable in (False, None)

    def test_goal_with_both_constants(self):
        chain = program_a().with_goal(Atom("anc", (Constant("john"), Constant("mary"))))
        result = propagate_selection(chain)
        assert result.verdict == PropagationVerdict.PROPAGATABLE
        assert result.goal_form == GoalForm.CONSTANT_BOTH

    def test_goal_constant_second(self):
        chain = program_b().with_goal(Atom("anc", (Variable("X"), Constant("tim"))))
        result = propagate_selection(chain)
        assert result.verdict == PropagationVerdict.PROPAGATABLE
        assert result.monadic_program is not None


class TestEqualityGoal:
    """Theorem 3.3 part (2): decidable."""

    def test_infinite_language_not_propagatable(self):
        result = propagate_selection(cycle_program())
        assert result.verdict == PropagationVerdict.NOT_PROPAGATABLE
        assert result.propagatable is False

    def test_finite_language_propagatable(self):
        result = propagate_selection(cycle_length_program(4))
        assert result.verdict == PropagationVerdict.PROPAGATABLE
        assert result.monadic_program is not None
        assert result.monadic_program.is_monadic()

    def test_equality_goal_never_unknown(self):
        # Part (2) is decidable, so UNKNOWN must never be returned for p(X, X).
        for chain in (cycle_program(), cycle_length_program(2), cycle_length_program(5)):
            result = propagate_selection(chain)
            assert result.verdict in (
                PropagationVerdict.PROPAGATABLE,
                PropagationVerdict.NOT_PROPAGATABLE,
            )


class TestOtherForms:
    def test_free_goal_reports_no_selection(self, transitive_closure_program):
        chain = ChainProgram(transitive_closure_program)
        result = propagate_selection(chain)
        assert result.verdict == PropagationVerdict.NO_SELECTION
        assert result.propagatable is None

    def test_missing_goal_rejected(self, ancestor_a):
        goalless = ChainProgram(ancestor_a.program.with_goal(None))
        with pytest.raises(ValidationError):
            SelectionPropagator().analyze(goalless)

    def test_result_carries_grammar(self):
        result = propagate_selection(program_a())
        assert result.grammar.start == "anc"

    def test_verdicts_are_sound_never_both(self):
        for chain in (program_a(), program_b(), program_c(), anbn_program(), cycle_program()):
            result = propagate_selection(chain)
            if result.verdict == PropagationVerdict.PROPAGATABLE:
                assert result.regularity is not None and result.regularity.regular
            if result.verdict == PropagationVerdict.NOT_PROPAGATABLE:
                assert result.monadic_program is None
