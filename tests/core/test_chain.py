"""Unit tests for chain-program validation and goal classification."""

import pytest

from repro.core.chain import (
    ChainProgram,
    GoalForm,
    chain_program_from_productions,
    chain_rule,
    classify_goal,
    is_chain_rule,
)
from repro.datalog.atoms import Atom
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.terms import Constant, Variable
from repro.errors import NotAChainProgramError, ValidationError


class TestChainRules:
    def test_single_atom_chain_rule(self):
        assert is_chain_rule(parse_rule("anc(X, Y) :- par(X, Y)."))

    def test_long_chain_rule(self):
        assert is_chain_rule(parse_rule("p(X, Y) :- a(X, X1), b(X1, X2), c(X2, Y)."))

    def test_broken_chain_rejected(self):
        assert not is_chain_rule(parse_rule("p(X, Y) :- a(X, X1), b(X2, Y)."))

    def test_repeated_chain_variable_rejected(self):
        assert not is_chain_rule(parse_rule("p(X, Y) :- a(X, X), a(X, Y)."))

    def test_empty_body_rejected(self):
        assert not is_chain_rule(parse_rule("p(X, Y)."))

    def test_constants_rejected(self):
        assert not is_chain_rule(parse_rule("p(X, Y) :- a(X, c), a(c, Y)."))

    def test_non_binary_rejected(self):
        assert not is_chain_rule(parse_rule("p(X, Y) :- a(X, Y, Z)."))

    def test_head_equal_variables_rejected(self):
        assert not is_chain_rule(parse_rule("p(X, X) :- a(X, X)."))

    def test_chain_rule_builder(self):
        rule = chain_rule("p", ("a", "b"))
        assert is_chain_rule(rule)
        assert rule.body_predicates() == ("a", "b")


class TestGoalForms:
    @pytest.mark.parametrize(
        "goal,expected",
        [
            (Atom("p", (Variable("X"), Variable("Y"))), GoalForm.FREE),
            (Atom("p", (Variable("X"), Variable("X"))), GoalForm.EQUAL),
            (Atom("p", (Constant("c"), Variable("Y"))), GoalForm.CONSTANT_FIRST),
            (Atom("p", (Variable("X"), Constant("c"))), GoalForm.CONSTANT_SECOND),
            (Atom("p", (Constant("c"), Constant("d"))), GoalForm.CONSTANT_BOTH),
            (Atom("p", (Constant("c"), Constant("c"))), GoalForm.CONSTANT_SAME),
        ],
    )
    def test_classification(self, goal, expected):
        assert classify_goal(goal) == expected

    def test_non_binary_goal_rejected(self):
        with pytest.raises(ValidationError):
            classify_goal(Atom("p", (Variable("X"),)))

    def test_has_constant(self):
        assert GoalForm.CONSTANT_FIRST.has_constant
        assert not GoalForm.FREE.has_constant
        assert not GoalForm.EQUAL.has_constant


class TestChainProgram:
    def test_example_programs_validate(self, ancestor_a, ancestor_b, ancestor_c, anbn):
        for chain in (ancestor_a, ancestor_b, ancestor_c, anbn):
            assert isinstance(chain, ChainProgram)

    def test_goal_metadata(self, ancestor_a):
        assert ancestor_a.goal_form() == GoalForm.CONSTANT_FIRST
        assert ancestor_a.goal_predicate() == "anc"
        assert ancestor_a.goal_constants() == (Constant("john"),)
        assert ancestor_a.idb_predicates() == {"anc"}
        assert ancestor_a.edb_predicates() == {"par"}

    def test_non_chain_rule_rejected(self):
        program = parse_program(
            """
            ?p(c, Y)
            p(X, Y) :- b(Y, X).
            """
        )
        with pytest.raises(NotAChainProgramError):
            ChainProgram(program)

    def test_monadic_program_rejected(self):
        with pytest.raises(NotAChainProgramError):
            ChainProgram(parse_program("?w(Y)\nw(Y) :- par(c, Y)."))

    def test_with_goal(self, ancestor_a):
        free = ancestor_a.with_goal(Atom("anc", (Variable("X"), Variable("Y"))))
        assert free.goal_form() == GoalForm.FREE

    def test_from_productions(self):
        chain = chain_program_from_productions(
            (("p", ("a", "p", "b")), ("p", ("a", "b"))),
            Atom("p", (Constant("c"), Variable("Y"))),
        )
        assert len(chain.rules) == 2
        assert chain.goal_form() == GoalForm.CONSTANT_FIRST

    def test_from_text(self):
        chain = ChainProgram.from_text("?p(c, Y)\np(X, Y) :- b(X, Y).")
        assert chain.goal_predicate() == "p"
