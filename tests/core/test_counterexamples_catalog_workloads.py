"""Unit tests for the counterexample registry, the program catalogue, and workload generators."""

from repro.core.counterexamples import (
    BALANCED_PAIR,
    anbn_program,
    cycle_length_program,
    cycle_program,
    find_nonregularity_witness,
    nonregular_selection_instance,
    unary_infinite_program,
)
from repro.core.examples_catalog import (
    ancestor_portfolio,
    program_a,
    program_b,
    program_c,
    program_d,
    same_generation_program,
    section6_cycle_program,
    section7_program,
    section7_transformed,
)
from repro.core.grammar_map import to_grammar
from repro.core.workloads import (
    chain_database,
    cycle_database,
    database_suite,
    labeled_random_graph,
    layered_anbn_graph,
    parent_forest,
    same_generation_database,
)
from repro.datalog import get_engine

evaluate_seminaive = get_engine("seminaive").evaluate
from repro.languages.cfg import parse_grammar


class TestWitnessRegistry:
    def test_anbn_matches_balanced_pair(self):
        grammar = to_grammar(anbn_program())
        witness = find_nonregularity_witness(grammar)
        assert witness is BALANCED_PAIR

    def test_renamed_symbols_still_match(self):
        grammar = parse_grammar("q -> up q down | up down")
        assert find_nonregularity_witness(grammar) is not None

    def test_regular_grammars_do_not_match(self):
        for grammar_text in ("p -> a | p a", "p -> a | a p", "p -> a b"):
            assert find_nonregularity_witness(parse_grammar(grammar_text)) is None

    def test_nonregular_selection_instance(self):
        program, witness = nonregular_selection_instance()
        assert witness.matches(to_grammar(program))
        assert witness.proof

    def test_cycle_and_unary_programs_validate(self):
        assert cycle_program().goal_form().name == "EQUAL"
        assert unary_infinite_program().goal_form().name == "CONSTANT_FIRST"
        assert len(cycle_length_program(4).rules) == 1


class TestCatalogue:
    def test_portfolio_has_four_programs(self):
        portfolio = ancestor_portfolio()
        assert set(portfolio) == {"A", "B", "C", "D"}

    def test_all_programs_answer_the_same_query(self, family_database):
        expected = {("mary",), ("sue",), ("tim",)}
        for chain in (program_a(), program_b(), program_c()):
            assert evaluate_seminaive(chain.program, family_database).answers() == expected
        assert evaluate_seminaive(program_d(), family_database).answers() == expected

    def test_program_d_is_monadic_not_chain(self):
        assert program_d().is_monadic()

    def test_section7_programs(self):
        assert to_grammar(section7_program()).terminals == {"b1", "b2"}
        transformed = section7_transformed()
        assert "magic" in transformed.idb_predicates()

    def test_section6_and_same_generation(self):
        assert section6_cycle_program().goal_form().name == "EQUAL"
        assert same_generation_program().edb_predicates() == {"up", "down"}


class TestWorkloads:
    def test_parent_forest_shape(self):
        database = parent_forest(50, seed=1)
        assert database.fact_count() == 49
        assert "john" in database.active_domain()

    def test_parent_forest_deterministic(self):
        assert parent_forest(30, seed=4) == parent_forest(30, seed=4)

    def test_chain_and_cycle(self):
        assert chain_database(5).fact_count() == 5
        cycle = cycle_database(5)
        assert cycle.fact_count() == 5
        sources = {edge[0] for edge in cycle.relation("b")}
        assert len(sources) == 5

    def test_labeled_random_graph(self):
        database = labeled_random_graph(10, 30, ["b1", "b2"], seed=0)
        assert database.fact_count() <= 30
        assert set(database.predicates()) <= {"b1", "b2"}

    def test_layered_anbn_graph_has_witnesses(self):
        database = layered_anbn_graph(5)
        answers = evaluate_seminaive(section7_program().program, database).answers()
        assert len(answers) == 5

    def test_layered_noise_is_unreachable(self):
        noisy = layered_anbn_graph(5, noise_branches=2)
        answers = evaluate_seminaive(section7_program().program, noisy).answers()
        assert len(answers) == 5  # noise adds no answers from the origin

    def test_same_generation_database(self):
        database = same_generation_database(3, branching=2)
        sg = same_generation_program(constant="g1")  # g1 is a depth-1 node of the tree
        answers = evaluate_seminaive(sg.program, database).answers()
        assert answers  # siblings exist at depth >= 1

    def test_database_suite(self):
        suite = database_suite([3, 5], chain_database)
        assert [d.fact_count() for d in suite] == [3, 5]
