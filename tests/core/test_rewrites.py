"""Unit tests for the Theorem 3.3 "if"-direction constructions."""

import pytest

from repro.core.rewrites import (
    dfa_to_monadic_backward,
    dfa_to_monadic_forward,
    finite_language_to_monadic,
    monadic_program_from_dfa,
)
from repro.datalog import Database, get_engine

evaluate_seminaive = get_engine("seminaive").evaluate
from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant, Variable
from repro.errors import ValidationError
from repro.languages.regular.regex import parse_regex


def par_plus_dfa():
    return parse_regex("par par*").to_nfa(("par",)).to_dfa()


@pytest.fixture
def two_chain_db():
    """Two disjoint par-chains, one starting at john and one at ann."""
    database = Database()
    previous = "john"
    for index in range(4):
        database.add_edge("par", previous, f"j{index}")
        previous = f"j{index}"
    previous = "ann"
    for index in range(3):
        database.add_edge("par", previous, f"a{index}")
        previous = f"a{index}"
    return database


class TestForwardConstruction:
    def test_program_is_monadic(self):
        program = dfa_to_monadic_forward(par_plus_dfa(), Constant("john"))
        assert program.is_monadic()
        program.validate()

    def test_reachability_semantics(self, two_chain_db):
        program = dfa_to_monadic_forward(par_plus_dfa(), Constant("john"))
        answers = evaluate_seminaive(program, two_chain_db).answers()
        assert answers == {("j0",), ("j1",), ("j2",), ("j3",)}

    def test_epsilon_accepting_dfa_includes_the_constant(self, two_chain_db):
        dfa = parse_regex("par*").to_nfa(("par",)).to_dfa()
        program = dfa_to_monadic_forward(dfa, Constant("john"))
        answers = evaluate_seminaive(program, two_chain_db).answers()
        assert ("john",) in answers


class TestBackwardConstruction:
    def test_program_is_monadic(self):
        program = dfa_to_monadic_backward(par_plus_dfa(), Constant("tim"))
        assert program.is_monadic()

    def test_co_reachability_semantics(self, two_chain_db):
        program = dfa_to_monadic_backward(par_plus_dfa(), Constant("j3"))
        answers = evaluate_seminaive(program, two_chain_db).answers()
        assert answers == {("john",), ("j0",), ("j1",), ("j2",)}


class TestFiniteLanguageConstruction:
    WORDS = [("par",), ("par", "par")]

    def test_constant_first(self, two_chain_db):
        goal = Atom("p", (Constant("john"), Variable("Y")))
        program = finite_language_to_monadic(self.WORDS, goal)
        assert program.is_monadic()
        answers = evaluate_seminaive(program, two_chain_db).answers()
        assert answers == {("j0",), ("j1",)}

    def test_constant_second(self, two_chain_db):
        goal = Atom("p", (Variable("X"), Constant("j1")))
        program = finite_language_to_monadic(self.WORDS, goal)
        answers = evaluate_seminaive(program, two_chain_db).answers()
        assert answers == {("john",), ("j0",)}

    def test_equality_goal_on_cycle(self):
        goal = Atom("p", (Variable("X"), Variable("X")))
        program = finite_language_to_monadic([("b", "b", "b")], goal)
        database = Database({"b": [(0, 1), (1, 2), (2, 0), (5, 6)]})
        answers = evaluate_seminaive(program, database).answers()
        assert answers == {(0,), (1,), (2,)}

    def test_both_constants_boolean(self, two_chain_db):
        goal = Atom("p", (Constant("john"), Constant("j1")))
        program = finite_language_to_monadic(self.WORDS, goal)
        assert evaluate_seminaive(program, two_chain_db).boolean_answer()
        goal_false = Atom("p", (Constant("john"), Constant("a0")))
        program_false = finite_language_to_monadic(self.WORDS, goal_false)
        assert not evaluate_seminaive(program_false, two_chain_db).boolean_answer()

    def test_free_goal_rejected(self):
        with pytest.raises(ValidationError):
            finite_language_to_monadic(self.WORDS, Atom("p", (Variable("X"), Variable("Y"))))

    def test_empty_word_rejected(self):
        with pytest.raises(ValidationError):
            finite_language_to_monadic([()], Atom("p", (Constant("c"), Variable("Y"))))


class TestDispatcher:
    def test_dispatch_by_goal_form(self, ancestor_a):
        program = monadic_program_from_dfa(ancestor_a, par_plus_dfa())
        assert program.is_monadic()

    def test_dispatch_rejects_equality_goal(self, ancestor_a):
        equality = ancestor_a.with_goal(Atom("anc", (Variable("X"), Variable("X"))))
        with pytest.raises(ValidationError):
            monadic_program_from_dfa(equality, par_plus_dfa())
