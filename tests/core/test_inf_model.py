"""Unit tests for the inf-model IG and Proposition 3.1."""

from repro.core.counterexamples import anbn_program
from repro.core.examples_catalog import program_a, program_b, program_c
from repro.core.inf_model import (
    check_proposition_3_1,
    chain_program_on_truncation,
    ig_truncation,
    node_name,
    node_word,
)


class TestTruncation:
    def test_node_naming_round_trip(self):
        assert node_word(node_name(("b1", "b2"))) == ("b1", "b2")
        assert node_word(node_name(())) == ()

    def test_tree_shape(self):
        truncation = ig_truncation(["b1", "b2"], 3)
        # A binary tree of depth 3 has 2 + 4 + 8 = 14 edges and 15 nodes.
        assert truncation.database.fact_count() == 14
        assert len(truncation.nodes()) == 15

    def test_every_non_origin_node_has_one_incoming_edge(self):
        truncation = ig_truncation(["a", "b"], 3)
        incoming = {}
        for label in ("a", "b"):
            for (source, target) in truncation.database.relation(label):
                incoming[target] = incoming.get(target, 0) + 1
        assert all(count == 1 for count in incoming.values())
        assert truncation.origin not in incoming

    def test_unary_truncation_is_a_path(self):
        truncation = ig_truncation(["b"], 5)
        assert truncation.database.fact_count() == 5


class TestProgramOutput:
    def test_output_strings_are_language_words(self, anbn):
        words = chain_program_on_truncation(anbn, 6)
        assert ("b1", "b2") in words
        assert ("b1", "b1", "b2", "b2") in words
        assert all(len(word) % 2 == 0 for word in words)

    def test_proposition_3_1_for_ancestor_programs(self):
        for chain in (program_a(), program_b(), program_c()):
            assert check_proposition_3_1(chain, 5).agrees

    def test_proposition_3_1_for_anbn(self):
        assert check_proposition_3_1(anbn_program(), 6).agrees

    def test_output_respects_depth(self, anbn):
        shallow = chain_program_on_truncation(anbn, 2)
        assert shallow == {("b1", "b2")}
