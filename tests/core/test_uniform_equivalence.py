"""Unit tests for Proposition 8.1 (uniform programs, containment) and equivalence checking."""

from repro.core.chain import ChainProgram
from repro.core.counterexamples import anbn_program
from repro.core.equivalence import (
    EquivalenceVerdict,
    chain_language_equivalence,
    programs_agree_on,
    random_equivalence_test,
)
from repro.core.examples_catalog import program_a, program_b, program_c
from repro.core.uniform import (
    ContainmentVerdict,
    bounded_equivalence_check,
    has_single_idb,
    is_uniform,
    language_containment,
    language_equivalence,
    uniformize,
)
from repro.core.workloads import parent_forest


class TestUniformity:
    def test_uniformize_adds_base_rules(self, ancestor_a):
        uniform = uniformize(ancestor_a)
        assert is_uniform(uniform)
        assert "base_anc" in uniform.edb_predicates()
        assert len(uniform.rules) == len(ancestor_a.rules) + 1

    def test_plain_program_is_not_uniform(self, ancestor_a):
        assert not is_uniform(ancestor_a)

    def test_uniformize_preserves_chain_shape(self, anbn):
        uniform = uniformize(anbn)
        assert is_uniform(uniform)
        assert isinstance(uniform, ChainProgram)

    def test_single_idb(self, ancestor_a, anbn):
        assert has_single_idb(ancestor_a)
        assert has_single_idb(anbn)


class TestContainment:
    def test_ancestor_programs_mutually_contained(self):
        forward = language_containment(program_a(), program_b())
        backward = language_containment(program_b(), program_a())
        assert forward.verdict == ContainmentVerdict.CONTAINED
        assert backward.verdict == ContainmentVerdict.CONTAINED

    def test_proper_containment_refuted_with_witness(self):
        smaller = ChainProgram.from_text("?p(c, Y)\np(X, Y) :- par(X, Y).")
        larger = program_a()
        assert language_containment(smaller, larger).verdict == ContainmentVerdict.CONTAINED
        refutation = language_containment(larger, smaller)
        assert refutation.verdict == ContainmentVerdict.NOT_CONTAINED
        assert refutation.witness == ("par", "par")

    def test_anbn_contained_in_its_envelope_program(self):
        envelope_program = ChainProgram.from_text(
            """
            ?q(c, Y)
            q(X, Y) :- b1(X, X1), r(X1, Y).
            q(X, Y) :- b1(X, X1), q(X1, Y).
            r(X, Y) :- b2(X, Y).
            r(X, Y) :- b2(X, X1), r(X1, Y).
            """
        )
        result = language_containment(anbn_program(), envelope_program)
        assert result.verdict == ContainmentVerdict.CONTAINED

    def test_anbn_not_containing_envelope(self):
        envelope_program = ChainProgram.from_text(
            """
            ?q(c, Y)
            q(X, Y) :- b1(X, X1), r(X1, Y).
            q(X, Y) :- b1(X, X1), q(X1, Y).
            r(X, Y) :- b2(X, Y).
            r(X, Y) :- b2(X, X1), r(X1, Y).
            """
        )
        result = language_containment(envelope_program, anbn_program())
        assert result.verdict == ContainmentVerdict.NOT_CONTAINED
        assert result.witness is not None

    def test_language_equivalence_pairs(self):
        forward, backward = language_equivalence(program_a(), program_b())
        assert forward.verdict == backward.verdict == ContainmentVerdict.CONTAINED

    def test_bounded_equivalence_check(self):
        agree, witness = bounded_equivalence_check(program_a(), program_c(), 5)
        assert agree and witness is None


class TestEquivalence:
    def test_ancestor_portfolio_equivalent(self):
        result = chain_language_equivalence(program_a(), program_b())
        assert result.verdict == EquivalenceVerdict.EQUIVALENT

    def test_different_languages_refuted(self):
        doubled = ChainProgram.from_text(
            """
            ?anc(john, Y)
            anc(X, Y) :- par(X, X1), par(X1, Y).
            anc(X, Y) :- anc(X, X1), anc(X1, Y).
            """
        )
        result = chain_language_equivalence(program_a(), doubled)
        assert result.verdict == EquivalenceVerdict.NOT_EQUIVALENT
        assert result.witness == ("par",)

    def test_finite_language_comparison(self):
        left = ChainProgram.from_text("?p(c, Y)\np(X, Y) :- a(X, Y).")
        right = ChainProgram.from_text("?p(c, Y)\np(X, Y) :- a(X, Y).\np(X, Y) :- a(X, X1), a(X1, Y).")
        result = chain_language_equivalence(left, right)
        assert result.verdict == EquivalenceVerdict.NOT_EQUIVALENT

    def test_empirical_agreement(self):
        left = program_a().program
        right = program_b().program
        outcome = random_equivalence_test(left, right, lambda seed: parent_forest(40, seed=seed), 5)
        assert outcome.agree

    def test_empirical_disagreement_found(self):
        left = program_a().program
        smaller = ChainProgram.from_text("?anc(john, Y)\nanc(X, Y) :- par(X, Y).").program
        outcome = programs_agree_on(left, smaller, [parent_forest(40, seed=2)])
        assert not outcome.agree
        assert outcome.counterexample is not None
