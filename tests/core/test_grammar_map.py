"""Unit tests for the chain-program / grammar correspondence (Section 3)."""

import pytest

from repro.core.chain import GoalForm
from repro.core.grammar_map import (
    from_grammar,
    left_linear_grammar_to_program,
    predicate_terminal_map,
    to_grammar,
)
from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant, Variable
from repro.errors import ValidationError
from repro.languages.cfg import parse_grammar
from repro.languages.cfg_analysis import enumerate_language
from repro.languages.cfg_properties import is_left_linear, is_right_linear


class TestToGrammar:
    def test_program_a_is_left_linear(self, ancestor_a):
        grammar = to_grammar(ancestor_a)
        assert grammar.start == "anc"
        assert grammar.terminals == {"par"}
        assert is_left_linear(grammar)

    def test_program_b_is_right_linear(self, ancestor_b):
        assert is_right_linear(to_grammar(ancestor_b))

    def test_all_ancestor_grammars_define_par_plus(self, ancestor_a, ancestor_b, ancestor_c):
        for chain in (ancestor_a, ancestor_b, ancestor_c):
            words = enumerate_language(to_grammar(chain), 4)
            assert words == [("par",) * n for n in range(1, 5)]

    def test_anbn_language(self, anbn):
        grammar = to_grammar(anbn)
        words = set(enumerate_language(grammar, 4))
        assert words == {("b1", "b2"), ("b1", "b1", "b2", "b2")}

    def test_goal_less_program_needs_explicit_start(self, ancestor_a):
        free = ancestor_a.program.with_goal(None)
        from repro.core.chain import ChainProgram

        chain = ChainProgram(free)
        with pytest.raises(ValidationError):
            to_grammar(chain)
        assert to_grammar(chain, start="anc").start == "anc"

    def test_terminal_map_is_identity(self, anbn):
        assert predicate_terminal_map(anbn) == {"b1": "b1", "b2": "b2"}


class TestFromGrammar:
    def test_round_trip(self, anbn):
        grammar = to_grammar(anbn)
        rebuilt = from_grammar(grammar, anbn.goal)
        assert to_grammar(rebuilt).productions == grammar.productions

    def test_goal_must_match_start(self):
        grammar = parse_grammar("p -> a")
        with pytest.raises(ValidationError):
            from_grammar(grammar, Atom("q", (Constant("c"), Variable("Y"))))

    def test_epsilon_rejected(self):
        grammar = parse_grammar("p -> a | ε")
        with pytest.raises(ValidationError):
            from_grammar(grammar, Atom("p", (Constant("c"), Variable("Y"))))

    def test_left_linear_constructor(self):
        grammar = parse_grammar("p -> a | p a")
        chain = left_linear_grammar_to_program(grammar, Atom("p", (Constant("c"), Variable("Y"))))
        assert chain.goal_form() == GoalForm.CONSTANT_FIRST

    def test_left_linear_constructor_rejects_right_linear(self):
        grammar = parse_grammar("p -> a | a p")
        with pytest.raises(ValidationError):
            left_linear_grammar_to_program(grammar, Atom("p", (Constant("c"), Variable("Y"))))
