"""Unit tests for Section 7: magic sets as language quotients."""

import pytest

from repro.core.counterexamples import anbn_program
from repro.core.examples_catalog import program_a, section7_transformed
from repro.core.magic_chain import (
    analyze_magic,
    magic_transform_chain,
    rule_context_regex,
)
from repro.core.workloads import layered_anbn_graph
from repro.datalog import get_engine

evaluate_seminaive = get_engine("seminaive").evaluate
from repro.datalog.atoms import Atom
from repro.datalog.terms import Variable
from repro.errors import ValidationError
from repro.languages.regular.properties import enumerate_words


class TestContextRegex:
    def test_recursive_rule_regex(self, anbn):
        recursive = [rule for rule in anbn.rules if len(rule.body) == 3][0]
        regex = rule_context_regex(anbn, recursive)
        nfa = regex.to_nfa(("b1", "b2"))
        # The regex is Σ* b1 Σ* b2 Σ*: it must accept any word containing b1 before b2.
        assert nfa.accepts(("b1", "b2"))
        assert nfa.accepts(("b2", "b1", "b1", "b2", "b1"))
        assert not nfa.accepts(("b2", "b1"))
        assert not nfa.accepts(("b1",))

    def test_base_rule_regex(self, anbn):
        base = [rule for rule in anbn.rules if len(rule.body) == 2][0]
        regex = rule_context_regex(anbn, base)
        nfa = regex.to_nfa(("b1", "b2"))
        assert nfa.accepts(("b1", "b2"))
        assert not nfa.accepts(("b2",))


class TestAnalysis:
    def test_quotients_are_b1_star(self, anbn):
        analysis = analyze_magic(anbn)
        assert not analysis.language_exact  # envelope b1+ b2+ used
        for entry in analysis.rule_quotients:
            words = set(enumerate_words(entry.quotient, 3))
            assert words == {(), ("b1",), ("b1", "b1"), ("b1", "b1", "b1")}

    def test_magic_language_union(self, anbn):
        analysis = analyze_magic(anbn)
        magic = analysis.magic_language()
        assert magic.accepts(("b1", "b1"))
        assert not magic.accepts(("b2",))

    def test_exact_for_left_linear(self):
        analysis = analyze_magic(program_a())
        assert analysis.language_exact
        assert analysis.all_exact

    def test_requires_constant_first_goal(self, anbn):
        equality = anbn.with_goal(Atom("p", (Variable("X"), Variable("X"))))
        with pytest.raises(ValidationError):
            analyze_magic(equality)


class TestTransformation:
    def test_answers_preserved_and_pruned(self, anbn):
        transformed = magic_transform_chain(anbn)
        database = layered_anbn_graph(8, noise_branches=3)
        plain = evaluate_seminaive(anbn.program, database)
        magic = evaluate_seminaive(transformed, database)
        assert plain.answers() == magic.answers()
        assert magic.statistics.facts_derived < plain.statistics.facts_derived

    def test_agrees_with_paper_written_transformation(self, anbn):
        database = layered_anbn_graph(6, noise_branches=2)
        ours = evaluate_seminaive(magic_transform_chain(anbn), database)
        paper = evaluate_seminaive(section7_transformed(), database)
        assert ours.answers() == paper.answers()

    def test_transformed_program_guards_every_original_rule(self, anbn):
        transformed = magic_transform_chain(anbn)
        guarded = [
            rule
            for rule in transformed.rules
            if rule.head.predicate == "p" and rule.body and rule.body[0].predicate == "magic"
        ]
        assert len(guarded) == len(anbn.rules)

    def test_magic_predicates_are_monadic(self, anbn):
        transformed = magic_transform_chain(anbn)
        arities = transformed.predicate_arities()
        monadic = [p for p in transformed.idb_predicates() if p != "p"]
        assert monadic
        assert all(arities[p] == 1 for p in monadic)

    def test_ancestor_program_magic(self):
        chain = program_a()
        transformed = magic_transform_chain(chain)
        from repro.core.workloads import parent_forest

        database = parent_forest(80, seed=5, root_count=4)
        plain = evaluate_seminaive(chain.program, database)
        magic = evaluate_seminaive(transformed, database)
        assert plain.answers() == magic.answers()
        # Fewer facts of the binary predicate anc are derived under the magic guard.
        assert (
            magic.statistics.facts_per_predicate["anc"]
            < plain.statistics.facts_per_predicate["anc"]
        )
