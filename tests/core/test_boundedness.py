"""Unit tests for Proposition 8.2 (boundedness / FO-expressibility / finiteness)."""

import pytest

from repro.core.boundedness import (
    analyze_boundedness,
    first_order_query,
    is_bounded,
    measure_proof_depths,
)
from repro.core.chain import ChainProgram
from repro.core.counterexamples import cycle_length_program
from repro.core.examples_catalog import program_a, section7_program
from repro.core.workloads import chain_database
from repro.datalog import get_engine

evaluate_seminaive = get_engine("seminaive").evaluate
from repro.errors import ValidationError
from repro.logic.fo import evaluate_query
from repro.logic.structures import FiniteStructure


GRANDPARENT = ChainProgram.from_text(
    """
    ?gp(john, Y)
    gp(X, Y) :- par(X, X1), par(X1, Y).
    """
)


class TestDecision:
    def test_non_recursive_program_is_bounded(self):
        assert is_bounded(GRANDPARENT)

    def test_finite_recursive_language_is_bounded(self):
        assert is_bounded(cycle_length_program(3))

    def test_ancestor_is_unbounded(self):
        assert not is_bounded(program_a())

    def test_anbn_is_unbounded(self):
        assert not is_bounded(section7_program())


class TestReports:
    def test_bounded_report_contents(self):
        report = analyze_boundedness(GRANDPARENT)
        assert report.bounded and report.first_order_expressible
        assert report.language_words == (("par", "par"),)
        assert report.derivation_size_bound >= 2
        assert report.first_order_formula is not None
        assert report.output_variables == ("Y",)

    def test_unbounded_report(self):
        report = analyze_boundedness(program_a())
        assert not report.bounded
        assert report.first_order_formula is None

    def test_fo_formula_for_unbounded_program_rejected(self):
        with pytest.raises(ValidationError):
            first_order_query(program_a())


class TestFirstOrderEquivalence:
    def test_fo_formula_matches_datalog_answers(self):
        database = chain_database(10)
        database.add_edge("par", "john", "n0")
        report = analyze_boundedness(GRANDPARENT)
        structure = FiniteStructure.from_database(database, constants={"john": "john"})
        fo_answers = evaluate_query(
            report.first_order_formula, structure, report.output_variables
        )
        datalog_answers = evaluate_seminaive(GRANDPARENT.program, database).answers()
        assert fo_answers == datalog_answers

    def test_equality_goal_fo_formula(self):
        chain = cycle_length_program(3)
        formula, outputs = first_order_query(chain)
        assert outputs == ("X",)
        from repro.logic.structures import directed_cycle

        structure = directed_cycle(3)
        answers = evaluate_query(formula, structure, outputs)
        assert len(answers) == 3


class TestEmpiricalDepths:
    def test_bounded_program_has_constant_depth(self):
        databases = [chain_database(n) for n in (4, 8, 16)]
        for database in databases:
            database.add_edge("par", "john", "n0")
        measurements = measure_proof_depths(GRANDPARENT, databases)
        heights = {m.max_proof_height for m in measurements}
        assert heights == {2}

    def test_unbounded_program_depth_grows(self):
        databases = []
        for n in (4, 8, 16):
            database = chain_database(n)
            database.add_edge("par", "john", "n0")
            databases.append(database)
        measurements = measure_proof_depths(program_a(), databases)
        heights = [m.max_proof_height for m in measurements]
        assert heights[0] < heights[1] < heights[2]
