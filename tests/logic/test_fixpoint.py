"""Unit tests for monadic fixpoint programs and Example 6.3."""

from repro.logic.fixpoint import (
    MonadicFixpointProgram,
    MonadicFixpointRule,
    evaluate_fixpoint_program,
    example_6_3_program,
    is_cyclic_via_monadic_fixpoint,
    nodes_on_or_reaching_cycles,
)
from repro.logic.fo import And, Exists, Or, Rel, Var
from repro.logic.mgs import has_directed_cycle
from repro.logic.structures import (
    FiniteStructure,
    directed_cycle,
    directed_path,
    path_with_disjoint_cycle,
    union_structure,
)


class TestEvaluator:
    def test_reachability_fixpoint(self):
        # reach(X) <- start(X) ∨ ∃Y (reach(Y) ∧ b(Y, X))
        x, y = Var("X"), Var("Y")
        body = Or(
            (
                Rel("start", (x,)),
                Exists("Y", And((Rel("reach", (y,)), Rel("b", (y, x))))),
            )
        )
        program = MonadicFixpointProgram((MonadicFixpointRule("reach", "X", body),))
        structure = FiniteStructure(
            {"a", "b", "c", "d"},
            {"b": [("a", "b"), ("b", "c")], "start": [("a",)]},
        )
        evaluation = evaluate_fixpoint_program(program, structure)
        assert evaluation.members("reach") == {"a", "b", "c"}
        assert evaluation.iterations["reach"] >= 3

    def test_later_rules_see_earlier_fixpoints(self):
        x = Var("X")
        first = MonadicFixpointRule("p", "X", Rel("base", (x,)))
        second = MonadicFixpointRule("q", "X", Rel("p", (x,)))
        program = MonadicFixpointProgram((first, second))
        structure = FiniteStructure({1, 2}, {"base": [(1,)]})
        evaluation = evaluate_fixpoint_program(program, structure)
        assert evaluation.members("q") == {1}

    def test_empty_program(self):
        evaluation = evaluate_fixpoint_program(
            MonadicFixpointProgram(()), FiniteStructure({1}, {})
        )
        assert evaluation.relation("anything") == frozenset()


class TestExample63:
    def test_cycle_detected(self):
        assert is_cyclic_via_monadic_fixpoint(directed_cycle(4))

    def test_path_is_acyclic(self):
        assert not is_cyclic_via_monadic_fixpoint(directed_path(4))

    def test_path_plus_cycle(self):
        structure = path_with_disjoint_cycle(3, 4)
        assert is_cyclic_via_monadic_fixpoint(structure)
        # Only the cycle nodes stay unmarked: the path cannot reach the disjoint cycle.
        unmarked = nodes_on_or_reaching_cycles(structure)
        assert unmarked == {f"c{i}" for i in range(4)}

    def test_agrees_with_reference_checker_on_small_structures(self):
        structures = [
            directed_path(3),
            directed_cycle(3),
            path_with_disjoint_cycle(2, 3),
            union_structure(directed_path(2, prefix="x"), directed_cycle(2, prefix="y")),
            FiniteStructure({1, 2, 3}, {"b": [(1, 2), (2, 3), (3, 1), (1, 1)]}),
        ]
        for structure in structures:
            assert is_cyclic_via_monadic_fixpoint(structure) == has_directed_cycle(structure)

    def test_marking_order_matches_the_paper_description(self):
        # "first marking all nodes of graph b that have outdegree 0, then marking all
        #  nodes whose children have been marked, etc."
        structure = directed_path(2)  # p0 -> p1 -> p2
        program = example_6_3_program()
        evaluation = evaluate_fixpoint_program(program, structure)
        assert evaluation.members("w") == {"p0", "p1", "p2"}
        assert evaluation.iterations["w"] == 4  # three marking rounds plus the stable check
