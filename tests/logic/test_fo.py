"""Unit tests for first-order evaluation over finite structures."""

from repro.logic.fo import (
    And,
    Bottom,
    Const,
    Eq,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    Rel,
    Top,
    Var,
    evaluate_query,
    exists_many,
    forall_many,
)
from repro.logic.structures import FiniteStructure, directed_cycle, directed_path


def graph():
    return FiniteStructure(
        {"a", "b", "c"},
        {"edge": [("a", "b"), ("b", "c")]},
        {"source": "a"},
    )


class TestAtoms:
    def test_relation_atom(self):
        formula = Rel("edge", (Var("X"), Var("Y")))
        assert formula.evaluate(graph(), {"X": "a", "Y": "b"})
        assert not formula.evaluate(graph(), {"X": "b", "Y": "a"})

    def test_constant_reference(self):
        formula = Rel("edge", (Const("source"), Var("Y")))
        assert formula.evaluate(graph(), {"Y": "b"})

    def test_equality(self):
        assert Eq(Var("X"), Var("Y")).evaluate(graph(), {"X": "a", "Y": "a"})
        assert not Eq(Var("X"), Const("source")).evaluate(graph(), {"X": "b"})

    def test_interpretations_override(self):
        formula = Rel("w", (Var("X"),))
        assert formula.evaluate(graph(), {"X": "a"}, {"w": frozenset({("a",)})})
        assert not formula.evaluate(graph(), {"X": "b"}, {"w": frozenset({("a",)})})

    def test_top_bottom(self):
        assert Top().evaluate(graph())
        assert not Bottom().evaluate(graph())


class TestConnectivesAndQuantifiers:
    def test_not_and_or(self):
        edge = Rel("edge", (Var("X"), Var("Y")))
        formula = Or((edge, Not(edge)))
        assert formula.evaluate(graph(), {"X": "a", "Y": "c"})

    def test_implication(self):
        formula = Implies(Bottom(), Rel("edge", (Var("X"), Var("X"))))
        assert formula.evaluate(graph(), {"X": "a"})

    def test_exists(self):
        formula = Exists("Y", Rel("edge", (Var("X"), Var("Y"))))
        assert formula.evaluate(graph(), {"X": "a"})
        assert not formula.evaluate(graph(), {"X": "c"})

    def test_forall(self):
        has_out_edge = Exists("Y", Rel("edge", (Var("X"), Var("Y"))))
        assert not Forall("X", has_out_edge).evaluate(graph())
        cycle = FiniteStructure.from_database(directed_cycle(3).to_database())
        has_out = Exists("Y", Rel("b", (Var("X"), Var("Y"))))
        assert Forall("X", has_out).evaluate(cycle)

    def test_nested_helpers(self):
        two_step = exists_many(
            ["Y", "Z"],
            And((Rel("edge", (Var("X"), Var("Y"))), Rel("edge", (Var("Y"), Var("Z"))))),
        )
        assert two_step.evaluate(graph(), {"X": "a"})
        assert forall_many(["X"], Top()).evaluate(graph())

    def test_free_variables(self):
        formula = Exists("Y", Rel("edge", (Var("X"), Var("Y"))))
        assert formula.free_variables() == {"X"}


class TestQueries:
    def test_evaluate_query(self):
        formula = Exists("Z", And((Rel("edge", (Var("X"), Var("Z"))), Rel("edge", (Var("Z"), Var("Y"))))))
        answers = evaluate_query(formula, graph(), ("X", "Y"))
        assert answers == {("a", "c")}

    def test_boolean_query(self):
        formula = Exists("X", Exists("Y", Rel("edge", (Var("X"), Var("Y")))))
        assert evaluate_query(formula, graph(), ()) == {()}
        empty = FiniteStructure({"a"}, {"edge": []})
        assert evaluate_query(formula, empty, ()) == frozenset()

    def test_path_structure_queries(self):
        path = directed_path(2)
        start_nodes = evaluate_query(
            Not(Exists("Z", Rel("b", (Var("Z"), Var("X"))))), path, ("X",)
        )
        assert start_nodes == {("p0",)}
