"""Unit tests for monadic generalized spectra and the cycle-symmetry arguments."""

import pytest

from repro.core.examples_catalog import program_d, section6_cycle_program
from repro.datalog import parse_program
from repro.logic.ef import (
    boolean_answer_on_cycle,
    colour_sets_on_structure,
    distinguishability_on_cycles,
    monadic_colour_uniformity_on_cycle,
    program_symbol_count,
)
from repro.logic.mgs import (
    cyclic_graph_spec,
    disconnected_graph_spec,
    has_directed_cycle,
    is_disconnected,
    is_unreachable,
    nonreachability_spec,
)
from repro.logic.structures import (
    FiniteStructure,
    directed_cycle,
    directed_path,
    path_with_disjoint_cycle,
    union_structure,
)


class TestDisconnectivitySpec:
    """Example 2.2.1: disconnected graphs are an MGS."""

    def test_disconnected_structure_satisfies_spec(self):
        structure = path_with_disjoint_cycle(2, 3)
        assert disconnected_graph_spec().check(structure)
        assert is_disconnected(structure)

    def test_connected_structure_fails_spec(self):
        structure = directed_path(4)
        assert not disconnected_graph_spec().check(structure)
        assert not is_disconnected(structure)

    def test_search_agrees_with_reference_on_small_graphs(self):
        spec = disconnected_graph_spec()
        for structure in (directed_path(3), directed_cycle(4), path_with_disjoint_cycle(1, 3)):
            assert spec.check(structure) == is_disconnected(structure)


class TestNonReachabilitySpec:
    """Example 2.2.2: source-sink non-reachability is an MGS."""

    def make(self, reachable: bool) -> FiniteStructure:
        edges = [("s", "m"), ("m", "t")] if reachable else [("s", "m"), ("t", "m")]
        return FiniteStructure({"s", "m", "t"}, {"b": edges}, {"c1": "s", "c2": "t"})

    def test_unreachable_satisfies_spec(self):
        structure = self.make(reachable=False)
        assert nonreachability_spec().check(structure)
        assert is_unreachable(structure)

    def test_reachable_fails_spec(self):
        structure = self.make(reachable=True)
        assert not nonreachability_spec().check(structure)
        assert not is_unreachable(structure)


class TestCyclicitySpec:
    """Example 2.2.3: graphs with a directed cycle are an MGS."""

    def test_cycle_detected(self):
        assert cyclic_graph_spec().check(directed_cycle(4))
        assert has_directed_cycle(directed_cycle(4))

    def test_acyclic_rejected(self):
        assert not cyclic_graph_spec().check(directed_path(4))
        assert not has_directed_cycle(directed_path(4))

    def test_path_plus_cycle_detected(self):
        structure = path_with_disjoint_cycle(2, 3)
        assert cyclic_graph_spec().check(structure)

    def test_witness_is_closed_under_edges_inside_colour(self):
        witness = cyclic_graph_spec().witness(directed_cycle(3))
        assert witness is not None
        assert len(witness["w"]) >= 1

    def test_domain_guard(self):
        with pytest.raises(ValueError):
            cyclic_graph_spec().check(directed_cycle(20))


class TestCycleSymmetry:
    """The executable parts of Lemma 6.1."""

    def test_monadic_program_colours_cycles_uniformly(self):
        monadic = parse_program(
            """
            ?w(X)
            w(X) :- b(X, Y).
            w(X) :- b(X, Y), w(Y).
            """
        )
        for length in (3, 5, 8):
            assert monadic_colour_uniformity_on_cycle(monadic, length)

    def test_colour_sets_on_path_are_not_uniform(self):
        monadic = parse_program(
            """
            ?w(X)
            w(X) :- b(X, Y).
            """
        )
        colours = colour_sets_on_structure(monadic, directed_path(3))
        assert len(set(colours.values())) > 1

    def test_chain_program_distinguishes_cycles_monadic_cannot(self):
        from repro.core.counterexamples import cycle_length_program

        # The length-3 closed-walk query holds on a 3-cycle but not on a 4-cycle.
        chain = cycle_length_program(3)
        outcome = distinguishability_on_cycles(chain.program, 3, 4)
        assert outcome.distinguishes

    def test_cycle_program_detects_cycles(self):
        cycle = section6_cycle_program()
        assert boolean_answer_on_cycle(cycle.program, 5)

    def test_program_symbol_count_positive(self):
        assert program_symbol_count(program_d()) > 0
