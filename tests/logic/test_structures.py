"""Unit tests for finite structures."""

import pytest

from repro.datalog import Database
from repro.logic.structures import (
    FiniteStructure,
    directed_cycle,
    directed_path,
    path_with_disjoint_cycle,
    union_structure,
)


class TestConstruction:
    def test_basic(self):
        structure = FiniteStructure({1, 2}, {"b": [(1, 2)]}, {"c": 1})
        assert structure.size() == 2
        assert structure.relation("b") == {(1, 2)}
        assert structure.constant("c") == 1

    def test_constant_must_be_in_domain(self):
        with pytest.raises(ValueError):
            FiniteStructure({1}, {}, {"c": 2})

    def test_relation_must_stay_in_domain(self):
        with pytest.raises(ValueError):
            FiniteStructure({1}, {"b": [(1, 2)]})

    def test_missing_relation_is_empty(self):
        assert FiniteStructure({1}, {}).relation("nope") == frozenset()

    def test_with_constants_and_relations(self):
        structure = FiniteStructure({1, 2}, {"b": [(1, 2)]})
        extended = structure.with_constants({"c": 1}).with_relations({"r": [(2, 1)]})
        assert extended.constant("c") == 1
        assert extended.relation("r") == {(2, 1)}


class TestDatabaseBridge:
    def test_round_trip(self):
        database = Database({"par": [("a", "b")]})
        structure = FiniteStructure.from_database(database, constants={"c": "a"})
        assert structure.relation("par") == {("a", "b")}
        assert structure.to_database() == database

    def test_extra_domain(self):
        structure = FiniteStructure.from_database(Database(), extra_domain=["x"])
        assert structure.domain == {"x"}


class TestBuilders:
    def test_directed_path(self):
        path = directed_path(3)
        assert path.size() == 4
        assert len(path.relation("b")) == 3

    def test_directed_cycle(self):
        cycle = directed_cycle(4)
        assert cycle.size() == 4
        assert len(cycle.relation("b")) == 4
        # Every node has out-degree one.
        sources = [edge[0] for edge in cycle.relation("b")]
        assert len(set(sources)) == 4

    def test_cycle_requires_positive_length(self):
        with pytest.raises(ValueError):
            directed_cycle(0)

    def test_path_with_disjoint_cycle(self):
        both = path_with_disjoint_cycle(3, 4)
        assert both.size() == 4 + 4
        assert len(both.relation("b")) == 3 + 4

    def test_union_requires_disjoint_domains(self):
        with pytest.raises(ValueError):
            union_structure(directed_path(2), directed_path(2))

    def test_union(self):
        merged = union_structure(directed_path(2, prefix="p"), directed_cycle(3, prefix="q"))
        assert merged.size() == 3 + 3
