"""Unit tests for the WS1S decision procedure."""

import pytest

from repro.logic.ws1s import (
    ContainsZero,
    IsEmptySet,
    SetEqual,
    Singleton,
    SubsetEq,
    SuccSets,
    WAnd,
    WExists,
    WFalse,
    WForall,
    WImplies,
    WNot,
    WOr,
    WTrue,
    enumerate_models,
    fo_equal,
    fo_exists,
    fo_forall,
    fo_succ,
    fo_zero,
    is_satisfiable,
    is_valid_sentence,
    member,
    models_language,
    partition_word_dfa,
)


class TestAtomicAutomata:
    def test_subset(self):
        automaton = SubsetEq("X", "Y").automaton()
        assert automaton.accepts_assignment({"X": {1}, "Y": {0, 1}})
        assert not automaton.accepts_assignment({"X": {2}, "Y": {0, 1}})

    def test_singleton(self):
        automaton = Singleton("X").automaton()
        assert automaton.accepts_assignment({"X": {3}})
        assert not automaton.accepts_assignment({"X": set()})
        assert not automaton.accepts_assignment({"X": {1, 2}})

    def test_set_equality(self):
        automaton = SetEqual("X", "Y").automaton()
        assert automaton.accepts_assignment({"X": {0, 2}, "Y": {0, 2}})
        assert not automaton.accepts_assignment({"X": {0}, "Y": {1}})

    def test_succ(self):
        automaton = SuccSets("X", "Y").automaton()
        assert automaton.accepts_assignment({"X": {4}, "Y": {5}})
        assert not automaton.accepts_assignment({"X": {4}, "Y": {6}})
        assert not automaton.accepts_assignment({"X": {4}, "Y": {4}})

    def test_empty_and_zero(self):
        assert IsEmptySet("X").automaton().accepts_assignment({"X": set()})
        assert ContainsZero("X").automaton().accepts_assignment({"X": {0, 3}})
        assert not ContainsZero("X").automaton().accepts_assignment({"X": {3}})


class TestSentences:
    def test_every_singleton_has_a_successor_position(self):
        sentence = fo_forall("X", fo_exists("Y", fo_succ("X", "Y")))
        assert is_valid_sentence(sentence)

    def test_zero_has_no_predecessor(self):
        sentence = fo_exists("X", WAnd((fo_zero("X"), fo_exists("Y", fo_succ("Y", "X")))))
        assert not is_valid_sentence(sentence)

    def test_unsatisfiable_conjunction(self):
        formula = WAnd((Singleton("X"), IsEmptySet("X")))
        assert not is_satisfiable(formula)

    def test_true_false(self):
        assert is_valid_sentence(WTrue())
        assert not is_valid_sentence(WFalse())
        assert is_valid_sentence(WNot(WFalse()))

    def test_sentence_requires_no_free_variables(self):
        with pytest.raises(ValueError):
            is_valid_sentence(Singleton("X"))

    def test_implication_and_or(self):
        sentence = fo_forall("X", WImplies(fo_zero("X"), fo_zero("X")))
        assert is_valid_sentence(sentence)
        assert is_satisfiable(WOr((WFalse(), WTrue())))


class TestModels:
    def test_enumerate_models_of_membership(self):
        formula = fo_exists("X", WAnd((fo_zero("X"), member("X", "W"))))
        models = enumerate_models(formula, 3)
        assert all(0 in model["W"] for model in models)
        assert {"W": frozenset({0})} in models

    def test_models_language_tracks(self):
        automaton = models_language(SubsetEq("A", "B"))
        assert automaton.tracks == ("A", "B")

    def test_quantifier_duality(self):
        # ∀W (X ⊆ W) is false (take W = ∅ with X nonempty); ¬∃W ¬(X ⊆ W) must agree.
        direct = WForall("W", SubsetEq("X", "W"))
        dual = WNot(WExists("W", WNot(SubsetEq("X", "W"))))
        formula_direct = WAnd((Singleton("X"), direct))
        formula_dual = WAnd((Singleton("X"), dual))
        assert is_satisfiable(formula_direct) == is_satisfiable(formula_dual) == False  # noqa: E712

    def test_fo_equal(self):
        sentence = fo_forall("X", fo_equal("X", "X"))
        assert is_valid_sentence(sentence)


class TestPartitionWordDfa:
    def test_single_letter_language(self):
        # Strings over {a, b} whose first position carries the letter a.  The
        # tautological conjunct keeps LETTER_b among the free tracks so that the
        # word extraction sees both letters.
        formula = WAnd(
            (
                fo_exists("X", WAnd((fo_zero("X"), member("X", "LETTER_a")))),
                SubsetEq("LETTER_b", "LETTER_b"),
            )
        )
        automaton = formula.automaton()
        dfa = partition_word_dfa(automaton, {"LETTER_a": "a", "LETTER_b": "b"})
        assert dfa.accepts(("a",))
        assert dfa.accepts(("a", "b"))
        assert not dfa.accepts(("b", "a"))

    def test_missing_letter_mapping_rejected(self):
        formula = member("X", "W")
        with pytest.raises(ValueError):
            partition_word_dfa(formula.automaton(), {"W": "w"})
