"""Experiment E4 — Theorem 3.3(2) / Corollary 3.4: the decidable p(X, X) case.

Paper claim: propagating the selection p(X, X) is possible iff L(H) is
finite, and finiteness of a context-free language is decidable — so this
side of the characterisation is effective.

Reproduced shape: the finiteness test scales polynomially with the grammar
size; the propagation verdict for p(X, X) is always definite (never
UNKNOWN); bounded programs produce non-recursive monadic rewrites whose size
equals the number of words of L(H).
"""

import pytest

from repro.core.chain import ChainProgram, chain_program_from_productions
from repro.core.counterexamples import cycle_length_program, cycle_program
from repro.core.grammar_map import to_grammar
from repro.core.propagation import PropagationVerdict, SelectionPropagator
from repro.datalog.atoms import Atom
from repro.datalog.terms import Variable
from repro.languages.cfg_analysis import is_finite_language


def finite_program(width: int) -> ChainProgram:
    """A bounded chain program whose language has ``width`` words of length 2."""
    productions = tuple(("p", (f"a{i}", f"b{i}")) for i in range(width))
    return chain_program_from_productions(
        productions, Atom("p", (Variable("X"), Variable("X")))
    )


def deep_infinite_program(depth: int) -> ChainProgram:
    """A chain of nonterminals ending in a recursive one (infinite language)."""
    productions = [("p0", ("p1", "p1"))]
    for level in range(1, depth):
        productions.append((f"p{level}", (f"p{level + 1}", f"p{level + 1}")))
    productions.append((f"p{depth}", ("b",)))
    productions.append((f"p{depth}", (f"p{depth}", "b")))
    return chain_program_from_productions(
        tuple(productions), Atom("p0", (Variable("X"), Variable("X")))
    )


@pytest.mark.parametrize("width", [2, 8, 32])
def test_finiteness_test_on_bounded_programs(benchmark, width):
    grammar = to_grammar(finite_program(width))
    assert benchmark(is_finite_language, grammar) is True


@pytest.mark.parametrize("depth", [2, 6, 12])
def test_finiteness_test_on_unbounded_programs(benchmark, depth):
    grammar = to_grammar(deep_infinite_program(depth))
    assert benchmark(is_finite_language, grammar) is False


@pytest.mark.parametrize(
    "label,chain,expected",
    [
        ("finite_width_8", finite_program(8), PropagationVerdict.PROPAGATABLE),
        ("closed_walk_4", cycle_length_program(4), PropagationVerdict.PROPAGATABLE),
        ("transitive_closure", cycle_program(), PropagationVerdict.NOT_PROPAGATABLE),
        ("deep_infinite", deep_infinite_program(6), PropagationVerdict.NOT_PROPAGATABLE),
    ],
    ids=["finite_width_8", "closed_walk_4", "transitive_closure", "deep_infinite"],
)
def test_equality_goal_decision_is_definite(benchmark, label, chain, expected):
    propagator = SelectionPropagator()
    result = benchmark(propagator.analyze, chain)
    assert result.verdict == expected
    benchmark.extra_info["verdict"] = result.verdict.value
    if result.monadic_program is not None:
        benchmark.extra_info["rewrite_rules"] = len(result.monadic_program.rules)
