"""Experiment E1 — Example 1.1: the ancestor portfolio and the cost of binary recursion.

Paper claim (Introduction / Example 1.1): Programs A–D are semantically
equivalent, but Program D "represents the truly efficient form since the
recursion is defined over monadic and not binary (derived) relations"; magic
sets restrict Programs A and B to the computation performed by Program D.

Reproduced shape: on a forest where john's tree is a fraction of the data,
the binary-recursive programs derive Θ(answers × persons) ancestor facts,
while Program D, the Theorem 3.3 monadic rewrite, and the magic-set
transforms derive Θ(answers).

All runs go through the unified :class:`~repro.datalog.session.QuerySession`
API: transforms are pipeline stages, engines come from the registry.
"""

import pytest

from repro.core.examples_catalog import program_a, program_b, program_c, program_d
from repro.core.propagation import MonadicRewrite
from repro.core.workloads import parent_forest
from repro.datalog import QuerySession
from repro.datalog.transforms import MagicSets

PERSONS = 350
DATABASE = parent_forest(PERSONS, seed=1, root_count=6)
GOLD = QuerySession(program_d(), DATABASE).answers()


def _run(session):
    result = session.evaluate(fresh=True)
    assert result.answers() == GOLD
    return result


@pytest.mark.parametrize(
    "label,chain",
    [("A_left_linear", program_a()), ("B_right_linear", program_b()), ("C_non_linear", program_c())],
    ids=lambda value: value if isinstance(value, str) else "",
)
def test_binary_recursive_original(benchmark, record, label, chain):
    session = QuerySession(chain, DATABASE)
    result = benchmark(_run, session)
    record(benchmark, "original", result.statistics)
    benchmark.extra_info["answers"] = len(GOLD)


def test_program_d_monadic_target(benchmark, record):
    session = QuerySession(program_d(), DATABASE)
    result = benchmark(_run, session)
    record(benchmark, "program_d", result.statistics)


@pytest.mark.parametrize(
    "label,chain",
    [("A", program_a()), ("B", program_b())],
    ids=lambda value: value if isinstance(value, str) else "",
)
def test_magic_set_transformation(benchmark, record, label, chain):
    session = QuerySession(chain, DATABASE).with_transforms(MagicSets())
    session.transformed_program  # rewrite once, outside the timed region
    result = benchmark(_run, session)
    record(benchmark, "magic", result.statistics)


def test_theorem_3_3_monadic_rewrite_of_a(benchmark, record):
    session = QuerySession(program_a(), DATABASE).with_transforms(MonadicRewrite())
    session.transformed_program
    result = benchmark(_run, session)
    record(benchmark, "rewrite", result.statistics)
