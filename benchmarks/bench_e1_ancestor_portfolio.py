"""Experiment E1 — Example 1.1: the ancestor portfolio and the cost of binary recursion.

Paper claim (Introduction / Example 1.1): Programs A–D are semantically
equivalent, but Program D "represents the truly efficient form since the
recursion is defined over monadic and not binary (derived) relations"; magic
sets restrict Programs A and B to the computation performed by Program D.

Reproduced shape: on a forest where john's tree is a fraction of the data,
the binary-recursive programs derive Θ(answers × persons) ancestor facts,
while Program D, the Theorem 3.3 monadic rewrite, and the magic-set
transforms derive Θ(answers).
"""

import pytest

from repro.core.examples_catalog import program_a, program_b, program_c, program_d
from repro.core.propagation import propagate_selection
from repro.core.workloads import parent_forest
from repro.datalog import evaluate_seminaive
from repro.datalog.transforms import magic_transform

PERSONS = 350
DATABASE = parent_forest(PERSONS, seed=1, root_count=6)
GOLD = evaluate_seminaive(program_d(), DATABASE).answers()


def _run(program):
    result = evaluate_seminaive(program, DATABASE)
    assert result.answers() == GOLD
    return result


@pytest.mark.parametrize(
    "label,chain",
    [("A_left_linear", program_a()), ("B_right_linear", program_b()), ("C_non_linear", program_c())],
    ids=lambda value: value if isinstance(value, str) else "",
)
def test_binary_recursive_original(benchmark, record, label, chain):
    result = benchmark(_run, chain.program)
    record(benchmark, "original", result.statistics)
    benchmark.extra_info["answers"] = len(GOLD)


def test_program_d_monadic_target(benchmark, record):
    result = benchmark(_run, program_d())
    record(benchmark, "program_d", result.statistics)


@pytest.mark.parametrize(
    "label,chain",
    [("A", program_a()), ("B", program_b())],
    ids=lambda value: value if isinstance(value, str) else "",
)
def test_magic_set_transformation(benchmark, record, label, chain):
    transformed = magic_transform(chain.program)
    result = benchmark(_run, transformed)
    record(benchmark, "magic", result.statistics)


def test_theorem_3_3_monadic_rewrite_of_a(benchmark, record):
    rewritten = propagate_selection(program_a()).monadic_program
    result = benchmark(_run, rewritten)
    record(benchmark, "rewrite", result.statistics)
