"""Experiment E15 — parallel fixpoint evaluation: sharded deltas vs serial.

PR 10 added the parallel evaluation layer: depth-concurrent strata on
threads and, for the columnar packed-bigint lane, recursive rounds whose
delta firing is sharded across forked worker processes
(:mod:`repro.datalog.columnar.shard`).  This experiment measures the
second — the throughput lever — on the E14 graph families:

* **tc_rand** — pair transitive closure over a random graph: the
  *decomposable* flagship.  The closure carries its first column
  unchanged through the recursion, so the shards are closed and each
  worker retains its own fresh rows as the next round's delta — zero
  per-round key shipping (owner-computes);
* **reach_pa** — linear reachability over a preferential-attachment
  graph (one big recursive stratum; cheap key-set sync, not
  decomposable);
* **sg_grid** — nonlinear same-generation on a grid (bushy joins, so
  each shard's round carries real kernel work; full mirror sync);
* **points_to** — Andersen points-to on a synthetic program (mutual
  recursion: pt and hpt share one stratum and one delta).

Each program carries one trivial wide-head rule (``wide3(X, X, X)``),
which keeps it off the NumPy vector lane: vector rounds are already
C-speed and sharding cannot amortize a process round-trip against them,
so ``workers > 1`` deliberately leaves vector-eligible programs serial
(see :mod:`repro.datalog.columnar.vector`).  "Serial" here is therefore
the *best available* serial lane for these programs — the compiled
packed-bigint kernels — not a strawman.

Parity is asserted before anything is timed, and the assertions also run
in the plain suite under ``--benchmark-disable``: at every worker count
the model AND the hardware-independent :class:`EvaluationStatistics`
must be bit-identical to the serial run — the sharded driver replays the
serial loop's exact bookkeeping, so any divergence is a real bug, not
nondeterminism to shrug at.

Acceptance gate (``test_two_workers_at_least_1_4x_on_portfolio``): two
shard workers must beat the serial packed lane by >=1.4x across the gate
portfolio, best-of-three, pool startup included.  The gate only runs on
hosts with at least two usable CPU cores — on a single core two worker
processes time-slice the same core, so every firing costs twice its
serial wall time and no sharding scheme can win; parity and engagement
checks run unconditionally regardless.
"""

import os
import time

import pytest

from repro.datalog.columnar import shard
from repro.datalog.engine import get_engine
from repro.datalog.engine.planner import Planner
from repro.datalog.parser import parse_program
from repro.datalog.workloads import (
    PORTFOLIO,
    grid,
    points_to_input,
    preferential_attachment,
    random_graph,
)

pytestmark = pytest.mark.skipif(
    not shard.available(), reason="process sharding requires the fork start method"
)

SEMINAIVE = get_engine("seminaive")


def usable_cores() -> int:
    """CPU cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


#: One wide-head marker per program: semantically inert (a copy of an EDB
#: column) but arity 3, which routes the whole program onto the packed
#: lane where sharding applies.
WIDE_MARKERS = {
    "reachability": "wide3(X, X, X) :- source(X).",
    "same_generation": "wide3(X, X, X) :- node(X).",
    "points_to": "wide3(V, V, V) :- alloc(V, H).",
}

TC_PROGRAM = """
tc(X, Y) :- edge(X, Y).
tc(X, Y) :- tc(X, Z), edge(Z, Y).
wide3(X, X, X) :- node(X).
"""


def wide_program(name: str):
    program = parse_program(PORTFOLIO[name] + WIDE_MARKERS[name])
    program.validate()
    return program


def tc_program():
    program = parse_program(TC_PROGRAM)
    program.validate()
    return program


#: label -> (program, columnar EDB) at timed scale.
WORKLOADS = {
    "tc_rand": (
        tc_program(),
        random_graph(800, 2000, seed=3).with_layout("columnar"),
    ),
    "reach_pa": (
        wide_program("reachability"),
        preferential_attachment(20000, 4, seed=0).with_layout("columnar"),
    ),
    "sg_grid": (
        wide_program("same_generation"),
        grid(18, 18).with_layout("columnar"),
    ),
    "points_to": (
        wide_program("points_to"),
        points_to_input(120, 1200, seed=5).with_layout("columnar"),
    ),
}

WORKER_COUNTS = (1, 2, 4)

PLANNERS = {}
for label, (program, database) in WORKLOADS.items():
    PLANNERS[label] = Planner()
    PLANNERS[label].plan(program, database)


def run(label: str, workers: int = 1):
    program, database = WORKLOADS[label]
    return SEMINAIVE.evaluate(
        program, database, planner=PLANNERS[label], workers=workers
    )


def test_sharding_actually_engages():
    """Every workload routes through the sharded driver at ``workers > 1``.

    Guards the gate against silently timing serial-vs-serial: the wide
    marker must keep each program off the vector lane, and each plan must
    stay fully batch-kernel-supported with a recursive stratum.
    """
    for label, (program, database) in WORKLOADS.items():
        plan = PLANNERS[label].plan(program, database)
        assert shard.applicable(plan, database, program, workers=2), label


def test_parity_sharded_vs_serial():
    """The non-negotiable contract, asserted before anything is timed.

    At every worker count, on every workload: identical model, identical
    statistics — iterations, firings, duplicates, per-predicate counts.
    """
    for label in WORKLOADS:
        serial = run(label, workers=1)
        for workers in (2, 3):
            sharded = run(label, workers=workers)
            assert sharded.idb_facts == serial.idb_facts, (label, workers)
            assert sharded.statistics == serial.statistics, (label, workers)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("label", sorted(WORKLOADS))
def test_parallel_fixpoint(benchmark, record, label, workers):
    result = benchmark(run, label, workers)
    record(benchmark, f"w{workers}", result.statistics)
    benchmark.extra_info["workers"] = workers


@pytest.mark.skipif(
    usable_cores() < 2,
    reason="the scaling gate needs >= 2 usable CPU cores: on one core two "
    "worker processes time-slice the same core, doubling every firing's "
    "wall cost, so no sharding scheme can show a speedup",
)
def test_two_workers_at_least_1_4x_on_portfolio():
    """The E15 acceptance gate, measured directly with perf_counter.

    Pool startup (fork + warm-up ping per evaluation) is *inside* the
    timed region — the speedup must survive the honest end-to-end cost.
    Best-of-three over the whole portfolio smooths scheduler noise, and
    the check runs in the plain suite under ``--benchmark-disable`` too
    (on multi-core hosts).
    """

    def best_portfolio_seconds(workers: int, repeats: int = 3) -> float:
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            for label in WORKLOADS:
                run(label, workers=workers)
            best = min(best, time.perf_counter() - started)
        return best

    run("tc_rand", workers=2)  # warm plans, interning, and the fork path
    serial_seconds = best_portfolio_seconds(workers=1)
    sharded_seconds = best_portfolio_seconds(workers=2)
    ratio = serial_seconds / sharded_seconds
    assert ratio >= 1.4, (
        f"serial {serial_seconds * 1e3:.1f} ms vs 2-worker "
        f"{sharded_seconds * 1e3:.1f} ms: only {ratio:.2f}x"
    )
