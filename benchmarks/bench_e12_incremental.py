"""Experiment E12 — incremental view maintenance vs from-scratch recomputation.

PR 3's service treated every write as a cache apocalypse: recompute all
materialized answers.  This experiment measures what
:mod:`repro.datalog.incremental` saves by *maintaining* the model instead —
counting for non-recursive strata, Delete-and-Rederive for recursive ones,
with insertions riding the compiled semi-naive delta kernels.

The portfolio covers the small-delta regimes a live system actually sees:

* **deep TC, single-fact retract** — a 300-edge chain's transitive closure
  (~45k facts); one maintenance cycle retracts the final edge and re-asserts
  it.  DRed touches only the ~300 facts reachable through that edge, while a
  recomputation pays the full fixpoint twice;
* **wide TC, batch insert** — a dense random graph's closure; one cycle
  attaches a 3-node appendage and removes it again.  The semi-naive delta
  seeded from the insertions derives only the appendage's closure rows;
* **service mixed read/write** — a :class:`DatalogService` driving 90/10
  read/write traffic over magic-rewritten ancestor queries, once with live
  materialized views (writes maintain), once without (writes invalidate and
  reads recompute).

Both maintenance paths are parity-checked against from-scratch evaluation
before anything is timed.  Acceptance gate
(``test_incremental_at_least_5x_faster``, also run in the plain suite under
``--benchmark-disable``): one maintenance cycle must be at least 5x faster
than the equivalent from-scratch recomputation across the micro portfolio.
"""

import time

import pytest

from repro.core.workloads import chain_database, labeled_random_graph, parent_forest
from repro.datalog import Database, DatalogService, MaterializedView, get_engine
from repro.datalog.engine.planner import Planner
from repro.datalog.parser import parse_program
from repro.datalog.transforms import MagicSets

SEMINAIVE = get_engine("seminaive")

TC = parse_program(
    """
    ?tc(X, Y)
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- tc(X, Z), e(Z, Y).
    """
)

ANC_TEMPLATE = """
?anc($who, Y)
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), par(Z, Y).
"""

# label -> (database, change batch): one maintenance cycle applies the batch
# as deletions then re-applies it as insertions (deep_tc) or vice versa
# (wide_tc), so every timed round starts and ends in the same state.
DEEP_EDGE = ("e", ("n299", "n300"))
WIDE_BATCH = [("e", ("w0", 0)), ("e", ("w1", "w0")), ("e", ("w2", "w1"))]

WORKLOADS = {
    "deep_tc_retract": (chain_database(300, relation="e"), [DEEP_EDGE], "delete_first"),
    "wide_tc_insert": (
        labeled_random_graph(60, 240, ("e",), seed=3),
        WIDE_BATCH,
        "insert_first",
    ),
}

VIEWS = {
    label: MaterializedView(TC, database)
    for label, (database, _, _) in WORKLOADS.items()
}

# Warm planners so the recompute baseline pays evaluation only — the same
# footing the views get (their plan is compiled once at build time).
PLANNERS = {label: Planner() for label in WORKLOADS}
for label, (database, _, _) in WORKLOADS.items():
    PLANNERS[label].plan(TC, database)


def maintenance_cycle(label: str):
    """One small-delta write cycle, maintained in place (state-preserving)."""
    database, batch, mode = WORKLOADS[label]
    view = VIEWS[label]
    if mode == "delete_first":
        first = view.apply(deletions=batch)
        second = view.apply(insertions=batch)
    else:
        first = view.apply(insertions=batch)
        second = view.apply(deletions=batch)
    return view, first, second


def recompute_cycle(label: str):
    """The same write cycle answered by two from-scratch evaluations."""
    database, batch, mode = WORKLOADS[label]
    changed = database.copy()
    if mode == "delete_first":
        changed.remove_facts(batch)
    else:
        changed.add_facts(batch)
    first = SEMINAIVE.evaluate(TC, changed, planner=PLANNERS[label])
    second = SEMINAIVE.evaluate(TC, database, planner=PLANNERS[label])
    return first, second


def test_parity_maintained_vs_recomputed():
    """The maintained model equals from-scratch evaluation at both cycle ends."""
    for label, (database, batch, mode) in WORKLOADS.items():
        view = VIEWS[label]
        baseline = SEMINAIVE.evaluate(TC, database)
        assert view.idb_facts() == baseline.idb_facts, label
        changed = database.copy()
        if mode == "delete_first":
            view.apply(deletions=batch)
            changed.remove_facts(batch)
        else:
            view.apply(insertions=batch)
            changed.add_facts(batch)
        mid = SEMINAIVE.evaluate(TC, changed)
        assert view.idb_facts() == mid.idb_facts, label
        if mode == "delete_first":
            view.apply(insertions=batch)
        else:
            view.apply(deletions=batch)
        assert view.idb_facts() == baseline.idb_facts, label


@pytest.mark.parametrize("label", sorted(WORKLOADS))
def test_incremental_maintenance(benchmark, label):
    view, first, second = benchmark(maintenance_cycle, label)
    benchmark.extra_info["model_facts"] = view.model.fact_count()
    benchmark.extra_info["overdeleted"] = first.overdeleted + second.overdeleted
    benchmark.extra_info["rederived"] = first.rederived + second.rederived
    benchmark.extra_info["derived_added"] = first.derived_added + second.derived_added


@pytest.mark.parametrize("label", sorted(WORKLOADS))
def test_full_recompute(benchmark, record, label):
    first, second = benchmark(recompute_cycle, label)
    record(benchmark, "recompute", second.statistics)
    benchmark.extra_info["model_facts"] = len(second.idb_facts.relation("tc"))


# ----------------------------------------------------------------------
# Service-level mixed read/write traffic (90/10)
# ----------------------------------------------------------------------
READS_PER_CYCLE = 36
WRITES_PER_CYCLE = 4
BINDING_POOL = ("john", "p1", "p2", "p5", "p8", "p13", "p21", "p34")


def build_service(materialize: bool) -> DatalogService:
    service = DatalogService(parent_forest(400, seed=17, root_count=4))
    service.register_program("anc", ANC_TEMPLATE, transforms=(MagicSets(),))
    if materialize:
        for who in BINDING_POOL:
            service.materialize("anc", who=who)
    return service


def mixed_traffic(service: DatalogService) -> int:
    answers = 0
    write_index = 0
    for index in range(READS_PER_CYCLE + WRITES_PER_CYCLE):
        if index % 10 == 9:
            # 10% writes: attach and detach a fresh leaf under john.
            fact = ("par", ("john", f"__w{write_index}"))
            if write_index % 2 == 0:
                service.add_facts([fact])
            else:
                service.remove_facts([("par", ("john", f"__w{write_index - 1}"))])
            write_index += 1
        else:
            answers += len(
                service.execute("anc", who=BINDING_POOL[index % len(BINDING_POOL)])
            )
    return answers


def test_parity_service_views_vs_recompute():
    live = build_service(materialize=True)
    cold = build_service(materialize=False)
    assert mixed_traffic(live) == mixed_traffic(cold)
    for who in BINDING_POOL:
        assert live.execute("anc", who=who) == cold.execute("anc", who=who)


def test_service_mixed_rw_incremental(benchmark):
    service = build_service(materialize=True)
    benchmark(mixed_traffic, service)
    benchmark.extra_info["statistics"] = service.statistics()


def test_service_mixed_rw_recompute(benchmark):
    service = build_service(materialize=False)
    benchmark(mixed_traffic, service)
    benchmark.extra_info["statistics"] = service.statistics()


# ----------------------------------------------------------------------
# Acceptance gate: maintenance >=5x faster than recomputation
# ----------------------------------------------------------------------
def test_incremental_at_least_5x_faster():
    """The ISSUE's acceptance gate, measured directly with perf_counter.

    Locally the micro portfolio runs ~30-200x faster maintained; the 5x
    threshold leaves generous headroom for noisy CI machines.  Best-of-three
    over the whole portfolio smooths scheduler noise.
    """

    def best_portfolio_seconds(runner, repeats: int = 3) -> float:
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            for label in WORKLOADS:
                runner(label)
            best = min(best, time.perf_counter() - started)
        return best

    for label in WORKLOADS:  # warm plans, indexes, and view state
        maintenance_cycle(label)
        recompute_cycle(label)
    maintained_seconds = best_portfolio_seconds(maintenance_cycle)
    recomputed_seconds = best_portfolio_seconds(recompute_cycle)
    ratio = recomputed_seconds / maintained_seconds
    assert ratio >= 5.0, (
        f"maintained {maintained_seconds * 1e3:.2f} ms vs recomputed "
        f"{recomputed_seconds * 1e3:.2f} ms: only {ratio:.2f}x"
    )
