"""Experiment E5 — Section 7: magic sets as language quotients on { b1^n b2^n }.

Paper claim: each rule of the a^n b^n program yields the regular expression
Σ* b1 Σ* b2 Σ*; the quotients L(H)/R_i are regular (b1 strings), and the
resulting magic predicate prunes useless rule applications.  When L(H) has no
regular certificate the quotient of a regular envelope R(H) ⊇ L(H) is used.

Reproduced shape: the quotient-derived and the paper's hand-written magic
programs agree with the original on every database and derive far fewer
facts of the binary predicate p as the amount of goal-irrelevant data grows.
"""

import pytest

from repro.core.counterexamples import anbn_program
from repro.core.examples_catalog import section7_transformed
from repro.core.magic_chain import ChainMagic, analyze_magic
from repro.core.workloads import layered_anbn_graph
from repro.datalog import QuerySession

CHAIN = anbn_program()
PAPER = section7_transformed()


def test_quotient_analysis(benchmark):
    analysis = benchmark(analyze_magic, CHAIN)
    benchmark.extra_info["language_exact"] = analysis.language_exact
    benchmark.extra_info["rule_count"] = len(analysis.rule_quotients)
    benchmark.extra_info["magic_dfa_states"] = len(analysis.magic_language().states)


@pytest.mark.parametrize("noise", [0, 4, 12])
def test_plain_vs_quotient_magic_vs_paper_magic(benchmark, record, noise):
    database = layered_anbn_graph(10, noise_branches=noise)
    plain_session = QuerySession(CHAIN, database)
    quotient_session = QuerySession(CHAIN, database).with_transforms(ChainMagic())
    paper_session = QuerySession(PAPER, database)
    quotient_session.transformed_program  # rewrite once, outside the timed region

    def run_all():
        plain = plain_session.evaluate(fresh=True)
        quotient_magic = quotient_session.evaluate(fresh=True)
        paper_magic = paper_session.evaluate(fresh=True)
        assert plain.answers() == quotient_magic.answers() == paper_magic.answers()
        return plain, quotient_magic, paper_magic

    plain, quotient_magic, paper_magic = benchmark(run_all)
    record(benchmark, "plain", plain.statistics)
    record(benchmark, "quotient_magic", quotient_magic.statistics)
    record(benchmark, "paper_magic", paper_magic.statistics)
    benchmark.extra_info["noise_branches"] = noise
    benchmark.extra_info["p_facts_plain"] = plain.statistics.facts_per_predicate.get("p", 0)
    benchmark.extra_info["p_facts_quotient_magic"] = quotient_magic.statistics.facts_per_predicate.get(
        "p", 0
    )
    benchmark.extra_info["p_facts_paper_magic"] = paper_magic.statistics.facts_per_predicate.get("p", 0)
    if noise:
        assert (
            quotient_magic.statistics.facts_per_predicate["p"]
            < plain.statistics.facts_per_predicate["p"]
        )
