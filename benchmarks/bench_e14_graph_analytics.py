"""Experiment E14 — the graph-analytics workload portfolio.

PR 8 grew the language with stratified negation and head aggregates; this
experiment runs the programs those features exist for, at social-graph
scale, through the same engines every earlier experiment measured:

* **reach_pa / unreach_pa** — reachability and its negation-defined
  complement over a ~10^5-edge preferential-attachment graph (the
  anti-join runs against a 30k-fact closed stratum);
* **degree_pa** — grouped ``count`` aggregation over the heavy-tailed
  out-degree distribution of the same graph;
* **sp_grid** — shortest path via recursion into a ``min`` aggregate on
  an 80x80 grid (hop arithmetic is the ``succ`` EDB relation);
* **sg_grid** — nonlinear same-generation recursion on a 20x20 grid;
* **triangle_rand** — canonical-rotation triangle enumeration plus
  grouped and global ``count`` summaries on a dense random digraph;
* **points_to** — the four-rule context-insensitive Andersen analysis on
  a synthetic 1500-statement input, the classic mutual-recursion load.

Generators live in :mod:`repro.datalog.workloads` and are seeded, so every
run (and every engine lane) sees identical EDBs.  The preferential-
attachment family scales past 10^6 edges off-benchmark; the timed instance
stays at ~1.2 * 10^5 edges to keep CI rounds short.

Parity is asserted before anything is timed — compiled vs interpreted and
columnar vs tuple must agree on the model *and* on the hardware-
independent statistics — and those checks also run in the plain suite
under ``--benchmark-disable``, so a semantics regression cannot hide
behind a skipped benchmark job.

Acceptance gate (``test_compiled_at_least_2x_on_graph_portfolio``): the
compiled slot kernels — including the anti-join and aggregate paths this
PR added — must beat the interpreted evaluator by >=2x across a reduced
gate portfolio.  Locally the ratio is ~8x; 2x leaves CI headroom.
"""

import time

import pytest

from repro.datalog.engine import get_engine
from repro.datalog.engine.planner import Planner
from repro.datalog.workloads import (
    add_ordering,
    add_successors,
    grid,
    parse_workload,
    points_to_input,
    preferential_attachment,
    random_graph,
)

SEMINAIVE = get_engine("seminaive")

#: label -> (portfolio program name, EDB) at timed scale.
PA_GRAPH = preferential_attachment(30000, 4, seed=0)
WORKLOADS = {
    "reach_pa": ("reachability", PA_GRAPH),
    "unreach_pa": ("unreachable", PA_GRAPH),
    "degree_pa": ("degree", PA_GRAPH),
    "sp_grid": ("shortest_path", add_successors(grid(80, 80), 160)),
    "sg_grid": ("same_generation", grid(20, 20)),
    "triangle_rand": (
        "triangle",
        add_ordering(random_graph(150, 2500, seed=3), 150),
    ),
    "points_to": ("points_to", points_to_input(150, 1500, seed=5)),
}

# Smaller instances of the same families for the parity sweep and the
# acceptance gate: large enough that the kernels dominate, small enough
# that best-of-three over the whole portfolio stays under a second.
GATE_WORKLOADS = {
    "unreach_pa": ("unreachable", preferential_attachment(2000, 4, seed=0)),
    "sp_grid": ("shortest_path", add_successors(grid(20, 20), 40)),
    "sg_grid": ("same_generation", grid(10, 10)),
    "points_to": ("points_to", points_to_input(60, 500, seed=5)),
}

PROGRAMS = {
    name: parse_workload(name)
    for name in {entry[0] for entry in (*WORKLOADS.values(), *GATE_WORKLOADS.values())}
}

# One warm planner per (workload, layout): the timed region is evaluation
# only, matching how a QuerySession or prepared query runs these programs.
PLANNERS = {}
for label, (name, database) in WORKLOADS.items():
    PLANNERS[label] = Planner()
    PLANNERS[label].plan(PROGRAMS[name], database)

GATE_PLANNERS = {}
for label, (name, database) in GATE_WORKLOADS.items():
    GATE_PLANNERS[label] = Planner()
    GATE_PLANNERS[label].plan(PROGRAMS[name], database)

# The columnar axis for the relational-algebra-friendly workloads: the
# negation pair exercises the batch/vector anti-join lanes.  Aggregate
# programs fall back to the tuple path by design, so they are not mirrored.
COLUMNAR_LABELS = ("reach_pa", "unreach_pa", "sg_grid")
COLUMNAR_WORKLOADS = {
    label: (WORKLOADS[label][0], WORKLOADS[label][1].with_layout("columnar"))
    for label in COLUMNAR_LABELS
}
COLUMNAR_PLANNERS = {}
for label, (name, database) in COLUMNAR_WORKLOADS.items():
    COLUMNAR_PLANNERS[label] = Planner()
    COLUMNAR_PLANNERS[label].plan(PROGRAMS[name], database)


def run(label: str, compiled: bool = True):
    name, database = WORKLOADS[label]
    return SEMINAIVE.evaluate(
        PROGRAMS[name], database, planner=PLANNERS[label], compiled=compiled
    )


def run_gate(label: str, compiled: bool):
    name, database = GATE_WORKLOADS[label]
    return SEMINAIVE.evaluate(
        PROGRAMS[name], database, planner=GATE_PLANNERS[label], compiled=compiled
    )


def run_columnar(label: str):
    name, database = COLUMNAR_WORKLOADS[label]
    return SEMINAIVE.evaluate(
        PROGRAMS[name], database, planner=COLUMNAR_PLANNERS[label], compiled=True
    )


def test_parity_compiled_vs_interpreted():
    """Same model, same cost model — asserted before anything is timed.

    The gate instances cover every language feature the portfolio uses:
    anti-joins (unreachable), min and count aggregates, and nonlinear plus
    mutual recursion.
    """
    for label in GATE_WORKLOADS:
        compiled = run_gate(label, compiled=True)
        interpreted = run_gate(label, compiled=False)
        assert compiled.idb_facts == interpreted.idb_facts, label
        assert (
            compiled.statistics.as_dict() == interpreted.statistics.as_dict()
        ), label


def test_parity_columnar_vs_tuple():
    """Columnar lanes (including the anti-join kernels) match the tuple path."""
    for label in COLUMNAR_LABELS:
        name, database = WORKLOADS[label]
        small = GATE_WORKLOADS.get(label)
        if small is not None:
            name, database = small
        columnar_db = database.with_layout("columnar")
        planner = Planner()
        planner.plan(PROGRAMS[name], columnar_db)
        columnar = SEMINAIVE.evaluate(
            PROGRAMS[name], columnar_db, planner=planner, compiled=True
        )
        tuple_planner = Planner()
        tuple_planner.plan(PROGRAMS[name], database)
        tuple_side = SEMINAIVE.evaluate(
            PROGRAMS[name], database, planner=tuple_planner, compiled=True
        )
        assert columnar.idb_facts == tuple_side.idb_facts, label
        assert (
            columnar.statistics.as_dict() == tuple_side.statistics.as_dict()
        ), label


@pytest.mark.parametrize("label", sorted(WORKLOADS))
def test_graph_workload(benchmark, record, label):
    result = benchmark(run, label)
    record(benchmark, "compiled", result.statistics)
    benchmark.extra_info["idb_facts"] = result.statistics.facts_derived


@pytest.mark.parametrize("label", sorted(GATE_WORKLOADS))
def test_graph_workload_interpreted(benchmark, record, label):
    result = benchmark(run_gate, label, False)
    record(benchmark, "interpreted", result.statistics)


@pytest.mark.parametrize("label", sorted(GATE_WORKLOADS))
def test_graph_workload_gate_compiled(benchmark, record, label):
    result = benchmark(run_gate, label, True)
    record(benchmark, "compiled", result.statistics)


@pytest.mark.parametrize("label", sorted(COLUMNAR_WORKLOADS))
def test_graph_workload_columnar(benchmark, record, label):
    result = benchmark(run_columnar, label)
    record(benchmark, "columnar", result.statistics)


def test_compiled_at_least_2x_on_graph_portfolio():
    """The E14 acceptance gate, measured directly with perf_counter.

    Locally the gate portfolio runs ~8x faster compiled; 2x leaves
    generous headroom for noisy CI machines.  Best-of-three over the whole
    portfolio smooths scheduler noise, and the check runs in the plain
    suite under ``--benchmark-disable`` too.
    """

    def best_portfolio_seconds(compiled: bool, repeats: int = 3) -> float:
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            for label in GATE_WORKLOADS:
                run_gate(label, compiled=compiled)
            best = min(best, time.perf_counter() - started)
        return best

    run_gate("unreach_pa", compiled=True)  # warm plans and indexes
    compiled_seconds = best_portfolio_seconds(compiled=True)
    interpreted_seconds = best_portfolio_seconds(compiled=False)
    ratio = interpreted_seconds / compiled_seconds
    assert ratio >= 2.0, (
        f"compiled {compiled_seconds * 1e3:.2f} ms vs interpreted "
        f"{interpreted_seconds * 1e3:.2f} ms: only {ratio:.2f}x"
    )


def test_scale_sanity():
    """The timed preferential-attachment instance really is ~10^5 edges,
    and its negation workload splits the node domain exactly."""
    assert PA_GRAPH.cardinality("edge") > 100_000
    result = run("unreach_pa")
    reach = len(result.relation("reach"))
    unreach = len(result.relation("unreach"))
    assert reach + unreach == PA_GRAPH.cardinality("node")
