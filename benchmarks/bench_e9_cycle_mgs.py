"""Experiment E9 — Section 6: the CYCLE query, monadic symmetry, and MGS search.

Paper claims (Lemma 6.1, Lemma 6.2, Examples 2.2.1–2.2.3):

* the CYCLE query ``?p(X, X)`` over transitive closure is not expressible by
  any monadic program; the executable consequence is the symmetry property —
  a monadic program assigns the same colours to every node of a directed
  cycle, so it cannot distinguish large cycles that the chain program
  distinguishes;
* graphs containing a directed cycle *are* a monadic generalized spectrum,
  disconnected graphs are one, directed acyclic graphs are not.

Reproduced shape: colour uniformity holds for every monadic program tried on
every cycle size; the bounded closed-walk query distinguishes cycles of
different lengths; the MGS search agrees with the polynomial reference
checkers on all small structures.
"""

import pytest

from repro.core.counterexamples import cycle_length_program, cycle_program
from repro.datalog import QuerySession, parse_program
from repro.logic.ef import colour_sets_on_structure, monadic_colour_uniformity_on_cycle
from repro.logic.mgs import (
    cyclic_graph_spec,
    disconnected_graph_spec,
    has_directed_cycle,
    is_disconnected,
)
from repro.logic.structures import directed_cycle, directed_path, path_with_disjoint_cycle

MONADIC_ATTEMPTS = [
    (
        "reach_forward",
        """
        ?w(X)
        w(X) :- b(X, Y).
        w(X) :- b(X, Y), w(Y).
        """,
    ),
    (
        "two_colours",
        """
        ?w(X)
        w(X) :- b(X, Y), v(Y).
        v(X) :- b(X, Y).
        v(X) :- b(X, Y), w(Y).
        """,
    ),
]


@pytest.mark.parametrize("label,text", MONADIC_ATTEMPTS, ids=[a[0] for a in MONADIC_ATTEMPTS])
@pytest.mark.parametrize("length", [6, 12, 24])
def test_monadic_colour_uniformity_on_cycles(benchmark, label, text, length):
    program = parse_program(text)
    uniform = benchmark(monadic_colour_uniformity_on_cycle, program, length)
    assert uniform
    benchmark.extra_info["cycle_length"] = length


def test_cycle_program_distinguishes_what_monadic_programs_cannot(benchmark):
    chain = cycle_length_program(3)

    def evaluate_on_both():
        on_three = QuerySession(chain, directed_cycle(3).to_database()).answers()
        on_four = QuerySession(chain, directed_cycle(4).to_database()).answers()
        return on_three, on_four

    on_three, on_four = benchmark(evaluate_on_both)
    assert on_three and not on_four


@pytest.mark.parametrize("size", [15, 40])
def test_cycle_query_evaluation_cost(benchmark, record, size):
    session = QuerySession(cycle_program(), path_with_disjoint_cycle(size, size).to_database())
    result = benchmark(session.evaluate, fresh=True)
    assert result.answers()
    record(benchmark, "cycle_query", result.statistics)


SMALL_STRUCTURES = [
    ("path_4", directed_path(4)),
    ("cycle_4", directed_cycle(4)),
    ("path_plus_cycle", path_with_disjoint_cycle(2, 3)),
]


@pytest.mark.parametrize("label,structure", SMALL_STRUCTURES, ids=[s[0] for s in SMALL_STRUCTURES])
def test_mgs_search_agrees_with_reference_checkers(benchmark, label, structure):
    cyclic_spec = cyclic_graph_spec()
    disconnected_spec = disconnected_graph_spec()

    def run_search():
        return cyclic_spec.check(structure), disconnected_spec.check(structure)

    found_cycle, found_disconnection = benchmark(run_search)
    assert found_cycle == has_directed_cycle(structure)
    assert found_disconnection == is_disconnected(structure)
    benchmark.extra_info["domain_size"] = structure.size()
