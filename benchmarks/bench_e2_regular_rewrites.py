"""Experiment E2 — Theorem 3.3(1), "if" direction: regular languages admit monadic rewrites.

Paper claim: when L(H) is regular, the chain program with a constant goal is
finite-query-equivalent to a monadic program (constructed from a left-linear
grammar / finite automaton for L(H)).

Reproduced shape: for a portfolio of regular chain programs the constructed
monadic program returns identical answers and derives an order of magnitude
fewer facts as the database grows; the decision+construction itself is
milliseconds.
"""

import pytest

from repro.core.chain import ChainProgram
from repro.core.examples_catalog import program_a, program_b
from repro.core.propagation import PropagationVerdict, SelectionPropagator
from repro.core.workloads import labeled_random_graph, parent_forest
from repro.datalog import QuerySession

TWO_LETTER = ChainProgram.from_text(
    """
    ?p(c, Y)
    p(X, Y) :- b1(X, Y).
    p(X, Y) :- b1(X, X1), p(X1, Y).
    p(X, Y) :- b2(X, X1), p(X1, Y).
    """
)

MUTUAL = ChainProgram.from_text(
    """
    ?p(c, Y)
    p(X, Y) :- b1(X, X1), q(X1, Y).
    q(X, Y) :- b2(X, Y).
    q(X, Y) :- b2(X, X1), p(X1, Y).
    """
)

CASES = [
    ("A_par_plus", program_a(), parent_forest(250, seed=2, root_count=5)),
    ("B_par_plus", program_b(), parent_forest(250, seed=3, root_count=5)),
    ("two_letter", TWO_LETTER, labeled_random_graph(30, 120, ["b1", "b2"], seed=4)),
    ("mutual_recursion", MUTUAL, labeled_random_graph(30, 120, ["b1", "b2"], seed=5)),
]

for _, chain, database in CASES:
    constants = [c.value for c in chain.goal_constants()]
    for constant in constants:
        database.add_edge(sorted(chain.edb_predicates())[0], constant, "v0")


@pytest.mark.parametrize("label,chain,database", CASES, ids=[c[0] for c in CASES])
def test_decision_and_construction(benchmark, record, label, chain, database):
    propagator = SelectionPropagator()
    result = benchmark(propagator.analyze, chain)
    assert result.verdict == PropagationVerdict.PROPAGATABLE
    benchmark.extra_info["certificate"] = result.regularity.reason
    benchmark.extra_info["dfa_states"] = (
        len(result.certificate_dfa.states) if result.certificate_dfa else 0
    )


@pytest.mark.parametrize("label,chain,database", CASES, ids=[c[0] for c in CASES])
def test_original_vs_rewritten_evaluation(benchmark, record, label, chain, database):
    analysis = SelectionPropagator().analyze(chain)
    original_session = QuerySession(chain, database)
    rewritten_session = analysis.session(database)

    def run_both():
        original = original_session.evaluate(fresh=True)
        rewritten = rewritten_session.evaluate(fresh=True)
        assert original.answers() == rewritten.answers()
        return original, rewritten

    original, rewritten = benchmark(run_both)
    record(benchmark, "original", original.statistics)
    record(benchmark, "rewritten", rewritten.statistics)
    benchmark.extra_info["answers"] = len(original.answers())
