"""Experiment E6 — Proposition 8.2: bounded ⇔ first-order expressible ⇔ finite L(H).

Paper claim: for chain programs the three conditions coincide, and (unlike
general Datalog) the property is decidable.

Reproduced shape: the decision is fast; bounded programs evaluate in a
constant number of semi-naive iterations and constant maximum proof height
as the database grows, unbounded programs do not; the first-order formula of
a bounded program computes the same answers as the Datalog evaluation.
"""

import pytest

from repro.core.boundedness import analyze_boundedness, is_bounded, measure_proof_depths
from repro.core.chain import ChainProgram
from repro.core.counterexamples import cycle_length_program
from repro.core.examples_catalog import program_a, section7_program
from repro.core.workloads import chain_database
from repro.datalog import QuerySession
from repro.logic.fo import evaluate_query
from repro.logic.structures import FiniteStructure

GRANDPARENT = ChainProgram.from_text(
    """
    ?gp(john, Y)
    gp(X, Y) :- par(X, X1), par(X1, Y).
    """
)

SUITE = [
    ("grandparent_bounded", GRANDPARENT, True),
    ("closed_walk_3_bounded", cycle_length_program(3), True),
    ("ancestor_unbounded", program_a(), False),
    ("anbn_unbounded", section7_program(), False),
]


@pytest.mark.parametrize("label,chain,expected", SUITE, ids=[s[0] for s in SUITE])
def test_boundedness_decision(benchmark, label, chain, expected):
    assert benchmark(is_bounded, chain) is expected
    report = analyze_boundedness(chain)
    benchmark.extra_info["bounded"] = report.bounded
    if report.bounded:
        benchmark.extra_info["language_size"] = len(report.language_words)
        benchmark.extra_info["derivation_size_bound"] = report.derivation_size_bound


@pytest.mark.parametrize(
    "label,chain", [("bounded", GRANDPARENT), ("unbounded", program_a())], ids=["bounded", "unbounded"]
)
def test_proof_height_growth(benchmark, label, chain):
    databases = []
    for size in (10, 20, 40):
        database = chain_database(size)
        database.add_edge("par", "john", "n0")
        databases.append(database)

    measurements = benchmark(measure_proof_depths, chain, databases)
    heights = [m.max_proof_height for m in measurements]
    benchmark.extra_info["max_proof_heights"] = heights
    if label == "bounded":
        assert len(set(heights)) == 1
    else:
        assert heights[0] < heights[-1]


def test_first_order_evaluation_matches_datalog(benchmark):
    database = chain_database(25)
    database.add_edge("par", "john", "n0")
    report = analyze_boundedness(GRANDPARENT)
    structure = FiniteStructure.from_database(database, constants={"john": "john"})

    def run_fo():
        return evaluate_query(report.first_order_formula, structure, report.output_variables)

    fo_answers = benchmark(run_fo)
    datalog_answers = QuerySession(GRANDPARENT, database).answers()
    assert fo_answers == datalog_answers
    benchmark.extra_info["answers"] = len(fo_answers)
