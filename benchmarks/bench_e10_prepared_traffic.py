"""Experiment E10 — prepared parameterized queries under traffic.

The paper's rewrites depend on the goal's *binding pattern*, not the
constant, so a production query surface should compile them once and serve
every fresh constant from the compiled form.  This experiment measures
exactly that amortization on a wide chain-forest EDB (many small query
cones, large total database — the traffic regime):

* **ad hoc**: every request builds a constant-goal program, re-runs the
  magic-set rewrite, re-plans, and deep-copies the EDB into a working set;
* **prepared**: the rewrite/plan ran once at prepare time; a request only
  loads one ``__param`` seed fact into an O(1) copy-on-write overlay and
  runs the fixpoint;
* **batched**: ``execute_many`` pushes a whole window of bindings through a
  single shared fixpoint;
* **service**: the :class:`~repro.datalog.service.DatalogService` front
  door with its LRU result cache, the path real traffic takes.

Acceptance gate (checked by ``test_prepared_speedup_at_least_3x``, which
runs in the plain suite as well as under the benchmark harness): prepared
execution of a magic-rewritten recursive query with a fresh constant must
be at least 3x faster than the equivalent ad-hoc QuerySession evaluation.
"""

import itertools
import time

from repro.core.workloads import chain_forest
from repro.datalog import (
    Atom,
    Constant,
    DatalogService,
    QuerySession,
    Variable,
    parse_program,
)
from repro.datalog.transforms import MagicSets

CHAIN_COUNT = 600
CHAIN_LENGTH = 8
DATABASE = chain_forest(CHAIN_COUNT, CHAIN_LENGTH)
ROOTS = [f"r{index}" for index in range(CHAIN_COUNT)]

TEMPLATE = parse_program(
    """
    ?anc($who, Y)
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- anc(X, Z), par(Z, Y).
    """
)
RULES_ONLY = parse_program(
    """
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- anc(X, Z), par(Z, Y).
    """
)


def adhoc_answers(constant: str):
    """The pre-redesign path: constant baked in, rewrite + plan per request."""
    program = RULES_ONLY.with_goal(Atom("anc", (Constant(constant), Variable("Y"))))
    return QuerySession(program, DATABASE).with_transforms(MagicSets()).answers()


def make_prepared():
    prepared = QuerySession(TEMPLATE, DATABASE).with_transforms(MagicSets()).prepare()
    prepared.plan()  # compile up front, outside any timed region
    return prepared


def test_parity_prepared_vs_adhoc():
    """Same answers on every path before anything is timed."""
    prepared = make_prepared()
    for constant in (ROOTS[0], ROOTS[7], ROOTS[599]):
        expected = adhoc_answers(constant)
        assert len(expected) == CHAIN_LENGTH
        assert prepared.answers(who=constant) == expected
    batch = prepared.execute_many([{"who": who} for who in ROOTS[:16]])
    assert batch == [adhoc_answers(who) for who in ROOTS[:16]]


def test_adhoc_magic_fresh_constant(benchmark):
    counter = itertools.count()

    def run():
        return adhoc_answers(ROOTS[next(counter) % CHAIN_COUNT])

    answers = benchmark(run)
    benchmark.extra_info["answers_per_query"] = len(answers)
    benchmark.extra_info["database_facts"] = DATABASE.fact_count()


def test_prepared_magic_fresh_constant(benchmark):
    prepared = make_prepared()
    counter = itertools.count()

    def run():
        return prepared.answers(who=ROOTS[next(counter) % CHAIN_COUNT])

    answers = benchmark(run)
    benchmark.extra_info["answers_per_query"] = len(answers)
    benchmark.extra_info["database_facts"] = DATABASE.fact_count()


def test_prepared_execute_many_window(benchmark):
    """A 32-binding window through one shared fixpoint."""
    prepared = make_prepared()
    assert prepared.supports_shared_execution
    counter = itertools.count()

    def run():
        start = next(counter) * 32
        window = [
            {"who": ROOTS[(start + offset) % CHAIN_COUNT]} for offset in range(32)
        ]
        return prepared.execute_many(window)

    results = benchmark(run)
    benchmark.extra_info["window_size"] = 32
    benchmark.extra_info["answers_per_query"] = len(results[0])


def test_service_cached_traffic(benchmark):
    """The DatalogService path with a warm LRU cache (32 distinct constants)."""
    service = DatalogService(DATABASE, cache_size=64)
    service.register_program("anc", TEMPLATE, transforms=(MagicSets(),))
    pool = ROOTS[:32]
    for who in pool:  # warm the cache
        service.execute("anc", who=who)
    counter = itertools.count()

    def run():
        return service.execute("anc", who=pool[next(counter) % len(pool)])

    answers = benchmark(run)
    statistics = service.statistics()
    benchmark.extra_info["answers_per_query"] = len(answers)
    benchmark.extra_info["cache_hits"] = statistics["cache_hits"]
    benchmark.extra_info["engine_executions"] = statistics["executions"]


def test_prepared_speedup_at_least_3x():
    """The ISSUE's acceptance gate, measured directly with perf_counter.

    Locally the gap is ~7-8x; the 3x threshold leaves >2x headroom for
    noisy CI machines.  Best-of-three averaging smooths scheduler noise.
    """
    prepared = make_prepared()
    prepared.answers(who=ROOTS[0])  # warm

    def best_average_seconds(run, calls=60, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            for index in range(calls):
                run(index)
            best = min(best, (time.perf_counter() - started) / calls)
        return best

    prepared_seconds = best_average_seconds(
        lambda index: prepared.answers(who=ROOTS[index % CHAIN_COUNT])
    )
    adhoc_seconds = best_average_seconds(
        lambda index: adhoc_answers(ROOTS[index % CHAIN_COUNT])
    )
    speedup = adhoc_seconds / prepared_seconds
    assert speedup >= 3.0, (
        f"prepared {prepared_seconds * 1e3:.3f} ms vs adhoc "
        f"{adhoc_seconds * 1e3:.3f} ms: only {speedup:.1f}x"
    )
