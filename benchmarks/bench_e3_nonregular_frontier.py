"""Experiment E3 — Theorem 3.3(1), "only if" direction and the undecidable frontier.

Paper claim: for constant goals, propagation is possible iff L(H) is regular;
regularity of a CFL is undecidable (Corollary 3.4), so any procedure is
necessarily partial.  The library's decision procedure must (i) answer
NOT_PROPAGATABLE with an explicit proof on the registered non-regular
families, (ii) answer PROPAGATABLE with a certificate on the decidably
regular families, and (iii) answer UNKNOWN — never a wrong definite answer —
on self-embedding programs outside the registry.

Reproduced shape: verdict distribution over a program portfolio plus the cost
of the analysis itself.
"""

import pytest

from repro.core.chain import ChainProgram
from repro.core.counterexamples import anbn_program
from repro.core.examples_catalog import program_a, program_c, same_generation_program
from repro.core.propagation import PropagationVerdict, SelectionPropagator

PORTFOLIO = [
    ("regular_left_linear", program_a(), PropagationVerdict.PROPAGATABLE),
    ("regular_unary_nonlinear", program_c(), PropagationVerdict.PROPAGATABLE),
    ("nonregular_anbn", anbn_program(), PropagationVerdict.NOT_PROPAGATABLE),
    ("nonregular_same_generation", same_generation_program(), None),
    (
        "self_embedding_three_letters",
        ChainProgram.from_text(
            """
            ?p(c, Y)
            p(X, Y) :- b1(X, X1), b3(X1, Y).
            p(X, Y) :- b1(X, X1), p(X1, Y1), b2(Y1, Y).
            """
        ),
        None,
    ),
]


@pytest.mark.parametrize("label,chain,expected", PORTFOLIO, ids=[p[0] for p in PORTFOLIO])
def test_frontier_verdicts(benchmark, label, chain, expected):
    propagator = SelectionPropagator()
    result = benchmark(propagator.analyze, chain)
    benchmark.extra_info["verdict"] = result.verdict.value
    benchmark.extra_info["reason"] = result.reason
    if expected is not None:
        assert result.verdict == expected
    else:
        # The frontier: a sound procedure may say NOT_PROPAGATABLE (with a proof)
        # or UNKNOWN, but never PROPAGATABLE for these non-regular languages.
        assert result.verdict in (
            PropagationVerdict.NOT_PROPAGATABLE,
            PropagationVerdict.UNKNOWN,
        )


def test_full_portfolio_analysis(benchmark):
    propagator = SelectionPropagator()

    def analyse_all():
        return [propagator.analyze(chain).verdict for _, chain, _ in PORTFOLIO]

    verdicts = benchmark(analyse_all)
    benchmark.extra_info["verdict_counts"] = {
        verdict.value: verdicts.count(verdict) for verdict in set(verdicts)
    }
