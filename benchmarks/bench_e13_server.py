"""Experiment E13 — the durable HTTP server under multi-process load.

PR 6 wraps the :class:`~repro.datalog.DatalogService` in a durable asyncio
HTTP front end (``repro serve``): every acknowledged write hits a checksummed
write-ahead log before it is applied, snapshots bound replay time, and
admission control sheds load with ``429`` instead of queueing unboundedly.
This experiment prices that stack end to end:

* **execute round-trip** — one keep-alive ``/execute`` of the materialized
  binding against the *subprocess* server (real socket, WAL open,
  ``--fsync batch``) and against an in-process comparable (same HTTP server
  on a thread, ``fsync="never"``).  The pair isolates what the process
  boundary plus durability cost per request;
* **mixed traffic cycle** — 36 reads / 4 writes (90/10) over one keep-alive
  connection, the service-level traffic shape E12 established, now paying
  HTTP parsing, thread-pool dispatch, and WAL appends;
* **multi-process load** — the headline: ``run_load`` drives the server
  from 2 genuinely concurrent client processes over real sockets and
  reports p50/p95/p99 per operation class plus throughput.

Acceptance gates (all also run in the plain suite under
``--benchmark-disable``):

* **parity before timing** — the server's answers for every source node
  equal an uninterrupted in-process :class:`DatalogService` run of the same
  workload;
* **recovery replay** — ``SIGKILL`` mid-run, restart on the same data
  directory: the replayed model answers identically and reports the same
  fact count (the durability contract, measured at the HTTP boundary);
* **latency** — the subprocess server's p95 read latency under mixed 90/10
  traffic stays within 3x of the in-process comparable (floored against CI
  timer noise), so durability never costs an order of magnitude;
* **deadline guardrail** — a deliberately unbounded query (full transitive
  closure of a 500-node ring) submitted with a 50 ms request deadline is
  shed with ``408`` at its next cooperative checkpoint, while concurrent
  well-behaved reads keep their p95 within the same 3x bound — a runaway
  query cannot capture the server.
"""

import asyncio
import http.client
import json
import os
import random
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.datalog import Database, DatalogService
from repro.datalog.server.durable import DurableDatalogService
from repro.datalog.server.http import DatalogHTTPServer
from repro.datalog.server.runner import (
    MATERIALIZED_SOURCE,
    WORKLOAD_PROGRAM,
    percentile,
    run_load,
    setup_workload,
    workload_edges,
)

SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")

NODES = 24
SEED = 7
LOAD_PROCESSES = 2
LOAD_REQUESTS = 150
MIXED_READS = 36
MIXED_WRITES = 4
#: p95 floor (seconds) for the 3x gate: below this, the comparison measures
#: scheduler jitter on a busy CI box, not the server.
LATENCY_FLOOR = 0.002


# ----------------------------------------------------------------------
# Server fixtures: one subprocess server and one in-process comparable
# ----------------------------------------------------------------------
def start_subprocess_server(data_dir, *extra):
    """``repro serve`` as a child process; returns (process, port)."""
    env = dict(os.environ, PYTHONPATH=SRC_DIR)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", str(data_dir), *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    line = process.stdout.readline()
    match = re.match(r"READY (\S+) (\d+)", line)
    assert match, (line, process.stderr.read() if process.poll() is not None else "")
    return process, int(match.group(2))


class InProcessServer:
    """The same DatalogHTTPServer on an event-loop thread, no durability."""

    def __init__(self, data_dir):
        self.durable = DurableDatalogService(
            data_dir, fsync="never", snapshot_every=10_000
        )
        self.server = DatalogHTTPServer(self.durable, port=0)
        self.loop = asyncio.new_event_loop()
        self._stop = None
        started = threading.Event()

        async def main():
            self._stop = asyncio.Event()
            await self.server.start()
            started.set()
            await self.server.serve_until(self._stop)

        def run():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(main())

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert started.wait(10), "in-process server did not start"

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self) -> None:
        if self.thread.is_alive():
            self.loop.call_soon_threadsafe(self._stop.set)
            self.thread.join(timeout=30)
        self.loop.close()


class KeepAliveClient:
    """One persistent connection; reconnects once if the server dropped it."""

    def __init__(self, port: int):
        self._port = port
        self._conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)

    def post(self, path: str, body: dict):
        payload = json.dumps(body)
        headers = {"Content-Type": "application/json"}
        try:
            self._conn.request("POST", path, payload, headers)
            response = self._conn.getresponse()
            data = response.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            self._conn.close()
            self._conn = http.client.HTTPConnection(
                "127.0.0.1", self._port, timeout=30
            )
            self._conn.request("POST", path, payload, headers)
            response = self._conn.getresponse()
            data = response.read()
        return response.status, json.loads(data or b"{}")

    def close(self) -> None:
        self._conn.close()


@pytest.fixture(scope="module")
def live_server(tmp_path_factory):
    """The system under test: subprocess, durable WAL, batch fsync."""
    data_dir = tmp_path_factory.mktemp("e13_server") / "data"
    process, port = start_subprocess_server(
        data_dir, "--fsync", "batch", "--sync-interval", "0.05"
    )
    setup_workload("127.0.0.1", port, nodes=NODES, seed=SEED)
    yield port
    process.send_signal(signal.SIGTERM)
    process.wait(timeout=30)


@pytest.fixture(scope="module")
def inprocess_server(tmp_path_factory):
    """The comparable: same HTTP stack, same process, no fsync."""
    handle = InProcessServer(tmp_path_factory.mktemp("e13_inproc") / "data")
    setup_workload("127.0.0.1", handle.port, nodes=NODES, seed=SEED)
    yield handle
    handle.stop()


def reference_service() -> DatalogService:
    """An uninterrupted in-memory run of exactly the fixture workload."""
    service = DatalogService(Database())
    service.register_program("reach", WORKLOAD_PROGRAM)
    service.add_facts(
        [("edge", tuple(edge)) for edge in workload_edges(NODES, SEED)]
    )
    service.materialize("reach", {"src": MATERIALIZED_SOURCE})
    return service


# ----------------------------------------------------------------------
# Gate: parity before timing
# ----------------------------------------------------------------------
def test_parity_server_vs_inprocess_reference(live_server):
    """Every source node answers identically over HTTP and in memory."""
    reference = reference_service()
    client = KeepAliveClient(live_server)
    try:
        for i in range(NODES):
            source = f"n{i}"
            status, body = client.post(
                "/execute", {"name": "reach", "params": {"src": source}}
            )
            assert status == 200, (source, body)
            served = {tuple(answer) for answer in body["answers"]}
            assert served == reference.execute("reach", {"src": source}), source
    finally:
        client.close()


# ----------------------------------------------------------------------
# Gate: SIGKILL recovery replays the exact model
# ----------------------------------------------------------------------
def test_recovery_replay_restores_exact_model(tmp_path):
    """Kill -9 after acknowledged writes; the restart must answer identically."""
    data_dir = tmp_path / "data"
    process, port = start_subprocess_server(data_dir, "--fsync", "always")
    client = KeepAliveClient(port)
    try:
        setup_workload("127.0.0.1", port, nodes=NODES, seed=SEED)
        # A post-setup write the snapshotless WAL replay must not lose.
        assert client.post(
            "/add_facts", {"facts": [["edge", ["n1", "n17"]]]}
        ) == (200, {"added": 1})
        reference = {}
        for i in range(NODES):
            status, body = client.post(
                "/execute", {"name": "reach", "params": {"src": f"n{i}"}}
            )
            assert status == 200
            reference[f"n{i}"] = body["answers"]
    finally:
        client.close()
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)

    restarted, port = start_subprocess_server(data_dir)
    client = KeepAliveClient(port)
    try:
        for source, answers in reference.items():
            status, body = client.post(
                "/execute", {"name": "reach", "params": {"src": source}}
            )
            assert status == 200
            assert body["answers"] == answers, source
    finally:
        client.close()
        restarted.send_signal(signal.SIGTERM)
        assert restarted.wait(timeout=30) == 0


# ----------------------------------------------------------------------
# Mixed 90/10 traffic over one keep-alive connection
# ----------------------------------------------------------------------
def mixed_cycle(client: KeepAliveClient, rng: random.Random):
    """36 reads + 4 writes, state-preserving (the scratch edge is added and
    removed twice), returning the read latencies."""
    read_latencies = []
    write_index = 0
    for index in range(MIXED_READS + MIXED_WRITES):
        if index % 10 == 9:
            path = "/add_facts" if write_index % 2 == 0 else "/remove_facts"
            status, body = client.post(
                path, {"facts": [["edge", ["__bench", "__scratch"]]]}
            )
            assert status == 200, body
            write_index += 1
        else:
            if rng.random() < 0.5:
                source = MATERIALIZED_SOURCE
            else:
                source = f"n{rng.randrange(NODES)}"
            start = time.perf_counter()
            status, body = client.post(
                "/execute", {"name": "reach", "params": {"src": source}}
            )
            read_latencies.append(time.perf_counter() - start)
            assert status == 200, body
    return read_latencies


def measure_read_p95(port: int, cycles: int = 5) -> float:
    client = KeepAliveClient(port)
    try:
        rng = random.Random(SEED)
        mixed_cycle(client, rng)  # warm the cache and the connection
        samples = []
        for _ in range(cycles):
            samples.extend(mixed_cycle(client, rng))
        return percentile(samples, 0.95)
    finally:
        client.close()


# ----------------------------------------------------------------------
# Gate: durable server p95 within 3x of the in-process comparable
# ----------------------------------------------------------------------
def test_read_p95_within_3x_of_inprocess(live_server, inprocess_server):
    served_p95 = measure_read_p95(live_server)
    inprocess_p95 = measure_read_p95(inprocess_server.port)
    floor = max(inprocess_p95, LATENCY_FLOOR)
    assert served_p95 <= 3.0 * floor, (
        f"subprocess p95 {served_p95 * 1e3:.2f} ms vs in-process p95 "
        f"{inprocess_p95 * 1e3:.2f} ms (floor {floor * 1e3:.2f} ms): "
        f"{served_p95 / floor:.2f}x exceeds the 3x gate"
    )


# ----------------------------------------------------------------------
# Gate: a 50ms deadline sheds the runaway query, reads stay fast
# ----------------------------------------------------------------------
RUNAWAY_PROGRAM = """\
?tc(X, Y)
tc(X, Y) :- link(X, Y).
tc(X, Y) :- tc(X, Z), link(Z, Y).
"""
RUNAWAY_NODES = 500  # full TC = 250k facts, ~1s: far beyond a 50ms deadline
DEADLINE = 0.05
#: p95 floor (seconds) for the guardrail's 3x bound.  While the runaway
#: burns its 50ms budget it holds the GIL between checkpoints, so a cheap
#: cached read (~2ms unloaded) waits behind interpreter timeslices
#: (sys.getswitchinterval() is 5ms); the gate asserts reads stay in
#: single-digit milliseconds — not seconds — under attack, not that the
#: GIL went away.
GUARDRAIL_FLOOR = 0.005


def test_deadline_guardrail_sheds_runaway_reads_stay_fast(tmp_path):
    """The runaway query returns 408 at ~the deadline; concurrent reads of
    the ordinary workload keep p95 within the same 3x bound as unloaded."""
    process, port = start_subprocess_server(tmp_path / "data", "--fsync", "batch")
    try:
        setup_workload("127.0.0.1", port, nodes=NODES, seed=SEED)
        client = KeepAliveClient(port)
        try:
            status, body = client.post(
                "/register", {"name": "tc", "source": RUNAWAY_PROGRAM}
            )
            assert status == 200, body
            status, body = client.post(
                "/add_facts",
                {
                    "facts": [
                        ["link", [f"n{i}", f"n{(i + 1) % RUNAWAY_NODES}"]]
                        for i in range(RUNAWAY_NODES)
                    ]
                },
            )
            assert status == 200, body
        finally:
            client.close()

        def read_p95(requests: int) -> float:
            reader = KeepAliveClient(port)
            try:
                rng = random.Random(SEED)
                samples = []
                for _ in range(requests):
                    source = f"n{rng.randrange(NODES)}"
                    start = time.perf_counter()
                    status, body = reader.post(
                        "/execute", {"name": "reach", "params": {"src": source}}
                    )
                    samples.append(time.perf_counter() - start)
                    assert status == 200, body
                return percentile(samples, 0.95)
            finally:
                reader.close()

        read_p95(20)  # warm the cache and the interpreter
        baseline_p95 = read_p95(100)

        shed = []

        def hammer():
            heavy = KeepAliveClient(port)
            try:
                for _ in range(6):
                    status, body = heavy.post(
                        "/execute",
                        {"name": "tc", "fresh": True, "timeout": DEADLINE},
                    )
                    shed.append((status, body.get("error", "")))
            finally:
                heavy.close()

        runaway = threading.Thread(target=hammer)
        runaway.start()
        loaded_p95 = read_p95(100)
        runaway.join(timeout=60)
        assert not runaway.is_alive(), "runaway client never finished"

        # Every runaway attempt was shed with 408 at a checkpoint.
        assert shed and all(status == 408 for status, _ in shed), shed
        assert all("deadline" in error for _, error in shed), shed

        floor = max(baseline_p95, GUARDRAIL_FLOOR)
        assert loaded_p95 <= 3.0 * floor, (
            f"read p95 under runaway load {loaded_p95 * 1e3:.2f} ms vs "
            f"unloaded {baseline_p95 * 1e3:.2f} ms (floor {floor * 1e3:.2f} ms): "
            f"{loaded_p95 / floor:.2f}x exceeds the 3x guardrail"
        )
    finally:
        process.send_signal(signal.SIGTERM)
        process.wait(timeout=30)


# ----------------------------------------------------------------------
# Timed: per-request round-trips and the mixed cycle
# ----------------------------------------------------------------------
def test_server_execute_roundtrip(benchmark, live_server):
    client = KeepAliveClient(live_server)
    body = {"name": "reach", "params": {"src": MATERIALIZED_SOURCE}}
    try:
        status, answers = client.post("/execute", body)  # warm
        assert status == 200
        benchmark(client.post, "/execute", body)
        benchmark.extra_info["answers"] = len(answers["answers"])
        benchmark.extra_info["transport"] = "subprocess+wal"
    finally:
        client.close()


def test_inprocess_execute_roundtrip(benchmark, inprocess_server):
    client = KeepAliveClient(inprocess_server.port)
    body = {"name": "reach", "params": {"src": MATERIALIZED_SOURCE}}
    try:
        status, answers = client.post("/execute", body)
        assert status == 200
        benchmark(client.post, "/execute", body)
        benchmark.extra_info["answers"] = len(answers["answers"])
        benchmark.extra_info["transport"] = "thread+no-fsync"
    finally:
        client.close()


def test_server_mixed_traffic_cycle(benchmark, live_server):
    client = KeepAliveClient(live_server)
    rng = random.Random(SEED)
    try:
        mixed_cycle(client, rng)  # warm
        latencies = benchmark(mixed_cycle, client, rng)
        benchmark.extra_info["reads_per_cycle"] = MIXED_READS
        benchmark.extra_info["writes_per_cycle"] = MIXED_WRITES
        benchmark.extra_info["read_p95_seconds"] = percentile(latencies, 0.95)
    finally:
        client.close()


# ----------------------------------------------------------------------
# Timed headline: multi-process load over real sockets
# ----------------------------------------------------------------------
def test_server_load_bench(benchmark, live_server):
    """2 client processes x 150 mixed requests; percentiles ride extra_info
    so ``scripts/bench_medians.py`` can build the ``server`` summary."""

    def one_run():
        return run_load(
            "127.0.0.1",
            live_server,
            processes=LOAD_PROCESSES,
            requests_per_process=LOAD_REQUESTS,
            setup=False,
            seed=SEED,
        )

    report = benchmark.pedantic(one_run, rounds=1, iterations=1)
    assert report.errors == 0, report
    assert report.processes == LOAD_PROCESSES
    benchmark.extra_info.update(report.as_dict())
