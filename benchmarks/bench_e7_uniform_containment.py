"""Experiment E7 — Proposition 8.1: containment of uniform chain programs.

Paper claim: finite query containment/equivalence of uniform chain programs
is undecidable in general (via sentential forms), but decidable for a single
IDB.  The library's decidable fragments: containment into a strongly regular
right-hand side (Bar-Hillel), finite languages, and bounded refutation
otherwise.

Reproduced shape: the decidable fragments answer definitively and quickly;
the general case yields refutations or honest UNKNOWNs, never a wrong
definite answer (cross-checked against bounded word comparison).
"""

import pytest

from repro.core.chain import ChainProgram
from repro.core.counterexamples import anbn_program
from repro.core.examples_catalog import program_a, program_b, program_c
from repro.core.uniform import (
    ContainmentVerdict,
    is_uniform,
    language_containment,
    uniformize,
)

ENVELOPE_PROGRAM = ChainProgram.from_text(
    """
    ?q(c, Y)
    q(X, Y) :- b1(X, X1), r(X1, Y).
    q(X, Y) :- b1(X, X1), q(X1, Y).
    r(X, Y) :- b2(X, Y).
    r(X, Y) :- b2(X, X1), r(X1, Y).
    """
)

SINGLE_PAR = ChainProgram.from_text("?p(c, Y)\np(X, Y) :- par(X, Y).")

CASES = [
    ("A_in_B", program_a(), program_b(), ContainmentVerdict.CONTAINED),
    ("B_in_A", program_b(), program_a(), ContainmentVerdict.CONTAINED),
    ("single_in_A", SINGLE_PAR, program_a(), ContainmentVerdict.CONTAINED),
    ("A_not_in_single", program_a(), SINGLE_PAR, ContainmentVerdict.NOT_CONTAINED),
    ("anbn_in_envelope", anbn_program(), ENVELOPE_PROGRAM, ContainmentVerdict.CONTAINED),
    ("envelope_not_in_anbn", ENVELOPE_PROGRAM, anbn_program(), ContainmentVerdict.NOT_CONTAINED),
    ("C_in_A_nonlinear", program_c(), program_a(), ContainmentVerdict.CONTAINED),
]


@pytest.mark.parametrize("label,left,right,expected", CASES, ids=[c[0] for c in CASES])
def test_containment_fragments(benchmark, label, left, right, expected):
    result = benchmark(language_containment, left, right)
    assert result.verdict == expected
    benchmark.extra_info["verdict"] = result.verdict.value
    benchmark.extra_info["method"] = result.method
    if result.witness is not None:
        benchmark.extra_info["witness"] = " ".join(result.witness)


def test_uniformization(benchmark):
    uniform = benchmark(uniformize, program_a())
    assert is_uniform(uniform)
    benchmark.extra_info["rules"] = len(uniform.rules)


def test_uniform_containment_is_finer_than_plain_containment(benchmark):
    left, right = uniformize(program_a()), uniformize(program_b())

    def check():
        return language_containment(left, right), language_containment(right, left)

    forward, backward = benchmark(check)
    # Programs A and B are finite-query equivalent, but their *uniform* companions are
    # not: the base_anc placeholder records where the recursion bottoms out, and the
    # left- and right-linear recursions bottom out at opposite ends ("base_anc par ..."
    # versus "... par base_anc").  Uniform containment is a strictly finer notion —
    # which is exactly why Proposition 8.1 can make it decidable for a single IDB
    # while plain chain containment stays undecidable.
    assert forward.verdict == ContainmentVerdict.NOT_CONTAINED
    assert backward.verdict == ContainmentVerdict.NOT_CONTAINED
    benchmark.extra_info["forward_witness"] = " ".join(forward.witness or ())
    benchmark.extra_info["backward_witness"] = " ".join(backward.witness or ())
