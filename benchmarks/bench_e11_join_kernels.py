"""Experiment E11 — compiled slot-based join kernels vs the interpreted path.

PR 2's planner fixed the join *order*; this experiment measures what the
executor (:mod:`repro.datalog.engine.executor`) saves by no longer
*interpreting* that order per candidate tuple: no substitution-dict copy,
no ``Constant`` wrapping, no per-call probe-column rediscovery — the inner
loop of every bottom-up fixpoint becomes tuple indexing and list writes.

The portfolio is deliberately join-heavy and recursive:

* **same-generation** — the classic ``up``/``flat``/``down`` 3-atom
  recursive join over a balanced tree;
* **triangle** — a non-recursive 3-way self-join (``e(X,Y), e(Y,Z),
  e(Z,X)``) over a dense random graph, the pure join-microkernel case;
* **wide transitive closure** — linear recursion over a random graph whose
  closure is a large fraction of the square;
* **deep transitive closure** — a 300-edge chain: hundreds of fixpoint
  rounds with O(1)-sized late deltas over an ever-growing head relation,
  the regime where any per-round cost proportional to the full relation
  (e.g. a snapshot rebuild) would swamp the kernel win.

Both paths run the *same* engine (semi-naive), the same plans, the same
delta variants, and report the same hardware-independent statistics; only
the per-candidate evaluator differs (``compiled=True`` vs
``compiled=False``).

Acceptance gate (checked by ``test_compiled_at_least_2x_faster``, which
also runs in the plain suite under ``--benchmark-disable``): the compiled
kernels must be at least 2x faster than the interpreted ``match_body``
path across the portfolio, measured in-run.
"""

import time

import pytest

from repro.core.examples_catalog import same_generation_program
from repro.datalog.columnar.vector import np as vector_numpy
from repro.core.workloads import (
    chain_database,
    labeled_random_graph,
    same_generation_database,
)
from repro.datalog.engine import get_engine
from repro.datalog.engine.planner import Planner
from repro.datalog.parser import parse_program

SEMINAIVE = get_engine("seminaive")

TRIANGLE = parse_program(
    """
    ?tri(X, Y, Z)
    tri(X, Y, Z) :- e(X, Y), e(Y, Z), e(Z, X).
    """
)
WIDE_TC = parse_program(
    """
    ?tc(X, Y)
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- tc(X, Z), e(Z, Y).
    """
)

WORKLOADS = {
    "same_generation": (
        same_generation_program().program,
        same_generation_database(depth=6, branching=2),
    ),
    "triangle": (TRIANGLE, labeled_random_graph(80, 640, ("e",), seed=5)),
    "wide_tc": (WIDE_TC, labeled_random_graph(60, 240, ("e",), seed=3)),
    "deep_tc": (WIDE_TC, chain_database(300, relation="e")),
}

# One warm planner per workload: both paths reuse the identical compiled
# plan (and kernels), so the timed region is evaluation only — exactly the
# situation inside a QuerySession or a prepared query.
PLANNERS = {label: Planner() for label in WORKLOADS}
for label, (program, database) in WORKLOADS.items():
    PLANNERS[label].plan(program, database)

# The columnar axis (PR 7): the same workloads mirrored into the interned
# columnar layout, evaluated by the batch kernels (vectorized lane for
# binary heads, packed-bigint lane for the arity-3 triangle).  Separate
# warm planners because columnar plans are column-statistics-aware.
COLUMNAR_WORKLOADS = {
    label: (program, database.with_layout("columnar"))
    for label, (program, database) in WORKLOADS.items()
}
COLUMNAR_PLANNERS = {label: Planner() for label in COLUMNAR_WORKLOADS}
for label, (program, database) in COLUMNAR_WORKLOADS.items():
    COLUMNAR_PLANNERS[label].plan(program, database)

#: The workloads the ISSUE's >=3x columnar gate is about: transitive
#: closure both wide (few rounds, big deltas) and deep (300 rounds, small
#: deltas over a growing head relation).
COLUMNAR_GATE_LABELS = ("wide_tc", "deep_tc")


def run(label: str, compiled: bool):
    program, database = WORKLOADS[label]
    return SEMINAIVE.evaluate(
        program, database, planner=PLANNERS[label], compiled=compiled
    )


def run_columnar(label: str):
    program, database = COLUMNAR_WORKLOADS[label]
    return SEMINAIVE.evaluate(
        program, database, planner=COLUMNAR_PLANNERS[label], compiled=True
    )


def test_parity_compiled_vs_interpreted():
    """Same model, same answers, same cost model — before anything is timed."""
    for label in WORKLOADS:
        compiled = run(label, compiled=True)
        interpreted = run(label, compiled=False)
        assert compiled.answers() == interpreted.answers(), label
        assert compiled.idb_facts == interpreted.idb_facts, label
        assert (
            compiled.statistics.as_dict() == interpreted.statistics.as_dict()
        ), label


@pytest.mark.parametrize("label", sorted(WORKLOADS))
def test_compiled_kernels(benchmark, record, label):
    result = benchmark(run, label, True)
    record(benchmark, "compiled", result.statistics)
    benchmark.extra_info["answers"] = len(result.answers())


@pytest.mark.parametrize("label", sorted(WORKLOADS))
def test_interpreted_match_body(benchmark, record, label):
    result = benchmark(run, label, False)
    record(benchmark, "interpreted", result.statistics)
    benchmark.extra_info["answers"] = len(result.answers())


def test_parity_columnar_vs_tuple_kernels():
    """Columnar batch kernels are observationally the tuple kernels.

    Same model, same answers, same statistics — asserted before any timing,
    and in the plain suite under ``--benchmark-disable``, so a semantics
    regression can never hide behind a benchmark run being skipped.
    """
    for label in WORKLOADS:
        columnar = run_columnar(label)
        tuple_side = run(label, compiled=True)
        assert columnar.answers() == tuple_side.answers(), label
        assert columnar.idb_facts == tuple_side.idb_facts, label
        assert (
            columnar.statistics.as_dict() == tuple_side.statistics.as_dict()
        ), label


@pytest.mark.parametrize("label", sorted(COLUMNAR_WORKLOADS))
def test_columnar_kernels(benchmark, record, label):
    result = benchmark(run_columnar, label)
    record(benchmark, "columnar", result.statistics)
    benchmark.extra_info["answers"] = len(result.answers())


@pytest.mark.skipif(
    vector_numpy is None,
    reason="the >=3x columnar gate is about the NumPy vector lane",
)
def test_columnar_at_least_3x_on_wide_deep_tc():
    """The PR 7 acceptance gate, measured directly with perf_counter.

    Columnar batch kernels must be >=3x faster than the compiled tuple
    kernels on the wide and deep transitive-closure workloads.  Locally
    the pair runs ~4-8x faster columnar; best-of-five smooths scheduler
    noise on CI machines.
    """

    def best_pair_seconds(runner, repeats: int = 5) -> float:
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            for label in COLUMNAR_GATE_LABELS:
                runner(label)
            best = min(best, time.perf_counter() - started)
        return best

    for label in COLUMNAR_GATE_LABELS:  # warm plans, indexes, intern tables
        run_columnar(label)
        run(label, compiled=True)
    columnar_seconds = best_pair_seconds(run_columnar)
    tuple_seconds = best_pair_seconds(lambda label: run(label, compiled=True))
    ratio = tuple_seconds / columnar_seconds
    assert ratio >= 3.0, (
        f"columnar {columnar_seconds * 1e3:.2f} ms vs tuple kernels "
        f"{tuple_seconds * 1e3:.2f} ms: only {ratio:.2f}x"
    )


def test_compiled_at_least_2x_faster():
    """The ISSUE's acceptance gate, measured directly with perf_counter.

    Locally the portfolio runs ~5-8x faster compiled; the 2x threshold
    leaves generous headroom for noisy CI machines.  Best-of-three
    averaging over the whole portfolio smooths scheduler noise.
    """

    def best_portfolio_seconds(compiled: bool, repeats: int = 3) -> float:
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            for label in WORKLOADS:
                run(label, compiled=compiled)
            best = min(best, time.perf_counter() - started)
        return best

    run("same_generation", compiled=True)  # warm plans and indexes
    compiled_seconds = best_portfolio_seconds(compiled=True)
    interpreted_seconds = best_portfolio_seconds(compiled=False)
    ratio = interpreted_seconds / compiled_seconds
    assert ratio >= 2.0, (
        f"compiled {compiled_seconds * 1e3:.2f} ms vs interpreted "
        f"{interpreted_seconds * 1e3:.2f} ms: only {ratio:.2f}x"
    )
