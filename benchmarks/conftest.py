"""Shared helpers for the benchmark harness.

Every benchmark records, besides wall-clock timing, the *hardware-independent*
cost model of the engines (facts derived, rule firings, iterations) in
``benchmark.extra_info`` — the numbers EXPERIMENTS.md reports as the
experiment's "shape".
"""

import pytest


def record_stats(benchmark, label, statistics):
    """Attach an :class:`EvaluationStatistics` summary to the benchmark record."""
    summary = statistics.as_dict()
    for key, value in summary.items():
        benchmark.extra_info[f"{label}_{key}"] = value
    for predicate, count in sorted(statistics.facts_per_predicate.items()):
        benchmark.extra_info[f"{label}_facts[{predicate}]"] = count


@pytest.fixture
def record():
    return record_stats
