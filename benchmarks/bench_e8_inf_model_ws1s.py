"""Experiment E8 — Proposition 3.1, Lemma 3.2, and the Lemma 5.1 WS1S machinery.

Paper claims: (i) on the inf-model IG, the output of a chain program (and of
any finite-query-equivalent program) is exactly L(H); (ii) the string
language defined by a monadic program over a string signature is regular —
WS1S/Büchi–Elgot makes the automaton explicit.

Reproduced shape: H(IG) agrees with L(H) on every truncation depth; the
WS1S-compiled automaton of monadic string programs agrees with direct
evaluation on all short strings and is a small DFA.
"""

import itertools

import pytest

from repro.core.counterexamples import anbn_program
from repro.core.examples_catalog import program_a, program_b
from repro.core.inf_model import check_proposition_3_1, ig_truncation
from repro.core.ws1s_bridge import StringProgramEncoding, accepted_string_language, string_database
from repro.datalog import QuerySession, parse_program

PROGRAMS = [("ancestor_A", program_a()), ("ancestor_B", program_b()), ("anbn", anbn_program())]


@pytest.mark.parametrize("label,chain", PROGRAMS, ids=[p[0] for p in PROGRAMS])
@pytest.mark.parametrize("depth", [4, 6])
def test_proposition_3_1_on_truncations(benchmark, label, chain, depth):
    check = benchmark(check_proposition_3_1, chain, depth)
    assert check.agrees
    benchmark.extra_info["depth"] = depth
    benchmark.extra_info["words"] = len(check.language_slice)


@pytest.mark.parametrize("depth", [6, 9])
def test_ig_truncation_construction(benchmark, depth):
    truncation = benchmark(ig_truncation, ["b1", "b2"], depth)
    benchmark.extra_info["edges"] = truncation.database.fact_count()


MONADIC_STRING_PROGRAMS = [
    (
        "first_letter_a",
        """
        ?w(0)
        w(X) :- a(X).
        """,
    ),
    (
        "a_star_b",
        """
        ?w(0)
        w(X) :- b(X).
        w(X) :- a(X), next(X, Y), w(Y).
        """,
    ),
    (
        "alternating",
        """
        ?w(0)
        w(X) :- a(X).
        w(X) :- a(X), next(X, Y), v(Y).
        v(X) :- b(X).
        v(X) :- b(X), next(X, Y), w(Y).
        """,
    ),
]


@pytest.mark.parametrize("label,text", MONADIC_STRING_PROGRAMS, ids=[p[0] for p in MONADIC_STRING_PROGRAMS])
def test_ws1s_language_extraction(benchmark, label, text):
    program = parse_program(text)
    encoding = StringProgramEncoding(program, ("a", "b"))

    dfa = benchmark(accepted_string_language, encoding)
    benchmark.extra_info["dfa_states"] = len(dfa.states)

    # Cross-check the Büchi–Elgot automaton against direct evaluation (Lemma 5.1's claim).
    mismatches = 0
    for length in range(0, 4):
        for word in itertools.product(("a", "b"), repeat=length):
            database = string_database(word, ("a", "b"))
            derived = bool(QuerySession(program, database).answers())
            if derived != dfa.accepts(word):
                mismatches += 1
    assert mismatches == 0
