#!/usr/bin/env python
"""Quickstart: parse a chain program, decide selection propagation, run both versions.

The canonical example of the paper (Example 1.1): the ancestors of john.
This script

1. parses Program A (binary, left-linear recursion) with the goal ``?anc(john, Y)``,
2. asks the Theorem 3.3 decision procedure whether the selection can be
   propagated (it can: the associated language ``par+`` is regular),
3. evaluates the original and the constructed monadic program on a random
   parent database and compares answers and work.
"""

from repro import ChainProgram, QuerySession, propagate_selection
from repro.datalog import format_program
from repro.core.workloads import parent_forest


def main() -> None:
    program = ChainProgram.from_text(
        """
        ?anc(john, Y)
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- anc(X, Z), par(Z, Y).
        """
    )
    print("Input chain program")
    print("-" * 60)
    print(format_program(program.program))
    print()

    result = propagate_selection(program)
    print(f"Verdict       : {result.verdict.value}")
    print(f"Goal form     : {result.goal_form.value}")
    print(f"Justification : {result.reason}")
    print()
    print("Equivalent monadic program (Program D of the paper, up to renaming)")
    print("-" * 60)
    print(format_program(result.monadic_program))
    print()

    database = parent_forest(500, seed=7)
    original = QuerySession(program, database).evaluate()
    rewritten = result.session(database).evaluate()

    print(f"Database             : {database.fact_count()} parent facts")
    print(f"Answers agree        : {original.answers() == rewritten.answers()}")
    print(f"Answer count         : {len(original.answers())}")
    print(f"Original evaluation  : {original.statistics}")
    print(f"Monadic evaluation   : {rewritten.statistics}")
    ratio = original.statistics.facts_derived / max(1, rewritten.statistics.facts_derived)
    print(f"Facts-derived ratio  : {ratio:.1f}x in favour of the propagated program")


if __name__ == "__main__":
    main()
