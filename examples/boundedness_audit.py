#!/usr/bin/env python
"""Proposition 8.2 audit: boundedness ⇔ first-order expressibility ⇔ finiteness of L(H).

The script audits a suite of chain programs:

* decides boundedness (decidable for chain programs, via CFL finiteness);
* for bounded programs, prints the derivation-size bound and the equivalent
  first-order formula, and cross-checks the FO formula against the Datalog
  evaluation on a random database;
* for all programs, measures how the maximum proof height of goal answers
  grows with the database — constant for bounded programs, growing for
  unbounded ones.
"""

from repro.core import (
    ChainProgram,
    analyze_boundedness,
    cycle_length_program,
    measure_proof_depths,
    program_a,
    section7_program,
)
from repro.core.workloads import chain_database, labeled_random_graph
from repro.datalog import QuerySession
from repro.logic.fo import evaluate_query
from repro.logic.structures import FiniteStructure


def audit(name: str, chain: ChainProgram, databases) -> None:
    report = analyze_boundedness(chain)
    print(f"{name}")
    print(f"  bounded / FO-expressible : {report.bounded}")
    if report.bounded:
        words = [" ".join(word) for word in report.language_words]
        print(f"  L(H) (finite)            : {words}")
        print(f"  derivation-size bound    : {report.derivation_size_bound}")
        print(f"  first-order form         : {report.first_order_formula}")
    depths = measure_proof_depths(chain, databases)
    series = ", ".join(f"{m.database_size}->{m.max_proof_height}" for m in depths)
    print(f"  max proof height by size : {series}")
    print()


def main() -> None:
    grandparent = ChainProgram.from_text(
        """
        ?gp(X, Y)
        gp(X, Y) :- par(X, Z1), par(Z1, Y).
        """
    )
    three_cycle = cycle_length_program(3)
    ancestor = program_a()
    anbn = section7_program()

    par_databases = [chain_database(n) for n in (5, 10, 20, 40)]
    graph_databases = [labeled_random_graph(n, 3 * n, ["b"], seed=n) for n in (6, 12, 24)]
    anbn_databases = [labeled_random_graph(n, 3 * n, ["b1", "b2"], seed=n) for n in (6, 12, 24)]

    audit("grandparent (bounded, non-recursive)", grandparent, par_databases)
    audit("closed-walk-of-length-3 ?p(X,X) (bounded)", three_cycle, graph_databases)
    audit("ancestor Program A (unbounded)", ancestor, par_databases)
    audit("a^n b^n Section 7 program (unbounded)", anbn, anbn_databases)

    # Cross-check the FO formula of the grandparent program against Datalog evaluation.
    database = chain_database(15)
    report = analyze_boundedness(grandparent)
    structure = FiniteStructure.from_database(database)
    fo_answers = evaluate_query(report.first_order_formula, structure, report.output_variables)
    datalog_answers = QuerySession(grandparent, database).answers()
    print(f"FO formula answers == Datalog answers for the grandparent query: "
          f"{fo_answers == datalog_answers} ({len(fo_answers)} tuples)")


if __name__ == "__main__":
    main()
