#!/usr/bin/env python
"""Walkthrough of prepared parameterized queries and the DatalogService.

The paper's point is that selection propagation depends on the goal's
*binding pattern*, not the concrete constant.  This walkthrough shows the
API built on that fact:

* a **template** query ``?anc($who, Y)`` is prepared once — adornment,
  magic sets, and join planning all run at prepare time;
* each **execution** only seeds the binding (one ``__param`` fact) into a
  copy-on-write overlay and runs the fixpoint;
* the **DatalogService** serves many threads with an LRU result cache and
  batched shared-fixpoint execution.

Run with ``PYTHONPATH=src python examples/prepared_service.py``.
"""

import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.workloads import chain_forest
from repro.datalog import DatalogService, QuerySession, parse_program
from repro.datalog.transforms import MagicSets

TEMPLATE = """
?anc($who, Y)
anc(X, Y) :- par(X, Y).
anc(X, Y) :- anc(X, Z), par(Z, Y).
"""


def main() -> None:
    database = chain_forest(400, 8)  # 3200 par facts, 400 independent roots
    roots = [f"r{index}" for index in range(400)]

    # ------------------------------------------------------------------
    # Prepare once, execute per binding
    # ------------------------------------------------------------------
    template = parse_program(TEMPLATE)
    session = QuerySession(template, database).with_transforms(MagicSets())
    prepared = session.prepare()
    print("parameters      :", ", ".join(f"${name}" for name in prepared.parameters))
    print("binding pattern :", prepared.binding_pattern)
    print()
    print(prepared.describe())
    print()

    for who in ("r0", "r1", "r399"):
        answers = prepared.answers(who=who)
        print(f"anc({who}, Y) -> {len(answers)} answers")

    # ------------------------------------------------------------------
    # Amortization: prepared vs ad-hoc per fresh constant
    # ------------------------------------------------------------------
    calls = 100
    started = time.perf_counter()
    for index in range(calls):
        prepared.answers(who=roots[index % len(roots)])
    prepared_ms = (time.perf_counter() - started) / calls * 1e3

    started = time.perf_counter()
    for index in range(calls):
        constant = roots[index % len(roots)]
        adhoc = parse_program(TEMPLATE.replace("$who", constant))
        QuerySession(adhoc, database).with_transforms(MagicSets()).answers()
    adhoc_ms = (time.perf_counter() - started) / calls * 1e3
    print()
    print(f"prepared execution : {prepared_ms:.3f} ms / query")
    print(f"ad-hoc evaluation  : {adhoc_ms:.3f} ms / query "
          f"({adhoc_ms / prepared_ms:.1f}x slower)")

    # ------------------------------------------------------------------
    # Batched bindings through one shared fixpoint
    # ------------------------------------------------------------------
    window = [{"who": who} for who in roots[:32]]
    started = time.perf_counter()
    batch = prepared.execute_many(window)
    batch_ms = (time.perf_counter() - started) / len(window) * 1e3
    print(f"execute_many       : {batch_ms:.3f} ms / binding "
          f"({len(window)} bindings, one fixpoint)")
    assert batch[0] == prepared.answers(who="r0")

    # ------------------------------------------------------------------
    # The service: concurrent traffic with a result cache
    # ------------------------------------------------------------------
    service = DatalogService(database, cache_size=128)
    service.register_program("ancestors", template, transforms=(MagicSets(),))

    def request(index: int):
        return service.execute("ancestors", who=roots[index % 64])

    requests = 2000
    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=8) as executor:
        list(executor.map(request, range(requests)))
    wall = time.perf_counter() - started
    statistics = service.statistics()
    print()
    print(f"service traffic    : {requests} requests / 8 threads "
          f"in {wall:.3f} s -> {requests / wall:,.0f} req/s")
    print(f"                     {statistics['cache_hits']} cache hits, "
          f"{statistics['executions']} engine executions")

    # Streaming cursors page through large answer sets in stable order.
    cursor = service.cursor("ancestors", who="r0", batch_size=3)
    print("cursor             :", cursor.fetchmany(), "... of", cursor.rowcount)


if __name__ == "__main__":
    main()
