#!/usr/bin/env python
"""Example 1.1 end to end: Programs A, B, C, D and the selection-propagation methods.

For each of the four semantically equivalent ancestor programs the script
reports:

* the associated grammar and language class (left linear / right linear /
  non-linear but unary, hence regular in every case);
* the Theorem 3.3 verdict and the constructed monadic program;
* evaluation cost (facts derived, rule firings) of
  - the original program,
  - the classical magic-set transformation (reference [5]),
  - the grammar-based monadic rewriting (this paper),
  - Program D itself as the gold standard,
  all on the same random parent database.
"""

from repro import QuerySession, propagate_selection
from repro.core import program_a, program_b, program_c, program_d, to_grammar
from repro.core.workloads import parent_forest
from repro.datalog.transforms import MagicSets
from repro.languages import format_grammar, regularity_evidence


def evaluate(label, session):
    result = session.evaluate()
    stats = result.statistics
    print(
        f"    {label:<28} answers={len(result.answers()):>4} "
        f"facts={stats.facts_derived:>6} firings={stats.rule_firings:>6} "
        f"iterations={stats.iterations:>3}"
    )
    return result.answers()


def main() -> None:
    database = parent_forest(800, seed=3)
    print(f"Random parent forest with {database.fact_count()} par facts; query ?anc(john, Y)\n")

    gold = QuerySession(program_d(), database).answers()

    for name, chain in (("A", program_a()), ("B", program_b()), ("C", program_c())):
        grammar = to_grammar(chain)
        evidence = regularity_evidence(grammar)
        print(f"Program {name}")
        print("  grammar:")
        for line in format_grammar(grammar).splitlines():
            print(f"    {line}")
        print(f"  language class : {evidence.reason}")

        verdict = propagate_selection(chain)
        print(f"  Theorem 3.3    : {verdict.verdict.value} ({verdict.reason.split(';')[0]})")

        print("  evaluation:")
        session = QuerySession(chain, database)
        answers = evaluate("original (binary recursion)", session)
        magic_answers = evaluate("magic sets [5]", session.with_transforms(MagicSets()))
        rewrite_answers = evaluate("monadic rewrite (Thm 3.3)", verdict.session(database))
        assert answers == magic_answers == rewrite_answers == gold
        print()

    print("Program D (the target of propagation)")
    evaluate("Program D", QuerySession(program_d(), database))
    print("\nAll four programs return the same ancestors; the monadic forms derive")
    print("only facts about john's ancestors, while the binary forms derive the")
    print("ancestor relation for every person in the database.")


if __name__ == "__main__":
    main()
