#!/usr/bin/env python
"""Context-insensitive Andersen points-to analysis as a Datalog workload.

Program analysis is the classic industrial use of stratified Datalog: the
four inclusion rules below *are* the analysis, and the engine's fixpoint
machinery replaces the hand-written worklist solver.  The script runs the
analysis over a synthetic program (allocations, copies, field stores and
loads), reports the points-to relation it computes, then uses the new
language features to summarize it — an aggregate counts each variable's
points-to set, and stratified negation finds the variables the analysis
proves reference nothing at all.
"""

from repro.datalog import get_engine
from repro.datalog.parser import parse_program
from repro.datalog.workloads import POINTS_TO, points_to_input

SUMMARY = """
var(V) :- assign(V, U).
var(U) :- assign(V, U).
var(V) :- alloc(V, H).
var(U) :- store(U, V).
var(V) :- store(U, V).
var(V) :- load(V, U).
var(U) :- load(V, U).
ptsize(V, count<H>) :- pt(V, H).
empty(V) :- var(V), not points(V).
points(V) :- pt(V, H).
"""


def main() -> None:
    database = points_to_input(40, 260, seed=11)
    for relation in ("alloc", "assign", "store", "load"):
        print(f"{relation:>7}: {database.cardinality(relation):>4} statements")

    engine = get_engine("seminaive")
    analysis = parse_program(POINTS_TO + SUMMARY)
    analysis.validate()
    result = engine.evaluate(analysis, database)

    pt = result.relation("pt")
    hpt = result.relation("hpt")
    print(f"\npoints-to facts: {len(pt)}  heap points-to facts: {len(hpt)}")
    print(
        f"statistics: {result.statistics.facts_derived} facts derived in "
        f"{result.statistics.iterations} iterations, "
        f"{result.statistics.strata} strata"
    )

    sizes = dict(result.relation("ptsize"))
    widest = sorted(sizes, key=lambda v: (-sizes[v], v))[:5]
    print("\nwidest points-to sets:")
    for variable in widest:
        targets = sorted(h for v, h in pt if v == variable)
        shown = ", ".join(targets[:6]) + (", ..." if len(targets) > 6 else "")
        print(f"  {variable:<4} -> {sizes[variable]:>3} objects  {{{shown}}}")

    empty = sorted(v for (v,) in result.relation("empty"))
    print(f"\nvariables proven to point nowhere: {len(empty)}")
    print("  " + ", ".join(empty[:12]) + (", ..." if len(empty) > 12 else ""))


if __name__ == "__main__":
    main()
