#!/usr/bin/env python
"""Walkthrough of the unified evaluation API: sessions, engines, transform pipelines.

The paper compares evaluation strategies for one selection query; the
library mirrors that with three first-class pieces:

* the **engine registry** (:mod:`repro.datalog.engine.registry`) — every
  strategy (naive, semi-naive, tabled top-down, magic-then-semi-naive) is an
  object looked up by name;
* the **transform pipeline** (:mod:`repro.datalog.transforms.pipeline`) —
  rewrites compose and record per-stage provenance;
* the **query session** (:class:`repro.datalog.QuerySession`) — one facade
  tying a program, a database, a pipeline, and an engine choice together.

Run with ``PYTHONPATH=src python examples/query_session.py``.
"""

from repro import ChainProgram, QuerySession, available_engines, get_engine
from repro.core.propagation import MonadicRewrite
from repro.core.workloads import parent_forest
from repro.datalog.transforms import MagicSets


def main() -> None:
    program = ChainProgram.from_text(
        """
        ?anc(john, Y)
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- anc(X, Z), par(Z, Y).
        """
    )
    database = parent_forest(400, seed=11)
    print(f"Query ?anc(john, Y) over {database.fact_count()} parent facts\n")

    # 1. One engine, explicitly.
    result = get_engine("seminaive").evaluate(program.program, database)
    print(f"get_engine('seminaive'): {len(result.answers())} answers, {result.statistics}\n")

    # 2. The same through a session; engines are a run-time choice.
    session = QuerySession(program, database)
    print("Engine portfolio on the original program:")
    for name in available_engines():
        stats = session.evaluate(engine=name).statistics
        print(f"  {name:<10} facts={stats.facts_derived:>6} firings={stats.rule_firings:>6}")
    print()

    # 3. Transforms compose into pipelines with provenance.
    magic = session.with_transforms(MagicSets())
    rewrite = session.with_transforms(MonadicRewrite())
    print("Magic-set pipeline provenance:")
    print("  " + magic.explain().replace("\n", "\n  "))
    print()

    baseline = session.answers()
    for label, candidate in (("magic sets", magic), ("monadic rewrite", rewrite)):
        stats = candidate.evaluate().statistics
        agree = candidate.answers() == baseline
        print(
            f"  {label:<16} answers agree={agree}  "
            f"facts={stats.facts_derived:>6} firings={stats.rule_firings:>6}"
        )
    print()
    print("The transformed programs derive only john-relevant facts; the original")
    print("binary recursion computes the full ancestor relation before selecting.")


if __name__ == "__main__":
    main()
