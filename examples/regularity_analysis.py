#!/usr/bin/env python
"""Language analysis report: the grammar view of chain programs and its limits.

For a portfolio of chain programs the script prints

* the grammar ``G(H)`` and the decidable certificates that apply
  (finiteness, left/right linearity, strong regularity, unary alphabet,
  non-self-embedding);
* the Theorem 3.3 verdict for the program's goal, including the honest
  ``UNKNOWN`` on the undecidable frontier;
* a check of Proposition 3.1 on truncations of the inf-model ``IG``;
* the Lemma 5.1 machinery at work: a monadic program over strings compiled
  through WS1S into an explicit regular language.
"""

from repro import propagate_selection
from repro.core import (
    check_proposition_3_1,
    program_a,
    program_c,
    same_generation_program,
    section7_program,
    to_grammar,
    unary_infinite_program,
)
from repro.core.ws1s_bridge import StringProgramEncoding, accepted_string_language, string_database
from repro.datalog import QuerySession, parse_program
from repro.languages import format_grammar, is_self_embedding, is_strongly_regular, regularity_evidence
from repro.languages.regular import enumerate_words


def report(name, chain):
    grammar = to_grammar(chain)
    print(f"{name}")
    for line in format_grammar(grammar).splitlines():
        print(f"    {line}")
    print(f"  self-embedding     : {is_self_embedding(grammar)}")
    print(f"  strongly regular   : {is_strongly_regular(grammar)}")
    print(f"  certificate        : {regularity_evidence(grammar).reason}")
    verdict = propagate_selection(chain)
    print(f"  Theorem 3.3        : {verdict.verdict.value}")
    print(f"  reason             : {verdict.reason}")
    check = check_proposition_3_1(chain, 5) if verdict.goal_form.name == "CONSTANT_FIRST" else None
    if check is not None:
        print(f"  Prop. 3.1 (depth 5): h(IG) slice == L(H) slice ? {check.agrees}")
    print()


def main() -> None:
    print("=" * 70)
    print("Language analysis of chain programs (Sections 3-7)")
    print("=" * 70)
    report("Program A (ancestors, left linear)", program_a())
    report("Program C (ancestors, non-linear)", program_c())
    report("Section 7 program (a^n b^n)", section7_program())
    report("Same-generation (up^n down^n)", same_generation_program())
    report("Unary infinite program (b^+), goal p(c, Y)", unary_infinite_program())

    print("=" * 70)
    print("Lemma 5.1 executable: a monadic program's string language via WS1S")
    print("=" * 70)
    monadic = parse_program(
        """
        ?w(0)
        w(X) :- b2(X).
        w(X) :- b1(X), next(X, Y), w(Y).
        """
    )
    encoding = StringProgramEncoding(monadic, ("b1", "b2"))
    dfa = accepted_string_language(encoding)
    words = [" ".join(w) for w in enumerate_words(dfa, 3)]
    print("Monadic program: w(X) :- b2(X).   w(X) :- b1(X), next(X, Y), w(Y).   goal w(0)")
    print(f"Regular language extracted through WS1S (words up to length 3): {words}")

    # Cross-check against direct evaluation on string databases.
    agreement = True
    for word in [("b2",), ("b1", "b2"), ("b1", "b1", "b2"), ("b2", "b1"), ("b1", "b1")]:
        database = string_database(word, ("b1", "b2"))
        derived = bool(QuerySession(monadic, database).answers())
        agreement &= derived == dfa.accepts(word)
    print(f"WS1S-extracted language agrees with direct evaluation on sample strings: {agreement}")


if __name__ == "__main__":
    main()
