#!/usr/bin/env python
"""Section 6 end to end: what monadic Datalog cannot express, and what monadic fixpoints can.

The script demonstrates the three layers of the paper's Section 6 argument:

1. the CYCLE query (``?p(X, X)`` over the transitive closure of ``b``) is a
   chain program whose language is infinite, so Theorem 3.3(2) says no
   equivalent monadic Datalog program exists;
2. the executable reason: monadic programs colour all nodes of a directed
   cycle identically, so they cannot distinguish cycles of different lengths,
   while chain programs can;
3. Example 6.3: once universal quantification (negation) is allowed in a
   *monadic fixpoint*, cyclicity becomes expressible — the gap is about
   negation, not about arity alone.  Cyclic graphs are nevertheless a monadic
   generalized spectrum (Example 2.2.3), which the exhaustive MGS search
   confirms on small structures.
"""

from repro.core import cycle_length_program, cycle_program, propagate_selection
from repro.datalog import QuerySession, parse_program
from repro.logic import (
    cyclic_graph_spec,
    directed_cycle,
    directed_path,
    has_directed_cycle,
    is_cyclic_via_monadic_fixpoint,
    monadic_colour_uniformity_on_cycle,
    path_with_disjoint_cycle,
)


def main() -> None:
    print("1. Theorem 3.3(2) on the CYCLE query")
    print("-" * 60)
    verdict = propagate_selection(cycle_program())
    print(f"verdict: {verdict.verdict.value}")
    print(f"reason : {verdict.reason}\n")

    print("2. The symmetry argument of Lemma 6.1")
    print("-" * 60)
    monadic = parse_program(
        """
        ?w(X)
        w(X) :- b(X, Y).
        w(X) :- b(X, Y), w(Y).
        """
    )
    for length in (6, 10, 14):
        uniform = monadic_colour_uniformity_on_cycle(monadic, length)
        print(f"  monadic program colours a {length}-cycle uniformly: {uniform}")
    chain = cycle_length_program(3)
    on3 = bool(QuerySession(chain, directed_cycle(3).to_database()).answers())
    on4 = bool(QuerySession(chain, directed_cycle(4).to_database()).answers())
    print(f"  the closed-walk-of-length-3 chain query distinguishes a 3-cycle ({on3}) "
          f"from a 4-cycle ({on4})\n")

    print("3. Example 6.3: cyclicity via a monadic fixpoint with negation")
    print("-" * 60)
    structures = {
        "directed path (4 edges)": directed_path(4),
        "directed 5-cycle": directed_cycle(5),
        "path + disjoint 3-cycle": path_with_disjoint_cycle(3, 3),
    }
    spec = cyclic_graph_spec()
    for name, structure in structures.items():
        fixpoint = is_cyclic_via_monadic_fixpoint(structure)
        reference = has_directed_cycle(structure)
        mgs = spec.check(structure)
        print(f"  {name:<28} fixpoint={fixpoint!s:<5} reference={reference!s:<5} MGS search={mgs}")
    print("\nMonadic Datalog cannot express this query (Lemma 6.1); the monadic fixpoint")
    print("with universal quantification can (Example 6.3); and 'has a cycle' is still a")
    print("monadic generalized spectrum (Example 2.2.3).")


if __name__ == "__main__":
    main()
