#!/usr/bin/env python
"""Section 7 worked example: magic sets as language quotients on ``L(H) = { b1^n b2^n }``.

The script reproduces the paper's discussion:

* the per-rule regular expressions (``Σ* b1 Σ* b2 Σ*`` for both rules);
* the quotient languages (``b1*`` here, computed from the regular envelope
  ``b1+ b2+`` because the exact language has no regular certificate);
* the transformed program with its monadic ``magic`` predicate, compared to
  the program printed in the paper;
* the pruning effect on a layered graph with unreachable witness copies.
"""

from repro.core import anbn_program, analyze_magic, magic_transform_chain, section7_transformed
from repro.core.workloads import layered_anbn_graph
from repro.datalog import QuerySession, format_program
from repro.languages.regular import enumerate_words


def main() -> None:
    chain = anbn_program()
    print("Chain program H with L(H) = { b1^n b2^n : n >= 1 }")
    print("-" * 60)
    print(format_program(chain.program))
    print()

    analysis = analyze_magic(chain)
    print(f"Language automaton exact? {analysis.language_exact} "
          "(no: the regular envelope b1+ b2+ is used, as the paper suggests)")
    for index, entry in enumerate(analysis.rule_quotients, start=1):
        words = enumerate_words(entry.quotient, 4)
        print(f"  rule {index}: R_{index} = {entry.context_regex}")
        print(f"           quotient words (<=4): {[' '.join(w) if w else 'ε' for w in words]}")
    print()

    transformed = magic_transform_chain(chain)
    print("Transformed program (quotient-derived magic predicate)")
    print("-" * 60)
    print(format_program(transformed))
    print()
    print("Paper's hand-written transformed program")
    print("-" * 60)
    print(format_program(section7_transformed()))
    print()

    for noise in (0, 2, 8):
        database = layered_anbn_graph(10, noise_branches=noise)
        plain = QuerySession(chain, database).evaluate()
        magic = QuerySession(transformed, database).evaluate()
        paper = QuerySession(section7_transformed(), database).evaluate()
        assert plain.answers() == magic.answers() == paper.answers()
        print(
            f"noise branches={noise:>2}  facts derived: "
            f"plain={plain.statistics.facts_derived:>5}  "
            f"quotient magic={magic.statistics.facts_derived:>5}  "
            f"paper magic={paper.statistics.facts_derived:>5}  "
            f"(answers: {len(plain.answers())})"
        )
    print("\nThe un-selected program derives p facts in every disconnected copy of the")
    print("witness gadget; the magic-guarded programs only work inside the b1*-reachable")
    print("part, which is exactly the quotient language the paper computes.")


if __name__ == "__main__":
    main()
