"""Command-line interface: analyse, transform, and evaluate chain programs.

Usage (after ``pip install -e .``)::

    python -m repro.cli analyze  program.dl          # Theorem 3.3 verdict + certificate
    python -m repro.cli grammar  program.dl          # G(H), language class, sample words
    python -m repro.cli rewrite  program.dl          # the equivalent monadic program, if constructible
    python -m repro.cli magic    program.dl          # Section 7 quotient-based magic transformation
    python -m repro.cli evaluate program.dl facts.dl # run the program on a database of facts
    python -m repro.cli evaluate q.dl facts.dl --param who=john   # prepared parameterized query
    python -m repro.cli serve-bench q.dl facts.dl --threads 8     # DatalogService traffic driver
    python -m repro.cli serve /var/lib/datalog       # durable HTTP server (WAL + snapshots)
    python -m repro.cli load-bench --port 8080 --processes 4      # multi-process load driver
    python -m repro.cli engines                      # list the registered evaluation engines
    python -m repro.cli bounded  program.dl          # Proposition 8.2 report

``evaluate`` is a thin wrapper over the unified evaluation API: it builds a
:class:`repro.datalog.QuerySession` and dispatches to any engine registered
in :mod:`repro.datalog.engine.registry` — pick one with ``--engine``
(``naive``, ``seminaive``, ``topdown``, ``magic``, or anything a plugin has
registered; see ``engines``).

A program file contains a goal line ``?p(c, Y)`` followed by chain rules; a
facts file contains ground facts, one per clause.
"""

from __future__ import annotations

import argparse
import re
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional

from repro.core.boundedness import analyze_boundedness
from repro.core.chain import ChainProgram
from repro.core.grammar_map import to_grammar
from repro.core.magic_chain import magic_transform_chain
from repro.core.propagation import propagate_selection
from repro.datalog import (
    Database,
    DatalogService,
    QuerySession,
    format_program,
    parse_facts,
    parse_program,
)
from repro.datalog.engine import compile_program_plan, engine_descriptions, get_engine
from repro.datalog.transforms import MagicSets, PropagateConstants, Rectify
from repro.errors import ReproError, ValidationError
from repro.languages.cfg import format_grammar
from repro.languages.cfg_analysis import enumerate_language
from repro.languages.cfg_properties import regularity_evidence


def _load_chain(path: str) -> ChainProgram:
    with open(path, "r", encoding="utf-8") as handle:
        return ChainProgram(parse_program(handle.read()))


def _load_database(path: str) -> Database:
    with open(path, "r", encoding="utf-8") as handle:
        return Database.from_facts(parse_facts(handle.read()))


def _print(text: str = "") -> None:
    sys.stdout.write(text + "\n")


def _parse_param_value(text: str):
    """``--param`` values: integers stay integers, quotes strip, rest is a string."""
    if re.fullmatch(r"-?\d+", text):
        return int(text)
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "\"'":
        return text[1:-1]
    return text


def _parse_params(pairs: Iterable[str]) -> Dict[str, object]:
    """Parse repeated ``--param name=value`` options into a bindings dict."""
    params: Dict[str, object] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        name = name.lstrip("$").strip()
        if not sep or not name:
            raise ValidationError(
                f"--param expects name=value, got {pair!r}"
            )
        params[name] = _parse_param_value(value.strip())
    return params


_TRANSFORMS = {
    "magic": MagicSets,
    "rectify": Rectify,
    "constants": PropagateConstants,
}


def _print_view_result(view) -> None:
    """Answers + maintenance account of a materialized view (--incremental)."""
    answers = sorted(view.answers(), key=repr)
    for answer in answers:
        _print("(" + ", ".join(str(value) for value in answer) + ")")
    _print(
        f"-- {len(answers)} answers; materialized view "
        f"(maintainable via apply); {view.statistics}"
    )
    _print(view.describe())


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def command_analyze(arguments: argparse.Namespace) -> int:
    chain = _load_chain(arguments.program)
    result = propagate_selection(chain)
    _print(f"goal form : {result.goal_form.value}")
    _print(f"verdict   : {result.verdict.value}")
    _print(f"reason    : {result.reason}")
    if result.witness is not None:
        _print(f"proof     : {result.witness.proof}")
    if result.monadic_program is not None and arguments.show_program:
        _print()
        _print("equivalent monadic program:")
        _print(format_program(result.monadic_program))
    return 0


def command_grammar(arguments: argparse.Namespace) -> int:
    chain = _load_chain(arguments.program)
    grammar = to_grammar(chain)
    _print("G(H):")
    _print(format_grammar(grammar))
    evidence = regularity_evidence(grammar)
    _print()
    _print(f"regularity certificate : {evidence.reason}")
    words = enumerate_language(grammar, arguments.max_length)
    rendered = ", ".join(" ".join(word) for word in words) if words else "(none)"
    _print(f"words up to length {arguments.max_length}: {rendered}")
    return 0


def command_rewrite(arguments: argparse.Namespace) -> int:
    chain = _load_chain(arguments.program)
    result = propagate_selection(chain)
    if result.monadic_program is None:
        _print(f"no monadic program constructed: {result.reason}")
        return 1
    _print(format_program(result.monadic_program))
    return 0


def command_magic(arguments: argparse.Namespace) -> int:
    chain = _load_chain(arguments.program)
    transformed = magic_transform_chain(chain)
    _print(format_program(transformed))
    return 0


def command_evaluate(arguments: argparse.Namespace) -> int:
    with open(arguments.program, "r", encoding="utf-8") as handle:
        program = parse_program(handle.read())
    database = _load_database(arguments.facts)
    session = QuerySession(program, database)
    params = _parse_params(arguments.param)
    declared = {parameter.name for parameter in program.parameters()}
    if declared:
        # Parameterized template: compile once, execute with the bindings.
        if set(params) != declared:
            wanted = ", ".join(f"${name}" for name in sorted(declared))
            raise ValidationError(
                f"program declares parameters {wanted}; bind each with --param name=value"
            )
        prepared = session.prepare(engine=arguments.engine)
        if arguments.explain:
            _print(prepared.describe())
            _print()
        if arguments.incremental:
            _print_view_result(prepared.materialize(params, timeout=arguments.timeout))
            return 0
        result = prepared.execute(
            params,
            max_iterations=arguments.max_iterations,
            timeout=arguments.timeout,
        )
        answers = sorted(result.answers(), key=repr)
        for answer in answers:
            _print("(" + ", ".join(str(value) for value in answer) + ")")
        _print(
            f"-- {len(answers)} answers; engine={arguments.engine} "
            f"(prepared, executed as {prepared.default_engine}); {result.statistics}"
        )
        return 0
    if params:
        raise ValidationError(
            "--param given but the program declares no $parameters in its goal"
        )
    if arguments.incremental:
        if arguments.explain:
            _print(session.explain())
            _print()
        _print_view_result(session.materialize(timeout=arguments.timeout))
        return 0
    if arguments.explain:
        # Explain the plan for what the engine actually evaluates: engines
        # that rewrite the program internally (e.g. ``magic``) run a
        # different plan than the session's program would, and non-planning
        # engines (``topdown``) use no bottom-up join plan at all.
        engine_object = get_engine(arguments.engine)
        engine_transform = getattr(engine_object, "transform", None)
        if engine_transform is not None:
            _print(session.explain())
            _print(f"engine {arguments.engine!r} rewrites the program before evaluating:")
            rewritten = engine_transform(session.transformed_program)
            _print(compile_program_plan(rewritten, database).describe())
        elif getattr(engine_object, "supports_planner", False):
            _print(session.explain(plans=True))
        else:
            _print(session.explain())
            _print(
                f"engine {arguments.engine!r} does not use the bottom-up join planner; "
                "no join plan to show"
            )
        _print()
    result = session.evaluate(
        engine=arguments.engine,
        max_iterations=arguments.max_iterations,
        timeout=arguments.timeout,
    )
    answers = sorted(result.answers(), key=repr)
    for answer in answers:
        _print("(" + ", ".join(str(value) for value in answer) + ")")
    _print(f"-- {len(answers)} answers; engine={arguments.engine}; {result.statistics}")
    return 0


def command_serve_bench(arguments: argparse.Namespace) -> int:
    """Drive a DatalogService with synthetic traffic and report throughput."""
    with open(arguments.program, "r", encoding="utf-8") as handle:
        program = parse_program(handle.read())
    if not program.parameters():
        raise ValidationError(
            "serve-bench needs a parameterized goal (e.g. ?anc($who, Y)) so each "
            "request can carry a different binding"
        )
    database = _load_database(arguments.facts)
    transforms = tuple(_TRANSFORMS[name]() for name in arguments.transform)
    service = DatalogService(database, cache_size=arguments.cache_size)
    service.register_program(
        "bench", program, transforms=transforms, engine=arguments.engine
    )

    compile_start = time.perf_counter()
    prepared = service.prepare("bench")
    prepared.plan()
    compile_seconds = time.perf_counter() - compile_start
    names = prepared.parameters

    pool = sorted(database.active_domain(), key=repr)[: max(arguments.distinct, 1)]
    if not pool:
        raise ValidationError("the facts file is empty; nothing to bind parameters to")

    def bindings_for(index: int) -> Dict[str, object]:
        return {
            name: pool[(index + offset) % len(pool)]
            for offset, name in enumerate(names)
        }

    materialize_seconds = 0.0
    if arguments.materialize:
        materialize_start = time.perf_counter()
        for index in range(len(pool)):
            service.materialize("bench", bindings_for(index))
        materialize_seconds = time.perf_counter() - materialize_start

    # Interleave write operations evenly: every write adds one synthetic
    # fact to the program's first EDB relation (at that relation's arity),
    # and every second write retracts the very same tuple, so the retract
    # half genuinely exercises deletion maintenance and the database ends
    # the run near its starting size.  With --materialize each write
    # maintains the live counting/DRed views instead of recomputing.
    write_predicate = min(program.edb_predicates(), default=None)
    writes = max(arguments.writes, 0)
    if writes and write_predicate is None:
        raise ValidationError("--writes needs a program with at least one EDB predicate")
    write_arity = program.predicate_arities().get(write_predicate, 2)
    write_every = max(arguments.requests // writes, 1) if writes else 0
    write_latencies: List[float] = []
    write_lock = threading.Lock()
    # Write ops are serialized and numbered by this counter (not by request
    # index): under --threads the retract half of a pair must never overtake
    # its insert, or it degrades to a no-op.
    write_counter = [0]

    def write() -> None:
        with write_lock:
            index = write_counter[0]
            write_counter[0] += 1
            pair = index // 2
            values = (f"__w{pair}",) + (pool[pair % len(pool)],) * (write_arity - 1)
            fact = (write_predicate, values)
            started = time.perf_counter()
            if index % 2 == 0:
                service.add_facts([fact])
            else:
                service.remove_facts([fact])
            write_latencies.append(time.perf_counter() - started)

    latencies: List[float] = [0.0] * arguments.requests
    answer_counts: List[int] = [0] * arguments.requests

    def request(index: int) -> None:
        if write_every and index % write_every == 0 and index // write_every < writes:
            write()
        started = time.perf_counter()
        answers = service.execute(
            "bench", bindings_for(index), fresh=arguments.no_cache
        )
        latencies[index] = time.perf_counter() - started
        answer_counts[index] = len(answers)

    wall_start = time.perf_counter()
    if arguments.threads > 1:
        with ThreadPoolExecutor(max_workers=arguments.threads) as pool_executor:
            list(pool_executor.map(request, range(arguments.requests)))
    else:
        for index in range(arguments.requests):
            request(index)
    wall = time.perf_counter() - wall_start

    ordered = sorted(latencies)

    def percentile(fraction: float) -> float:
        return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]

    statistics = service.statistics()
    _print(f"program    : {arguments.program} (parameters: "
           + ", ".join(f"${name}" for name in names) + ")")
    _print(f"transforms : {', '.join(arguments.transform) or '(none)'}; "
           f"engine={arguments.engine}; prepare+plan {compile_seconds * 1e3:.2f} ms (once)")
    if arguments.materialize:
        _print(f"views      : {statistics['materialized_views']} bindings kept live "
               f"(materialized in {materialize_seconds * 1e3:.2f} ms, once)")
    _print(f"traffic    : {arguments.requests} requests, {arguments.threads} threads, "
           f"{len(pool)} distinct constants, {len(write_latencies)} writes")
    _print(f"wall time  : {wall:.3f} s  ->  {arguments.requests / wall:,.0f} req/s")
    _print(f"latency    : p50 {percentile(0.50) * 1e3:.3f} ms, "
           f"p95 {percentile(0.95) * 1e3:.3f} ms, max {ordered[-1] * 1e3:.3f} ms")
    if write_latencies:
        sorted_writes = sorted(write_latencies)
        _print(f"write lat. : p50 {sorted_writes[len(sorted_writes) // 2] * 1e3:.3f} ms, "
               f"max {sorted_writes[-1] * 1e3:.3f} ms")
    _print(f"answers    : {sum(answer_counts)} total across all requests")
    _print(f"cache      : {statistics['cache_hits']} hits, "
           f"{statistics['cache_misses']} misses, "
           f"{statistics['view_hits']} view hits, "
           f"{statistics['executions']} engine executions")
    return 0


def command_serve(arguments: argparse.Namespace) -> int:
    """Run the durable HTTP Datalog server until SIGTERM/SIGINT."""
    # Imported lazily: the server stack (asyncio, WAL, snapshots) is not
    # needed by any other subcommand.
    from repro.datalog.server.http import run_server

    run_server(
        arguments.data_dir,
        host=arguments.host,
        port=arguments.port,
        fsync=arguments.fsync,
        snapshot_every=arguments.snapshot_every,
        max_pending_writes=arguments.max_pending_writes,
        executor_workers=arguments.workers,
        engine_workers=arguments.engine_workers,
        sync_interval=arguments.sync_interval,
        cache_size=arguments.cache_size,
        default_engine=arguments.engine,
        request_timeout=arguments.request_timeout,
        slow_query_threshold=arguments.slow_query_threshold,
    )
    return 0


def command_load_bench(arguments: argparse.Namespace) -> int:
    """Drive a running `repro serve` instance with multi-process load."""
    from repro.datalog.server.runner import run_load

    report = run_load(
        arguments.host,
        arguments.port,
        processes=arguments.processes,
        requests_per_process=arguments.requests,
        read_ratio=arguments.read_ratio,
        materialized_ratio=arguments.materialized_ratio,
        nodes=arguments.nodes,
        seed=arguments.seed,
        setup=not arguments.no_setup,
    )
    if arguments.json:
        import json as _json

        _print(_json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        _print(str(report))
    if report.errors:
        return 1
    return 0


def command_engines(arguments: argparse.Namespace) -> int:
    descriptions = engine_descriptions()
    width = max((len(name) for name in descriptions), default=0)
    for name, description in descriptions.items():
        _print(f"{name.ljust(width)}  {description}")
    return 0


def command_bounded(arguments: argparse.Namespace) -> int:
    chain = _load_chain(arguments.program)
    report = analyze_boundedness(chain)
    _print(f"bounded / first-order expressible : {report.bounded}")
    if report.bounded:
        words = ", ".join(" ".join(word) for word in report.language_words)
        _print(f"L(H) = {{ {words} }}")
        _print(f"derivation-size bound : {report.derivation_size_bound}")
        _print(f"first-order form      : {report.first_order_formula}")
    return 0


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Selection propagation analysis for chain Datalog programs "
        "(Beeri-Kanellakis-Bancilhon-Ramakrishnan).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="Theorem 3.3 verdict for the program's goal")
    analyze.add_argument("program", help="path to the chain program")
    analyze.add_argument(
        "--show-program", action="store_true", help="also print the constructed monadic program"
    )
    analyze.set_defaults(handler=command_analyze)

    grammar = subparsers.add_parser("grammar", help="print G(H) and its language class")
    grammar.add_argument("program")
    grammar.add_argument("--max-length", type=int, default=5, help="word enumeration bound")
    grammar.set_defaults(handler=command_grammar)

    rewrite = subparsers.add_parser("rewrite", help="print the equivalent monadic program")
    rewrite.add_argument("program")
    rewrite.set_defaults(handler=command_rewrite)

    magic = subparsers.add_parser("magic", help="print the Section 7 magic transformation")
    magic.add_argument("program")
    magic.set_defaults(handler=command_magic)

    evaluate = subparsers.add_parser("evaluate", help="evaluate a program on a facts file")
    evaluate.add_argument("program")
    evaluate.add_argument("facts")
    evaluate.add_argument(
        "--engine",
        default=QuerySession.DEFAULT_ENGINE,
        help="evaluation strategy from the engine registry; resolved at run time so "
        "programmatically registered engines work too (default: %(default)s; "
        "see the `engines` subcommand for the registered set)",
    )
    evaluate.add_argument(
        "--max-iterations",
        type=int,
        default=None,
        help="abort fixpoint iteration after this many rounds",
    )
    evaluate.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline for the evaluation; past it the engine "
        "aborts at its next cooperative checkpoint with a timeout error",
    )
    evaluate.add_argument(
        "--explain",
        action="store_true",
        help="before evaluating, print the transform pipeline provenance and the "
        "join plan: SCC strata plus the chosen join order per rule",
    )
    evaluate.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="bind a goal parameter (repeatable); required once per $parameter "
        "declared by the program, e.g. --param who=john",
    )
    evaluate.add_argument(
        "--incremental",
        action="store_true",
        help="evaluate into a materialized view (counting + DRed maintenance) "
        "and report its per-stratum maintenance strategy",
    )
    evaluate.set_defaults(handler=command_evaluate)

    serve_bench = subparsers.add_parser(
        "serve-bench",
        help="drive a DatalogService with synthetic traffic over a parameterized "
        "query and report throughput/latency",
    )
    serve_bench.add_argument("program", help="program with a parameterized goal")
    serve_bench.add_argument("facts", help="facts file providing the database")
    serve_bench.add_argument("--requests", type=int, default=1000, help="total requests")
    serve_bench.add_argument("--threads", type=int, default=8, help="worker threads")
    serve_bench.add_argument(
        "--distinct", type=int, default=32,
        help="distinct constants drawn from the active domain",
    )
    serve_bench.add_argument(
        "--engine", default=QuerySession.DEFAULT_ENGINE,
        help="execution engine (default: %(default)s)",
    )
    serve_bench.add_argument(
        "--transform", action="append", default=[], choices=sorted(_TRANSFORMS),
        help="pipeline stage applied at prepare time (repeatable), e.g. --transform magic",
    )
    serve_bench.add_argument(
        "--cache-size", type=int, default=256, help="bounded LRU result-cache entries"
    )
    serve_bench.add_argument(
        "--no-cache", action="store_true",
        help="bypass the result cache so every request runs the engine",
    )
    serve_bench.add_argument(
        "--writes", type=int, default=0,
        help="interleave this many write operations (alternating insert/retract "
        "of synthetic facts) to measure the mixed read/write regime",
    )
    serve_bench.add_argument(
        "--materialize", action="store_true",
        help="keep a live materialized view per distinct binding; writes then "
        "maintain the views incrementally instead of invalidating the cache",
    )
    serve_bench.set_defaults(handler=command_serve_bench)

    serve = subparsers.add_parser(
        "serve",
        help="run the durable HTTP Datalog server (WAL + snapshots) until "
        "SIGTERM; restart recovers the full state from the data directory",
    )
    serve.add_argument("data_dir", help="directory for the WAL and snapshots")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=0,
        help="bind port; 0 picks a free one (printed as a READY line)",
    )
    serve.add_argument(
        "--fsync", default="always", choices=("always", "batch", "never"),
        help="WAL durability policy (default: %(default)s)",
    )
    serve.add_argument(
        "--snapshot-every", type=int, default=1024,
        help="snapshot + truncate the WAL after this many records",
    )
    serve.add_argument(
        "--max-pending-writes", type=int, default=64,
        help="admission-control bound; beyond it writes get 429 + Retry-After",
    )
    serve.add_argument(
        "--workers", type=int, default=4,
        help="thread-pool size for engine work (the event loop never blocks)",
    )
    serve.add_argument(
        "--engine-workers", type=int, default=None, metavar="N",
        help="parallel evaluation workers *inside* each engine run "
        "(depth-concurrent strata + sharded columnar deltas); distinct "
        "from --workers, which sizes the request-handler thread pool. "
        "Only engines with the parallel layer use it; others run serial",
    )
    serve.add_argument(
        "--sync-interval", type=float, default=None,
        help="periodic WAL fsync in seconds (for --fsync batch)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=256, help="LRU result-cache entries"
    )
    serve.add_argument(
        "--engine", default=QuerySession.DEFAULT_ENGINE,
        help="default execution engine for registered programs",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=None, metavar="SECONDS",
        help="deadline for engine-running requests; past it the evaluation "
        "aborts cooperatively and the client gets 408 (a request body's "
        "\"timeout\" field can tighten but never loosen this)",
    )
    serve.add_argument(
        "--slow-query-threshold", type=float, default=1.0, metavar="SECONDS",
        help="log + count requests slower than this (default: %(default)s)",
    )
    serve.set_defaults(handler=command_serve)

    load_bench = subparsers.add_parser(
        "load-bench",
        help="drive a running `repro serve` instance with N client processes "
        "over real sockets and report p50/p95/p99 + req/s (start the server "
        "with --engine-workers to measure parallel evaluation under load)",
    )
    load_bench.add_argument("--host", default="127.0.0.1", help="server address")
    load_bench.add_argument("--port", type=int, required=True, help="server port")
    load_bench.add_argument(
        "--processes", type=int, default=2, help="client processes (default: 2)"
    )
    load_bench.add_argument(
        "--requests", type=int, default=200, help="requests per process"
    )
    load_bench.add_argument(
        "--read-ratio", type=float, default=0.9,
        help="fraction of requests that are reads (default: 0.9)",
    )
    load_bench.add_argument(
        "--materialized-ratio", type=float, default=0.5,
        help="fraction of reads that hit the materialized binding",
    )
    load_bench.add_argument(
        "--nodes", type=int, default=24, help="graph size of the fixture workload"
    )
    load_bench.add_argument("--seed", type=int, default=1987, help="workload RNG seed")
    load_bench.add_argument(
        "--no-setup", action="store_true",
        help="skip installing the fixture workload (server already prepared)",
    )
    load_bench.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    load_bench.set_defaults(handler=command_load_bench)

    engines = subparsers.add_parser("engines", help="list the registered evaluation engines")
    engines.set_defaults(handler=command_engines)

    bounded = subparsers.add_parser("bounded", help="Proposition 8.2 boundedness report")
    bounded.add_argument("program")
    bounded.set_defaults(handler=command_bounded)

    return parser


def main(argv: Optional[Iterable[str]] = None) -> int:
    parser = build_parser()
    arguments = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return arguments.handler(arguments)
    except ReproError as error:
        sys.stderr.write(f"error: {error}\n")
        return 2
    except FileNotFoundError as error:
        sys.stderr.write(f"error: {error}\n")
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
