"""Command-line interface: analyse, transform, and evaluate chain programs.

Usage (after ``pip install -e .``)::

    python -m repro.cli analyze  program.dl          # Theorem 3.3 verdict + certificate
    python -m repro.cli grammar  program.dl          # G(H), language class, sample words
    python -m repro.cli rewrite  program.dl          # the equivalent monadic program, if constructible
    python -m repro.cli magic    program.dl          # Section 7 quotient-based magic transformation
    python -m repro.cli evaluate program.dl facts.dl # run the program on a database of facts
    python -m repro.cli engines                      # list the registered evaluation engines
    python -m repro.cli bounded  program.dl          # Proposition 8.2 report

``evaluate`` is a thin wrapper over the unified evaluation API: it builds a
:class:`repro.datalog.QuerySession` and dispatches to any engine registered
in :mod:`repro.datalog.engine.registry` — pick one with ``--engine``
(``naive``, ``seminaive``, ``topdown``, ``magic``, or anything a plugin has
registered; see ``engines``).

A program file contains a goal line ``?p(c, Y)`` followed by chain rules; a
facts file contains ground facts, one per clause.
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable, Optional

from repro.core.boundedness import analyze_boundedness
from repro.core.chain import ChainProgram
from repro.core.grammar_map import to_grammar
from repro.core.magic_chain import magic_transform_chain
from repro.core.propagation import propagate_selection
from repro.datalog import Database, QuerySession, format_program, parse_facts, parse_program
from repro.datalog.engine import compile_program_plan, engine_descriptions, get_engine
from repro.errors import ReproError
from repro.languages.cfg import format_grammar
from repro.languages.cfg_analysis import enumerate_language
from repro.languages.cfg_properties import regularity_evidence


def _load_chain(path: str) -> ChainProgram:
    with open(path, "r", encoding="utf-8") as handle:
        return ChainProgram(parse_program(handle.read()))


def _load_database(path: str) -> Database:
    with open(path, "r", encoding="utf-8") as handle:
        return Database.from_facts(parse_facts(handle.read()))


def _print(text: str = "") -> None:
    sys.stdout.write(text + "\n")


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def command_analyze(arguments: argparse.Namespace) -> int:
    chain = _load_chain(arguments.program)
    result = propagate_selection(chain)
    _print(f"goal form : {result.goal_form.value}")
    _print(f"verdict   : {result.verdict.value}")
    _print(f"reason    : {result.reason}")
    if result.witness is not None:
        _print(f"proof     : {result.witness.proof}")
    if result.monadic_program is not None and arguments.show_program:
        _print()
        _print("equivalent monadic program:")
        _print(format_program(result.monadic_program))
    return 0


def command_grammar(arguments: argparse.Namespace) -> int:
    chain = _load_chain(arguments.program)
    grammar = to_grammar(chain)
    _print("G(H):")
    _print(format_grammar(grammar))
    evidence = regularity_evidence(grammar)
    _print()
    _print(f"regularity certificate : {evidence.reason}")
    words = enumerate_language(grammar, arguments.max_length)
    rendered = ", ".join(" ".join(word) for word in words) if words else "(none)"
    _print(f"words up to length {arguments.max_length}: {rendered}")
    return 0


def command_rewrite(arguments: argparse.Namespace) -> int:
    chain = _load_chain(arguments.program)
    result = propagate_selection(chain)
    if result.monadic_program is None:
        _print(f"no monadic program constructed: {result.reason}")
        return 1
    _print(format_program(result.monadic_program))
    return 0


def command_magic(arguments: argparse.Namespace) -> int:
    chain = _load_chain(arguments.program)
    transformed = magic_transform_chain(chain)
    _print(format_program(transformed))
    return 0


def command_evaluate(arguments: argparse.Namespace) -> int:
    with open(arguments.program, "r", encoding="utf-8") as handle:
        program = parse_program(handle.read())
    database = _load_database(arguments.facts)
    session = QuerySession(program, database)
    if arguments.explain:
        # Explain the plan for what the engine actually evaluates: engines
        # that rewrite the program internally (e.g. ``magic``) run a
        # different plan than the session's program would, and non-planning
        # engines (``topdown``) use no bottom-up join plan at all.
        engine_object = get_engine(arguments.engine)
        engine_transform = getattr(engine_object, "transform", None)
        if engine_transform is not None:
            _print(session.explain())
            _print(f"engine {arguments.engine!r} rewrites the program before evaluating:")
            rewritten = engine_transform(session.transformed_program)
            _print(compile_program_plan(rewritten, database).describe())
        elif getattr(engine_object, "supports_planner", False):
            _print(session.explain(plans=True))
        else:
            _print(session.explain())
            _print(
                f"engine {arguments.engine!r} does not use the bottom-up join planner; "
                "no join plan to show"
            )
        _print()
    result = session.evaluate(engine=arguments.engine, max_iterations=arguments.max_iterations)
    answers = sorted(result.answers(), key=repr)
    for answer in answers:
        _print("(" + ", ".join(str(value) for value in answer) + ")")
    _print(f"-- {len(answers)} answers; engine={arguments.engine}; {result.statistics}")
    return 0


def command_engines(arguments: argparse.Namespace) -> int:
    descriptions = engine_descriptions()
    width = max((len(name) for name in descriptions), default=0)
    for name, description in descriptions.items():
        _print(f"{name.ljust(width)}  {description}")
    return 0


def command_bounded(arguments: argparse.Namespace) -> int:
    chain = _load_chain(arguments.program)
    report = analyze_boundedness(chain)
    _print(f"bounded / first-order expressible : {report.bounded}")
    if report.bounded:
        words = ", ".join(" ".join(word) for word in report.language_words)
        _print(f"L(H) = {{ {words} }}")
        _print(f"derivation-size bound : {report.derivation_size_bound}")
        _print(f"first-order form      : {report.first_order_formula}")
    return 0


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Selection propagation analysis for chain Datalog programs "
        "(Beeri-Kanellakis-Bancilhon-Ramakrishnan).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="Theorem 3.3 verdict for the program's goal")
    analyze.add_argument("program", help="path to the chain program")
    analyze.add_argument(
        "--show-program", action="store_true", help="also print the constructed monadic program"
    )
    analyze.set_defaults(handler=command_analyze)

    grammar = subparsers.add_parser("grammar", help="print G(H) and its language class")
    grammar.add_argument("program")
    grammar.add_argument("--max-length", type=int, default=5, help="word enumeration bound")
    grammar.set_defaults(handler=command_grammar)

    rewrite = subparsers.add_parser("rewrite", help="print the equivalent monadic program")
    rewrite.add_argument("program")
    rewrite.set_defaults(handler=command_rewrite)

    magic = subparsers.add_parser("magic", help="print the Section 7 magic transformation")
    magic.add_argument("program")
    magic.set_defaults(handler=command_magic)

    evaluate = subparsers.add_parser("evaluate", help="evaluate a program on a facts file")
    evaluate.add_argument("program")
    evaluate.add_argument("facts")
    evaluate.add_argument(
        "--engine",
        default=QuerySession.DEFAULT_ENGINE,
        help="evaluation strategy from the engine registry; resolved at run time so "
        "programmatically registered engines work too (default: %(default)s; "
        "see the `engines` subcommand for the registered set)",
    )
    evaluate.add_argument(
        "--max-iterations",
        type=int,
        default=None,
        help="abort fixpoint iteration after this many rounds",
    )
    evaluate.add_argument(
        "--explain",
        action="store_true",
        help="before evaluating, print the transform pipeline provenance and the "
        "join plan: SCC strata plus the chosen join order per rule",
    )
    evaluate.set_defaults(handler=command_evaluate)

    engines = subparsers.add_parser("engines", help="list the registered evaluation engines")
    engines.set_defaults(handler=command_engines)

    bounded = subparsers.add_parser("bounded", help="Proposition 8.2 boundedness report")
    bounded.add_argument("program")
    bounded.set_defaults(handler=command_bounded)

    return parser


def main(argv: Optional[Iterable[str]] = None) -> int:
    parser = build_parser()
    arguments = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return arguments.handler(arguments)
    except ReproError as error:
        sys.stderr.write(f"error: {error}\n")
        return 2
    except FileNotFoundError as error:
        sys.stderr.write(f"error: {error}\n")
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
