"""Finite relational structures.

A database of Section 2.1 *is* a finite structure; this module provides the
structure view used by the finite-model-theory tools (first-order
evaluation, monadic generalized spectra, symmetry arguments), together with
constructors for the structures the paper's proofs use: directed paths,
directed cycles, and paths-with-disjoint-cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.datalog.database import Database


@dataclass(frozen=True)
class FiniteStructure:
    """A finite structure: a domain, named relations, and named constants."""

    domain: FrozenSet[object]
    relations: Mapping[str, FrozenSet[Tuple]]
    constants: Mapping[str, object] = field(default_factory=dict)

    def __init__(
        self,
        domain: Iterable[object],
        relations: Mapping[str, Iterable[Tuple]],
        constants: Optional[Mapping[str, object]] = None,
    ):
        object.__setattr__(self, "domain", frozenset(domain))
        object.__setattr__(
            self,
            "relations",
            {name: frozenset(tuple(t) for t in tuples) for name, tuples in relations.items()},
        )
        object.__setattr__(self, "constants", dict(constants or {}))
        for name, element in self.constants.items():
            if element not in self.domain:
                raise ValueError(f"constant {name} = {element!r} is not in the domain")
        for name, tuples in self.relations.items():
            for values in tuples:
                for value in values:
                    if value not in self.domain:
                        raise ValueError(f"relation {name} mentions {value!r} outside the domain")

    # ------------------------------------------------------------------
    def relation(self, name: str) -> FrozenSet[Tuple]:
        """Tuples of the named relation (empty if absent)."""
        return self.relations.get(name, frozenset())

    def constant(self, name: str) -> object:
        """The interpretation of a named constant."""
        return self.constants[name]

    def size(self) -> int:
        """Cardinality of the domain."""
        return len(self.domain)

    def with_constants(self, constants: Mapping[str, object]) -> "FiniteStructure":
        """Return a copy with extra named constants."""
        merged = dict(self.constants)
        merged.update(constants)
        return FiniteStructure(self.domain, self.relations, merged)

    def with_relations(self, relations: Mapping[str, Iterable[Tuple]]) -> "FiniteStructure":
        """Return a copy with extra (or replaced) relations."""
        merged: Dict[str, Iterable[Tuple]] = dict(self.relations)
        merged.update(relations)
        return FiniteStructure(self.domain, merged, self.constants)

    # ------------------------------------------------------------------
    def to_database(self) -> Database:
        """The Datalog view of the structure (constants are dropped)."""
        return Database({name: set(tuples) for name, tuples in self.relations.items()})

    @classmethod
    def from_database(
        cls,
        database: Database,
        constants: Optional[Mapping[str, object]] = None,
        extra_domain: Iterable[object] = (),
    ) -> "FiniteStructure":
        """Wrap a database; the domain is its active domain plus any extras."""
        domain = set(database.active_domain()) | set(extra_domain)
        if constants:
            domain.update(constants.values())
        return cls(domain, database.relations(), constants)


# ----------------------------------------------------------------------
# The structures used by the paper's lower-bound arguments
# ----------------------------------------------------------------------
def directed_path(length: int, relation: str = "b", prefix: str = "p") -> FiniteStructure:
    """A directed path with ``length`` edges (hence ``length + 1`` nodes)."""
    nodes = [f"{prefix}{i}" for i in range(length + 1)]
    edges = {(nodes[i], nodes[i + 1]) for i in range(length)}
    return FiniteStructure(nodes, {relation: edges})


def directed_cycle(length: int, relation: str = "b", prefix: str = "c") -> FiniteStructure:
    """A directed cycle with ``length`` nodes (length >= 1)."""
    if length < 1:
        raise ValueError("a cycle needs at least one node")
    nodes = [f"{prefix}{i}" for i in range(length)]
    edges = {(nodes[i], nodes[(i + 1) % length]) for i in range(length)}
    return FiniteStructure(nodes, {relation: edges})


def path_with_disjoint_cycle(
    path_length: int, cycle_length: int, relation: str = "b"
) -> FiniteStructure:
    """The structure of Lemma 6.2: a path plus a disjoint cycle.

    Fagin's Ehrenfeucht–Fraïssé argument plays the game between the plain
    path and this structure; the executable experiments use both to exhibit
    the behaviour of monadic programs and MGS search on them.
    """
    path = directed_path(path_length, relation, prefix="p")
    cycle = directed_cycle(cycle_length, relation, prefix="c")
    domain = set(path.domain) | set(cycle.domain)
    edges = set(path.relation(relation)) | set(cycle.relation(relation))
    return FiniteStructure(domain, {relation: edges})


def union_structure(left: FiniteStructure, right: FiniteStructure) -> FiniteStructure:
    """Disjoint-union-by-name of two structures (domains must already be disjoint)."""
    if left.domain & right.domain:
        raise ValueError("structures are not disjoint")
    relations: Dict[str, set] = {}
    for source in (left, right):
        for name, tuples in source.relations.items():
            relations.setdefault(name, set()).update(tuples)
    constants = dict(left.constants)
    constants.update(right.constants)
    return FiniteStructure(set(left.domain) | set(right.domain), relations, constants)
