"""WS1S: the weak monadic second-order theory of one successor, compiled to automata.

Section 5 of the paper proves its bound by translating a monadic Datalog
program into a WS1S formula and invoking the Büchi–Elgot–Trakhtenbrot
theorem: *every family of finite sets definable in WS1S corresponds to a
regular language of finite words*.  This module makes that theorem
executable in the standard (MONA-style) way:

* every variable is a second-order variable ranging over finite sets of
  nonnegative integers, encoded as a 0/1 *track* of a finite word;
* first-order variables are singleton-constrained second-order variables
  (the sugar constructors below add the constraint);
* every formula is compiled to a deterministic finite automaton over the
  alphabet of bit-vectors, closed under trailing-zero padding;
* satisfiability, validity, model enumeration, and the extraction of
  ``Language(φ)`` (the regular language of encodings of ``Models(φ)``) are
  then automaton computations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.languages.regular.dfa import DFA
from repro.languages.regular.minimize import minimize_dfa
from repro.languages.regular.nfa import NFA
from repro.languages.regular.operations import dfa_intersection, dfa_union, dfa_complement
from repro.languages.regular.properties import enumerate_words, is_empty_language

Letter = Tuple[int, ...]


# ----------------------------------------------------------------------
# Track automata
# ----------------------------------------------------------------------
def _letters(track_count: int) -> List[Letter]:
    return [tuple(bits) for bits in itertools.product((0, 1), repeat=track_count)]


@dataclass(frozen=True)
class TrackAutomaton:
    """A DFA over bit-vector letters, one track per free variable (sorted by name)."""

    tracks: Tuple[str, ...]
    dfa: DFA

    def accepts_assignment(self, assignment: Mapping[str, Iterable[int]]) -> bool:
        """Does the automaton accept the encoding of the given sets?"""
        sets = {name: frozenset(assignment.get(name, ())) for name in self.tracks}
        length = 0
        for values in sets.values():
            if values:
                length = max(length, max(values) + 1)
        word = []
        for position in range(length):
            word.append(tuple(1 if position in sets[name] else 0 for name in self.tracks))
        return self.dfa.accepts(tuple(word))

    def zero_letter(self) -> Letter:
        """The all-zero letter (every track bit off) used for padding closure."""
        return tuple(0 for _ in self.tracks)


def _pad_closure(dfa: DFA, zero: Letter) -> DFA:
    """Make acceptance invariant under appending all-zero letters."""
    # A state is accepting if some accepting state is reachable via zero letters.
    reachable_by_zero: Dict[object, Set[object]] = {}
    accepting = set(dfa.accepting)
    changed = True
    new_accepting = set(accepting)
    while changed:
        changed = False
        for state in dfa.states:
            if state in new_accepting:
                continue
            target = dfa.delta(state, zero)
            if target is not None and target in new_accepting:
                new_accepting.add(state)
                changed = True
    del reachable_by_zero
    return dfa.with_accepting(new_accepting)


def _cylindrify(automaton: TrackAutomaton, tracks: Sequence[str]) -> TrackAutomaton:
    """Extend an automaton to a superset of its tracks (new bits are unconstrained)."""
    new_tracks = tuple(sorted(set(tracks) | set(automaton.tracks)))
    if new_tracks == automaton.tracks:
        return automaton
    old_index = {name: automaton.tracks.index(name) for name in automaton.tracks}
    positions = [old_index.get(name) for name in new_tracks]
    letters = _letters(len(new_tracks))
    transitions: Dict[Tuple[object, Letter], object] = {}
    for (state, old_letter), target in automaton.dfa.transitions.items():
        for letter in letters:
            projected = tuple(
                letter[i] for i, position in enumerate(positions) if position is not None
            )
            if projected == old_letter:
                transitions[(state, letter)] = target
    dfa = DFA(automaton.dfa.states, letters, transitions, automaton.dfa.start, automaton.dfa.accepting)
    return TrackAutomaton(new_tracks, dfa)


def _combine(
    left: TrackAutomaton, right: TrackAutomaton, operation
) -> TrackAutomaton:
    tracks = tuple(sorted(set(left.tracks) | set(right.tracks)))
    left_aligned = _cylindrify(left, tracks)
    right_aligned = _cylindrify(right, tracks)
    letters = _letters(len(tracks))
    left_dfa = left_aligned.dfa.complete(letters)
    right_dfa = right_aligned.dfa.complete(letters)
    combined = operation(left_dfa, right_dfa)
    return TrackAutomaton(tracks, minimize_dfa(combined))


def _negate(automaton: TrackAutomaton) -> TrackAutomaton:
    letters = _letters(len(automaton.tracks))
    completed = automaton.dfa.complete(letters)
    negated = dfa_complement(completed)
    zero = automaton.zero_letter()
    return TrackAutomaton(automaton.tracks, minimize_dfa(_pad_closure(negated, zero)))


def _project(automaton: TrackAutomaton, track: str) -> TrackAutomaton:
    """Existentially quantify one track away."""
    if track not in automaton.tracks:
        return automaton
    index = automaton.tracks.index(track)
    new_tracks = tuple(name for name in automaton.tracks if name != track)
    transitions: Dict[Tuple[object, Optional[str]], Set[object]] = {}
    for (state, letter), target in automaton.dfa.transitions.items():
        new_letter = tuple(bit for i, bit in enumerate(letter) if i != index)
        transitions.setdefault((state, new_letter), set()).add(target)
    nfa = NFA(
        automaton.dfa.states,
        _letters(len(new_tracks)),
        transitions,
        automaton.dfa.start,
        automaton.dfa.accepting,
    )
    dfa = nfa.to_dfa()
    zero = tuple(0 for _ in new_tracks)
    return TrackAutomaton(new_tracks, minimize_dfa(_pad_closure(dfa, zero)))


def _single_state_automaton(tracks: Tuple[str, ...], allowed) -> TrackAutomaton:
    letters = [letter for letter in _letters(len(tracks)) if allowed(letter)]
    transitions = {(0, letter): 0 for letter in letters}
    return TrackAutomaton(tracks, DFA({0}, _letters(len(tracks)), transitions, 0, {0}))


# ----------------------------------------------------------------------
# Formulas
# ----------------------------------------------------------------------
class WFormula:
    """Base class of WS1S formulas (all variables are second order)."""

    def free_variables(self) -> FrozenSet[str]:
        """The second-order variables the compiled automaton needs tracks for."""
        raise NotImplementedError

    def automaton(self) -> TrackAutomaton:
        """Compile to a track automaton over the formula's free variables."""
        raise NotImplementedError

    def __and__(self, other: "WFormula") -> "WFormula":
        return WAnd((self, other))

    def __or__(self, other: "WFormula") -> "WFormula":
        return WOr((self, other))

    def __invert__(self) -> "WFormula":
        return WNot(self)


@dataclass(frozen=True)
class SubsetEq(WFormula):
    """``X ⊆ Y``."""

    left: str
    right: str

    def free_variables(self) -> FrozenSet[str]:
        return frozenset({self.left, self.right})

    def automaton(self) -> TrackAutomaton:
        """One-state automaton rejecting any position with the left bit set but not the right."""
        tracks = tuple(sorted({self.left, self.right}))
        left_index = tracks.index(self.left)
        right_index = tracks.index(self.right)
        if self.left == self.right:
            return _single_state_automaton(tracks, lambda letter: True)
        return _single_state_automaton(
            tracks, lambda letter: not (letter[left_index] == 1 and letter[right_index] == 0)
        )


@dataclass(frozen=True)
class SetEqual(WFormula):
    """``X = Y`` (as sets)."""

    left: str
    right: str

    def free_variables(self) -> FrozenSet[str]:
        return frozenset({self.left, self.right})

    def automaton(self) -> TrackAutomaton:
        """One-state automaton requiring both track bits to agree at every position."""
        tracks = tuple(sorted({self.left, self.right}))
        if self.left == self.right:
            return _single_state_automaton(tracks, lambda letter: True)
        return _single_state_automaton(tracks, lambda letter: letter[0] == letter[1])


@dataclass(frozen=True)
class IsEmptySet(WFormula):
    """``X = ∅``."""

    name: str

    def free_variables(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def automaton(self) -> TrackAutomaton:
        """One-state automaton allowing only 0-bits on the track."""
        return _single_state_automaton((self.name,), lambda letter: letter[0] == 0)


@dataclass(frozen=True)
class Singleton(WFormula):
    """``|X| = 1``."""

    name: str

    def free_variables(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def automaton(self) -> TrackAutomaton:
        """Two states counting the 1-bits on the track; accept after exactly one."""
        tracks = (self.name,)
        transitions = {
            (0, (0,)): 0,
            (0, (1,)): 1,
            (1, (0,)): 1,
        }
        return TrackAutomaton(tracks, DFA({0, 1}, _letters(1), transitions, 0, {1}))


@dataclass(frozen=True)
class SuccSets(WFormula):
    """``X = {i}`` and ``Y = {i + 1}`` for some position ``i`` (the interpreted succ)."""

    first: str
    second: str

    def free_variables(self) -> FrozenSet[str]:
        return frozenset({self.first, self.second})

    def automaton(self) -> TrackAutomaton:
        """Three states enforcing a 1-bit on X immediately followed by one on Y."""
        if self.first == self.second:
            # X = {i} and X = {i+1} is unsatisfiable.
            return TrackAutomaton((self.first,), DFA({0}, _letters(1), {}, 0, set()))
        tracks = tuple(sorted({self.first, self.second}))
        first_index = tracks.index(self.first)
        second_index = tracks.index(self.second)
        # States: 0 = nothing seen, 1 = saw X (expect Y now), 2 = done.
        transitions: Dict[Tuple[object, Letter], object] = {}
        for letter in _letters(2):
            x_bit, y_bit = letter[first_index], letter[second_index]
            if x_bit == 0 and y_bit == 0:
                transitions[(0, letter)] = 0
                transitions[(2, letter)] = 2
            elif x_bit == 1 and y_bit == 0:
                transitions[(0, letter)] = 1
            elif x_bit == 0 and y_bit == 1:
                transitions[(1, letter)] = 2
        return TrackAutomaton(tracks, DFA({0, 1, 2}, _letters(2), transitions, 0, {2}))


@dataclass(frozen=True)
class ContainsZero(WFormula):
    """``0 ∈ X``."""

    name: str

    def free_variables(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def automaton(self) -> TrackAutomaton:
        """Accept iff the very first letter carries the track's bit."""
        tracks = (self.name,)
        transitions = {
            (0, (1,)): 1,
            (1, (0,)): 1,
            (1, (1,)): 1,
        }
        return TrackAutomaton(tracks, DFA({0, 1}, _letters(1), transitions, 0, {1}))


@dataclass(frozen=True)
class WTrue(WFormula):
    """The true formula (no free variables)."""

    def free_variables(self) -> FrozenSet[str]:
        return frozenset()

    def automaton(self) -> TrackAutomaton:
        """The universal one-state automaton over zero tracks."""
        return _single_state_automaton((), lambda letter: True)


@dataclass(frozen=True)
class WFalse(WFormula):
    """The false formula (no free variables)."""

    def free_variables(self) -> FrozenSet[str]:
        return frozenset()

    def automaton(self) -> TrackAutomaton:
        """An automaton with no accepting states (over zero tracks)."""
        return TrackAutomaton((), DFA({0}, _letters(0), {}, 0, set()))


@dataclass(frozen=True)
class WNot(WFormula):
    """Negation."""

    inner: WFormula

    def free_variables(self) -> FrozenSet[str]:
        return self.inner.free_variables()

    def automaton(self) -> TrackAutomaton:
        """Complement the inner automaton, then re-close under zero padding."""
        return _negate(self.inner.automaton())


@dataclass(frozen=True)
class WAnd(WFormula):
    """Conjunction."""

    parts: Tuple[WFormula, ...]

    def __init__(self, parts: Iterable[WFormula]):
        object.__setattr__(self, "parts", tuple(parts))

    def free_variables(self) -> FrozenSet[str]:
        names: Set[str] = set()
        for part in self.parts:
            names |= part.free_variables()
        return frozenset(names)

    def automaton(self) -> TrackAutomaton:
        """Product (intersection) of the conjuncts' automata over aligned tracks."""
        if not self.parts:
            return WTrue().automaton()
        result = self.parts[0].automaton()
        for part in self.parts[1:]:
            result = _combine(result, part.automaton(), dfa_intersection)
        return result


@dataclass(frozen=True)
class WOr(WFormula):
    """Disjunction."""

    parts: Tuple[WFormula, ...]

    def __init__(self, parts: Iterable[WFormula]):
        object.__setattr__(self, "parts", tuple(parts))

    def free_variables(self) -> FrozenSet[str]:
        names: Set[str] = set()
        for part in self.parts:
            names |= part.free_variables()
        return frozenset(names)

    def automaton(self) -> TrackAutomaton:
        """Product (union) of the disjuncts' automata over aligned tracks."""
        if not self.parts:
            return WFalse().automaton()
        result = self.parts[0].automaton()
        for part in self.parts[1:]:
            result = _combine(result, part.automaton(), dfa_union)
        return result


def WImplies(antecedent: WFormula, consequent: WFormula) -> WFormula:
    """Implication (sugar)."""
    return WOr((WNot(antecedent), consequent))


@dataclass(frozen=True)
class WExists(WFormula):
    """Existential (weak, second-order) quantification."""

    variable: str
    body: WFormula

    def free_variables(self) -> FrozenSet[str]:
        return self.body.free_variables() - {self.variable}

    def automaton(self) -> TrackAutomaton:
        """Project the quantified variable's track away (subset construction)."""
        inner = self.body.automaton()
        return _project(inner, self.variable)


def WForall(variable: str, body: WFormula) -> WFormula:
    """Universal quantification (sugar: ``¬∃¬``)."""
    return WNot(WExists(variable, WNot(body)))


def exists_many(variables: Iterable[str], body: WFormula) -> WFormula:
    """Nested existential quantification."""
    result = body
    for variable in reversed(list(variables)):
        result = WExists(variable, result)
    return result


def forall_many(variables: Iterable[str], body: WFormula) -> WFormula:
    """Nested universal quantification."""
    result = body
    for variable in reversed(list(variables)):
        result = WForall(variable, result)
    return result


# ----------------------------------------------------------------------
# First-order sugar (first-order variables are singleton sets)
# ----------------------------------------------------------------------
def member(element: str, container: str) -> WFormula:
    """``x ∈ Y`` where ``x`` is a first-order (singleton) variable."""
    return SubsetEq(element, container)


def fo_equal(left: str, right: str) -> WFormula:
    """Equality of two first-order variables."""
    return SetEqual(left, right)


def fo_succ(left: str, right: str) -> WFormula:
    """``right = left + 1`` for first-order variables."""
    return SuccSets(left, right)


def fo_zero(variable: str) -> WFormula:
    """``variable = 0`` for a first-order variable."""
    return WAnd((Singleton(variable), ContainsZero(variable)))


def fo_exists(variable: str, body: WFormula) -> WFormula:
    """First-order existential quantification (adds the singleton constraint)."""
    return WExists(variable, WAnd((Singleton(variable), body)))


def fo_forall(variable: str, body: WFormula) -> WFormula:
    """First-order universal quantification."""
    return WNot(fo_exists(variable, WNot(body)))


# ----------------------------------------------------------------------
# Top-level queries
# ----------------------------------------------------------------------
def is_satisfiable(formula: WFormula) -> bool:
    """Is there an assignment of finite sets satisfying the formula?"""
    automaton = formula.automaton()
    return not is_empty_language(automaton.dfa)


def is_valid_sentence(formula: WFormula) -> bool:
    """Truth of a sentence (no free variables).

    The automaton of a sentence accepts either every word or no word (after
    padding closure), so truth is acceptance of the empty word.
    """
    if formula.free_variables():
        raise ValueError("is_valid_sentence expects a sentence (no free variables)")
    automaton = formula.automaton()
    return automaton.dfa.accepts(())


def models_language(formula: WFormula) -> TrackAutomaton:
    """The automaton for ``Language(φ)``: the regular language encoding ``Models(φ)``.

    This is the executable form of the fundamental property the paper quotes
    in Section 2.2: *Language(φ) is a regular language for each φ*.
    """
    return formula.automaton()


def enumerate_models(
    formula: WFormula, max_length: int, max_count: Optional[int] = None
) -> List[Dict[str, FrozenSet[int]]]:
    """Enumerate satisfying assignments (as finite sets) up to an encoding length."""
    automaton = formula.automaton()
    assignments: List[Dict[str, FrozenSet[int]]] = []
    seen: Set[Tuple[Tuple[str, Tuple[int, ...]], ...]] = set()
    for word in enumerate_words(automaton.dfa, max_length, max_count=None):
        sets: Dict[str, Set[int]] = {name: set() for name in automaton.tracks}
        for position, letter in enumerate(word):
            for track, bit in zip(automaton.tracks, letter):
                if bit:
                    sets[track].add(position)
        key = tuple(sorted((name, tuple(sorted(values))) for name, values in sets.items()))
        if key in seen:
            continue
        seen.add(key)
        assignments.append({name: frozenset(values) for name, values in sets.items()})
        if max_count is not None and len(assignments) >= max_count:
            break
    return assignments


def partition_word_dfa(
    automaton: TrackAutomaton, letter_of_track: Mapping[str, str]
) -> DFA:
    """Convert a track automaton into a word DFA over named letters.

    ``letter_of_track`` maps each track to an alphabet symbol.  Positions are
    expected to carry exactly one 1-bit (the partition constraint of
    Lemma 5.1's ``φ2``/``φ3``); transitions on any other bit pattern are
    dropped.  The resulting DFA recognises the set of strings whose
    position-wise block membership satisfies the formula.
    """
    tracks = automaton.tracks
    missing = [track for track in tracks if track not in letter_of_track]
    if missing:
        raise ValueError(f"no letter given for tracks {missing}")
    transitions: Dict[Tuple[object, str], object] = {}
    for (state, letter), target in automaton.dfa.transitions.items():
        if sum(letter) != 1:
            continue
        index = letter.index(1)
        symbol = letter_of_track[tracks[index]]
        transitions[(state, symbol)] = target
    alphabet = set(letter_of_track.values())
    dfa = DFA(automaton.dfa.states, alphabet, transitions, automaton.dfa.start, automaton.dfa.accepting)
    return minimize_dfa(dfa.reachable())
