"""Monadic generalized spectra (Fagin), Section 2.2 and Section 6 of the paper.

A set of finite structures is an MGS over a vocabulary when it is the set of
models of an existential *monadic* second-order sentence
``∃w1 ... ∃wn σ`` with ``σ`` first order.  The paper uses three concrete
spectra (Examples 2.2.1–2.2.3) and one non-spectrum (directed acyclic
graphs, Lemma 6.2).  Here we provide:

* a generic checker that decides ``∃w1...∃wn σ`` on a *given finite
  structure* by exhaustive search over monadic interpretations (exponential,
  for small structures — the lower bound itself cannot be decided, but its
  observable consequences can be exercised);
* the paper's named spectra as ready-made :class:`MGSSpec` objects, together
  with direct polynomial-time reference checkers used to validate the
  generic search in tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.logic.fo import (
    And,
    Const,
    Eq,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Rel,
    Var,
)
from repro.logic.structures import FiniteStructure


@dataclass(frozen=True)
class MGSSpec:
    """An existential monadic second-order sentence ``∃w1 ... ∃wn σ``."""

    monadic_names: Tuple[str, ...]
    sentence: Formula
    description: str = ""

    def check(self, structure: FiniteStructure, max_domain: int = 12) -> bool:
        """Does the structure satisfy the sentence for *some* monadic interpretation?

        The search enumerates all assignments of each element to a subset of
        the monadic predicates, i.e. ``(2**n)**|domain|`` candidates; the
        *max_domain* guard keeps that explicit.
        """
        domain = sorted(structure.domain, key=repr)
        if len(domain) > max_domain:
            raise ValueError(
                f"structure has {len(domain)} elements; exhaustive MGS search is capped "
                f"at {max_domain} (raise max_domain explicitly to override)"
            )
        return self.witness(structure, max_domain) is not None

    def witness(
        self, structure: FiniteStructure, max_domain: int = 12
    ) -> Optional[Dict[str, FrozenSet[Tuple]]]:
        """A satisfying monadic interpretation, or ``None``."""
        domain = sorted(structure.domain, key=repr)
        if len(domain) > max_domain:
            raise ValueError(
                f"structure has {len(domain)} elements; exhaustive MGS search is capped "
                f"at {max_domain}"
            )
        count = len(self.monadic_names)
        for colouring in itertools.product(range(2**count), repeat=len(domain)):
            interpretations: Dict[str, set] = {name: set() for name in self.monadic_names}
            for element, colours in zip(domain, colouring):
                for index, name in enumerate(self.monadic_names):
                    if colours & (1 << index):
                        interpretations[name].add((element,))
            frozen = {name: frozenset(values) for name, values in interpretations.items()}
            if self.sentence.evaluate(structure, {}, frozen):
                return frozen
        return None


# ----------------------------------------------------------------------
# Example 2.2.1: disconnected undirected graphs are an MGS over b.
# ----------------------------------------------------------------------
def disconnected_graph_spec(edge: str = "b", colour: str = "w") -> MGSSpec:
    """``∃w ( ∃x w(x) ∧ ∃x ¬w(x) ∧ ∀x∀y (b(x,y) → (w(x) ↔ w(y))) )``."""
    x, y = Var("X"), Var("Y")
    iff = And(
        (
            Implies(Rel(colour, (x,)), Rel(colour, (y,))),
            Implies(Rel(colour, (y,)), Rel(colour, (x,))),
        )
    )
    sentence = And(
        (
            Exists("X", Rel(colour, (x,))),
            Exists("X", Not(Rel(colour, (x,)))),
            Forall("X", Forall("Y", Implies(Rel(edge, (x, y)), iff))),
        )
    )
    return MGSSpec((colour,), sentence, "disconnected graphs (Example 2.2.1)")


def is_disconnected(structure: FiniteStructure, edge: str = "b") -> bool:
    """Reference checker: is the graph (viewed as undirected) disconnected?"""
    domain = list(structure.domain)
    if len(domain) <= 1:
        return False
    adjacency: Dict[object, set] = {node: set() for node in domain}
    for (source, target) in structure.relation(edge):
        adjacency[source].add(target)
        adjacency[target].add(source)
    seen = {domain[0]}
    frontier = [domain[0]]
    while frontier:
        node = frontier.pop()
        for neighbour in adjacency[node]:
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return len(seen) < len(domain)


# ----------------------------------------------------------------------
# Example 2.2.2: source-sink non-reachability is an MGS over b, c1, c2.
# ----------------------------------------------------------------------
def nonreachability_spec(edge: str = "b", source: str = "c1", sink: str = "c2", colour: str = "w") -> MGSSpec:
    """``∃w ( w(c1) ∧ ¬w(c2) ∧ ∀x∀y (w(x) ∧ b(x,y) → w(y)) )``.

    The colour marks the nodes reachable from the source; if the sink can be
    left uncoloured while the colouring is closed under edges, the sink is
    unreachable.
    """
    x, y = Var("X"), Var("Y")
    sentence = And(
        (
            Rel(colour, (Const(source),)),
            Not(Rel(colour, (Const(sink),))),
            Forall(
                "X",
                Forall(
                    "Y",
                    Implies(And((Rel(colour, (x,)), Rel(edge, (x, y)))), Rel(colour, (y,))),
                ),
            ),
        )
    )
    return MGSSpec((colour,), sentence, "source-sink directed non-reachability (Example 2.2.2)")


def is_unreachable(structure: FiniteStructure, edge: str = "b", source: str = "c1", sink: str = "c2") -> bool:
    """Reference checker: is the sink *not* reachable from the source along directed edges?"""
    start = structure.constant(source)
    goal = structure.constant(sink)
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        if node == goal:
            return False
        for (a, b) in structure.relation(edge):
            if a == node and b not in seen:
                seen.add(b)
                frontier.append(b)
    return goal not in seen


# ----------------------------------------------------------------------
# Example 2.2.3: directed graphs with a directed cycle are an MGS over b.
# ----------------------------------------------------------------------
def cyclic_graph_spec(edge: str = "b", colour: str = "w") -> MGSSpec:
    """``∃w ( ∃x w(x) ∧ ∀x (w(x) → (∃y w(y)∧b(x,y)) ∧ (∃z w(z)∧b(z,x))) )``.

    A non-empty set of nodes each of which has a successor and a predecessor
    inside the set witnesses a directed cycle (the paper states the version
    with in/out-degree exactly one; requiring at least one in each direction
    selects the same structures and keeps the formula small for the search).
    """
    x, y, z = Var("X"), Var("Y"), Var("Z")
    body = Implies(
        Rel(colour, (x,)),
        And(
            (
                Exists("Y", And((Rel(colour, (y,)), Rel(edge, (x, y))))),
                Exists("Z", And((Rel(colour, (z,)), Rel(edge, (z, x))))),
            )
        ),
    )
    sentence = And((Exists("X", Rel(colour, (x,))), Forall("X", body)))
    return MGSSpec((colour,), sentence, "directed graphs containing a cycle (Example 2.2.3)")


def has_directed_cycle(structure: FiniteStructure, edge: str = "b") -> bool:
    """Reference checker: does the directed graph contain a cycle?"""
    adjacency: Dict[object, set] = {node: set() for node in structure.domain}
    for (source, target) in structure.relation(edge):
        adjacency[source].add(target)
    colour: Dict[object, int] = {}

    def visit(node: object) -> bool:
        """DFS with grey/black colouring; a grey successor closes a cycle."""
        colour[node] = 1
        for successor in adjacency[node]:
            state = colour.get(successor, 0)
            if state == 1:
                return True
            if state == 0 and visit(successor):
                return True
        colour[node] = 2
        return False

    return any(visit(node) for node in structure.domain if colour.get(node, 0) == 0)


# ----------------------------------------------------------------------
# Lemma 6.2: directed *acyclic* graphs are NOT an MGS.
# ----------------------------------------------------------------------
def acyclicity_is_not_mgs_note() -> str:
    """A short statement of Lemma 6.2 (there is nothing to compute: it is a lower bound).

    The executable counterpart in this library is
    :func:`repro.logic.ef.monadic_colour_uniformity_on_cycle` plus the
    benchmarks of experiment E9, which show the observable consequence the
    paper derives from Lemma 6.2: no monadic Datalog program expresses the
    CYCLE query.
    """
    return (
        "Lemma 6.2: the set of directed acyclic graphs is not a monadic generalized "
        "spectrum; proved via Ehrenfeucht-Fraisse games between a path and a path "
        "plus a disjoint cycle."
    )
