"""Monadic fixpoint programs (Chandra–Harel) and Example 6.3 of the paper.

Section 6 closes with the observation that the inexpressibility of the CYCLE
query by monadic *Datalog* depends on the absence of negation: the richer
formalism of monadic fixpoint programs — rules whose bodies are first-order
formulas monotone in the head predicate — *can* express cyclicity.  The
paper's Example 6.3 uses the single rule::

    w(X) :- w(X) ∨ ∀Y. (b(X, Y) → w(Y))

whose least fixpoint marks exactly the nodes that do not lie on (and cannot
reach) a directed cycle; the graph is cyclic iff some node remains unmarked.

This module provides a small evaluator for such programs: each monadic
predicate is defined by one first-order formula over the structure's
relations, the already-computed fixpoint predicates, and the predicate
itself; the formula is required to be *monotone* in the fixpoint predicates
(checked semantically during iteration — the iteration is inflationary, so a
non-monotone body cannot silently corrupt the result).  Corollary 5.4's
subject (monadic fixpoints with interpreted successor) can be built from the
same ingredients by adding a ``succ`` relation to the structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Tuple

from repro.logic.fo import Formula, Var
from repro.logic.structures import FiniteStructure


@dataclass(frozen=True)
class MonadicFixpointRule:
    """One fixpoint definition: ``predicate(variable) <- body``.

    ``body`` is a first-order formula whose free variable is ``variable``;
    it may mention the structure's relations, previously defined fixpoint
    predicates, and ``predicate`` itself (positively, for the least fixpoint
    to be meaningful).
    """

    predicate: str
    variable: str
    body: Formula


@dataclass(frozen=True)
class MonadicFixpointProgram:
    """A sequence of monadic fixpoint definitions evaluated in order.

    Later rules may refer to the fixpoints of earlier ones, which gives the
    (non-nested) composition the paper's Example 6.3 needs: compute the
    marked nodes, then take a first-order difference.
    """

    rules: Tuple[MonadicFixpointRule, ...]

    def __init__(self, rules: Iterable[MonadicFixpointRule]):
        object.__setattr__(self, "rules", tuple(rules))

    def predicates(self) -> Tuple[str, ...]:
        """The fixpoint predicates, in rule order (simultaneous induction)."""
        return tuple(rule.predicate for rule in self.rules)


@dataclass
class FixpointEvaluation:
    """The result of evaluating a monadic fixpoint program."""

    interpretations: Dict[str, FrozenSet[Tuple]]
    iterations: Dict[str, int]

    def relation(self, predicate: str) -> FrozenSet[Tuple]:
        """The computed least-fixpoint interpretation of a predicate (1-tuples)."""
        return self.interpretations.get(predicate, frozenset())

    def members(self, predicate: str) -> FrozenSet:
        """The set of elements (not 1-tuples) in a monadic predicate."""
        return frozenset(value for (value,) in self.relation(predicate))


def evaluate_fixpoint_program(
    program: MonadicFixpointProgram,
    structure: FiniteStructure,
    max_iterations: int = 10_000,
) -> FixpointEvaluation:
    """Evaluate each rule to its least (inflationary) fixpoint, in order."""
    interpretations: Dict[str, FrozenSet[Tuple]] = {}
    iteration_counts: Dict[str, int] = {}
    for rule in program.rules:
        current: FrozenSet[Tuple] = frozenset()
        iterations = 0
        while True:
            iterations += 1
            if iterations > max_iterations:  # pragma: no cover - defensive guard
                raise RuntimeError(f"fixpoint for {rule.predicate} did not converge")
            context: Dict[str, FrozenSet[Tuple]] = dict(interpretations)
            context[rule.predicate] = current
            new = set(current)
            for element in structure.domain:
                if (element,) in new:
                    continue
                if rule.body.evaluate(structure, {rule.variable: element}, context):
                    new.add((element,))
            frozen = frozenset(new)
            if frozen == current:
                break
            current = frozen
        interpretations[rule.predicate] = current
        iteration_counts[rule.predicate] = iterations
    return FixpointEvaluation(interpretations, iteration_counts)


# ----------------------------------------------------------------------
# Example 6.3: cyclicity via a monadic fixpoint with universal quantification
# ----------------------------------------------------------------------
def example_6_3_program(edge: str = "b", marked: str = "w") -> MonadicFixpointProgram:
    """The paper's Example 6.3 rule ``w(X) :- w(X) ∨ ∀Y (b(X, Y) → w(Y))``.

    The least fixpoint first marks all nodes of out-degree 0, then nodes all
    of whose successors are marked, and so on; unmarked nodes are exactly
    those from which an infinite (hence cyclic) path exists.
    """
    from repro.logic.fo import Forall, Implies, Or, Rel

    x, y = Var("X"), Var("Y")
    body = Or(
        (
            Rel(marked, (x,)),
            Forall("Y", Implies(Rel(edge, (x, y)), Rel(marked, (y,)))),
        )
    )
    return MonadicFixpointProgram((MonadicFixpointRule(marked, "X", body),))


def is_cyclic_via_monadic_fixpoint(structure: FiniteStructure, edge: str = "b") -> bool:
    """Example 6.3 end to end: the graph has a cycle iff some node stays unmarked.

    This is the expressiveness gap the paper points out: monadic Datalog
    cannot define this query (Lemma 6.1), but one monadic fixpoint whose body
    uses universal quantification (negation) can.
    """
    program = example_6_3_program(edge)
    evaluation = evaluate_fixpoint_program(program, structure)
    marked = evaluation.members("w")
    return bool(set(structure.domain) - set(marked))


def nodes_on_or_reaching_cycles(structure: FiniteStructure, edge: str = "b") -> FrozenSet:
    """The complement of the Example 6.3 fixpoint: nodes with an infinite outgoing path."""
    program = example_6_3_program(edge)
    evaluation = evaluate_fixpoint_program(program, structure)
    return frozenset(set(structure.domain) - evaluation.members("w"))
