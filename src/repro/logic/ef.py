"""Symmetry and indistinguishability arguments from Section 6 of the paper.

Lemma 6.1's "Case b" argument is fully constructive and can be executed:

* on a directed cycle, a monadic Datalog program assigns the *same* set of
  colours (derived monadic facts) to every node — the symmetry argument;
* consequently, two cycles both larger than the number of symbols of the
  program cannot be distinguished by it, while a chain program whose
  language contains one cycle length but not the other *does* distinguish
  them.

This module implements those checks directly on top of the evaluation
engine; the E9 benchmark uses them to reproduce the lemma's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

from repro.datalog.database import Database
from repro.datalog.engine.registry import get_engine
from repro.datalog.program import Program
from repro.logic.structures import FiniteStructure, directed_cycle


def colour_sets_on_structure(
    program: Program, structure: FiniteStructure
) -> Dict[object, FrozenSet[str]]:
    """For each domain element, the set of monadic IDB predicates it ends up in."""
    database = structure.to_database()
    result = get_engine("seminaive").evaluate(program, database)
    arities = program.predicate_arities()
    monadic_idbs = [p for p in program.idb_predicates() if arities[p] == 1]
    colours: Dict[object, set] = {element: set() for element in structure.domain}
    for predicate in monadic_idbs:
        for (value,) in result.relation(predicate):
            colours.setdefault(value, set()).add(predicate)
    return {element: frozenset(names) for element, names in colours.items()}


def monadic_colour_uniformity_on_cycle(program: Program, cycle_length: int, edge: str = "b") -> bool:
    """Check the symmetry property: all nodes of a directed cycle get identical colours.

    This is the statement proved by induction in Lemma 6.1: *"the computation
    of h assigns the same set of colors to all the nodes of C"*.
    """
    structure = directed_cycle(cycle_length, edge)
    colours = colour_sets_on_structure(program, structure)
    distinct = {colour for colour in colours.values()}
    return len(distinct) <= 1


def program_symbol_count(program: Program) -> int:
    """A crude count of the symbols of a program (used for the cycle-size threshold)."""
    total = 0
    for rule in program.rules:
        total += 1 + len(rule.head.terms)
        for atom in rule.body:
            total += 1 + len(atom.terms)
    return total


@dataclass(frozen=True)
class CycleDistinguishability:
    """Whether a program distinguishes two directed cycles (by its boolean goal answer)."""

    cycle_a: int
    cycle_b: int
    answer_a: bool
    answer_b: bool

    @property
    def distinguishes(self) -> bool:
        """Whether the program separates the two cycles — Lemma 6.1 says it cannot."""
        return self.answer_a != self.answer_b


def boolean_answer_on_cycle(program: Program, cycle_length: int, edge: str = "b") -> bool:
    """Evaluate a program with a boolean (variable-free or ``p(X, X)``-style) goal on a cycle."""
    structure = directed_cycle(cycle_length, edge)
    result = get_engine("seminaive").evaluate(program, structure.to_database())
    return bool(result.answers())


def distinguishability_on_cycles(
    program: Program, cycle_a: int, cycle_b: int, edge: str = "b"
) -> CycleDistinguishability:
    """Compare the program's boolean answers on two cycles."""
    return CycleDistinguishability(
        cycle_a,
        cycle_b,
        boolean_answer_on_cycle(program, cycle_a, edge),
        boolean_answer_on_cycle(program, cycle_b, edge),
    )
