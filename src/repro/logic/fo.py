"""First-order logic over finite structures.

Used for three purposes in the reproduction:

* evaluating the first-order query equivalent to a *bounded* chain program
  (Proposition 8.2);
* the first-order sentences inside monadic generalized spectra (Section 6);
* cross-checking that unions of non-recursive rules and their FO forms agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set, Tuple

from repro.logic.structures import FiniteStructure


# ----------------------------------------------------------------------
# Terms
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Var:
    """A first-order variable."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A reference to a named constant of the structure."""

    name: str

    def __str__(self) -> str:
        return self.name


Term = object  # Var | Const


def _evaluate_term(term: Term, structure: FiniteStructure, assignment: Mapping[str, object]):
    if isinstance(term, Var):
        if term.name not in assignment:
            raise ValueError(f"unbound variable {term.name}")
        return assignment[term.name]
    if isinstance(term, Const):
        return structure.constant(term.name)
    raise TypeError(f"not a term: {term!r}")


# ----------------------------------------------------------------------
# Formulas
# ----------------------------------------------------------------------
class Formula:
    """Base class for first-order formulas."""

    def evaluate(
        self,
        structure: FiniteStructure,
        assignment: Optional[Mapping[str, object]] = None,
        interpretations: Optional[Mapping[str, FrozenSet[Tuple]]] = None,
    ) -> bool:
        """Truth value in *structure* under *assignment*.

        ``interpretations`` supplies relations not stored in the structure —
        the monadic second-order variables of an MGS are passed this way.
        """
        return self._eval(structure, dict(assignment or {}), dict(interpretations or {}))

    def _eval(self, structure, assignment, interpretations) -> bool:
        raise NotImplementedError

    def free_variables(self) -> FrozenSet[str]:
        """Names of the free first-order variables."""
        return frozenset(self._free())

    def _free(self) -> Set[str]:
        raise NotImplementedError

    # Convenience connective constructors -------------------------------------------------
    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class Rel(Formula):
    """An atomic formula ``r(t1, ..., tk)``."""

    name: str
    terms: Tuple[Term, ...]

    def __init__(self, name: str, terms: Iterable[Term]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "terms", tuple(terms))

    def _eval(self, structure, assignment, interpretations) -> bool:
        values = tuple(_evaluate_term(term, structure, assignment) for term in self.terms)
        if self.name in interpretations:
            return values in interpretations[self.name]
        return values in structure.relation(self.name)

    def _free(self) -> Set[str]:
        return {term.name for term in self.terms if isinstance(term, Var)}

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(t) for t in self.terms)})"


@dataclass(frozen=True)
class Eq(Formula):
    """Equality of two terms."""

    left: Term
    right: Term

    def _eval(self, structure, assignment, interpretations) -> bool:
        return _evaluate_term(self.left, structure, assignment) == _evaluate_term(
            self.right, structure, assignment
        )

    def _free(self) -> Set[str]:
        return {t.name for t in (self.left, self.right) if isinstance(t, Var)}

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class Top(Formula):
    """The true formula."""

    def _eval(self, structure, assignment, interpretations) -> bool:
        return True

    def _free(self) -> Set[str]:
        return set()

    def __str__(self) -> str:
        return "⊤"


@dataclass(frozen=True)
class Bottom(Formula):
    """The false formula."""

    def _eval(self, structure, assignment, interpretations) -> bool:
        return False

    def _free(self) -> Set[str]:
        return set()

    def __str__(self) -> str:
        return "⊥"


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    inner: Formula

    def _eval(self, structure, assignment, interpretations) -> bool:
        return not self.inner._eval(structure, assignment, interpretations)

    def _free(self) -> Set[str]:
        return set(self.inner._free())

    def __str__(self) -> str:
        return f"¬({self.inner})"


@dataclass(frozen=True)
class And(Formula):
    """Conjunction of any number of formulas."""

    parts: Tuple[Formula, ...]

    def __init__(self, parts: Iterable[Formula]):
        object.__setattr__(self, "parts", tuple(parts))

    def _eval(self, structure, assignment, interpretations) -> bool:
        return all(part._eval(structure, assignment, interpretations) for part in self.parts)

    def _free(self) -> Set[str]:
        names: Set[str] = set()
        for part in self.parts:
            names |= part._free()
        return names

    def __str__(self) -> str:
        return " ∧ ".join(f"({part})" for part in self.parts) if self.parts else "⊤"


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction of any number of formulas."""

    parts: Tuple[Formula, ...]

    def __init__(self, parts: Iterable[Formula]):
        object.__setattr__(self, "parts", tuple(parts))

    def _eval(self, structure, assignment, interpretations) -> bool:
        return any(part._eval(structure, assignment, interpretations) for part in self.parts)

    def _free(self) -> Set[str]:
        names: Set[str] = set()
        for part in self.parts:
            names |= part._free()
        return names

    def __str__(self) -> str:
        return " ∨ ".join(f"({part})" for part in self.parts) if self.parts else "⊥"


@dataclass(frozen=True)
class Implies(Formula):
    """Implication."""

    antecedent: Formula
    consequent: Formula

    def _eval(self, structure, assignment, interpretations) -> bool:
        if not self.antecedent._eval(structure, assignment, interpretations):
            return True
        return self.consequent._eval(structure, assignment, interpretations)

    def _free(self) -> Set[str]:
        return self.antecedent._free() | self.consequent._free()

    def __str__(self) -> str:
        return f"({self.antecedent}) → ({self.consequent})"


@dataclass(frozen=True)
class Exists(Formula):
    """First-order existential quantification over the domain."""

    variable: str
    body: Formula

    def _eval(self, structure, assignment, interpretations) -> bool:
        for element in structure.domain:
            assignment[self.variable] = element
            if self.body._eval(structure, assignment, interpretations):
                del assignment[self.variable]
                return True
        assignment.pop(self.variable, None)
        return False

    def _free(self) -> Set[str]:
        return self.body._free() - {self.variable}

    def __str__(self) -> str:
        return f"∃{self.variable}.({self.body})"


@dataclass(frozen=True)
class Forall(Formula):
    """First-order universal quantification over the domain."""

    variable: str
    body: Formula

    def _eval(self, structure, assignment, interpretations) -> bool:
        for element in structure.domain:
            assignment[self.variable] = element
            if not self.body._eval(structure, assignment, interpretations):
                del assignment[self.variable]
                return False
        assignment.pop(self.variable, None)
        return True

    def _free(self) -> Set[str]:
        return self.body._free() - {self.variable}

    def __str__(self) -> str:
        return f"∀{self.variable}.({self.body})"


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def exists_many(variables: Iterable[str], body: Formula) -> Formula:
    """Nested existential quantification."""
    result = body
    for variable in reversed(list(variables)):
        result = Exists(variable, result)
    return result


def forall_many(variables: Iterable[str], body: Formula) -> Formula:
    """Nested universal quantification."""
    result = body
    for variable in reversed(list(variables)):
        result = Forall(variable, result)
    return result


def evaluate_query(
    formula: Formula,
    structure: FiniteStructure,
    output_variables: Tuple[str, ...],
    interpretations: Optional[Mapping[str, FrozenSet[Tuple]]] = None,
) -> FrozenSet[Tuple]:
    """The answers of a first-order query: all bindings of the output variables."""
    answers = set()

    def assign(position: int, assignment: Dict[str, object]) -> None:
        """Enumerate domain bindings for the output variables, depth first."""
        if position == len(output_variables):
            if formula.evaluate(structure, assignment, interpretations):
                answers.add(tuple(assignment[v] for v in output_variables))
            return
        for element in structure.domain:
            assignment[output_variables[position]] = element
            assign(position + 1, assignment)
        assignment.pop(output_variables[position], None)

    assign(0, {})
    return frozenset(answers)
