"""repro -- reproduction of *Bounds on the Propagation of Selection into Logic Programs*.

The package is organised in four layers:

``repro.datalog``
    A from-scratch Datalog substrate: abstract syntax, parser, databases
    (finite structures), naive/semi-naive/top-down evaluation, and the
    classical program transformations (adornments, magic sets, constant
    propagation).

``repro.languages``
    A formal-language toolkit: context-free grammars with the standard
    normal forms and decision procedures (emptiness, finiteness),
    finite automata and regular-language algebra, regular expressions,
    the Mohri--Nederhof regular approximation and language quotients.

``repro.logic``
    Finite-model theory tools used by the paper's lower-bound proofs:
    first-order evaluation over finite structures, the weak monadic
    second-order theory of one successor (WS1S) compiled to automata,
    and monadic generalized spectra (MGS).

``repro.core``
    The paper's contribution: chain programs, the grammar/language map
    ``H -> G(H), L(H)``, the inf-model ``IG``, the Theorem 3.3 selection
    propagation decision procedure and monadic rewrites, magic sets as
    language quotients (Section 7), boundedness and first-order
    expressibility (Proposition 8.2), and uniform-program containment
    (Proposition 8.1).
"""

from repro.datalog import (
    Atom,
    Constant,
    Database,
    DatalogService,
    Parameter,
    PreparedQuery,
    Program,
    QuerySession,
    Rule,
    Variable,
    available_engines,
    get_engine,
    parse_program,
    parse_rule,
    register_engine,
)
from repro.core.chain import ChainProgram, GoalForm
from repro.core.propagation import (
    PropagationResult,
    PropagationVerdict,
    SelectionPropagator,
    propagate_selection,
)

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "ChainProgram",
    "Constant",
    "Database",
    "DatalogService",
    "GoalForm",
    "Parameter",
    "PreparedQuery",
    "Program",
    "PropagationResult",
    "PropagationVerdict",
    "QuerySession",
    "Rule",
    "SelectionPropagator",
    "Variable",
    "available_engines",
    "get_engine",
    "parse_program",
    "parse_rule",
    "propagate_selection",
    "register_engine",
    "__version__",
]
