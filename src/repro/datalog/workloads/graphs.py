"""Graph-analytics EDB generators at social-graph scale.

The generators produce the database families the E14 benchmarks run on:
preferential-attachment graphs (the heavy-tailed degree distribution of
social networks), regular grids (long shortest paths, many same-length
alternatives), uniform random digraphs, and synthetic points-to inputs for
the context-insensitive Andersen analysis.  All of them are deterministic
for a given seed and sized by *edge count*, because the engines' work is
proportional to edges, not nodes.

Conventions shared by every generator:

* nodes are the integers ``0 .. node_count-1`` and every node gets a
  ``node(i)`` fact (so negation-based programs like *unreachable* have a
  safe positive domain to range over);
* edges are ``edge(u, v)`` facts (self-loops are allowed in the random
  family, absent in grids);
* ``source(0)`` marks the canonical origin for reachability/shortest-path
  programs (node 0 is the first, maximally connected node of a
  preferential-attachment graph, so the reachable set is large).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.datalog.database import Database

__all__ = [
    "preferential_attachment",
    "grid",
    "random_graph",
    "points_to_input",
    "add_successors",
    "add_ordering",
]


def _base(node_count: int, *, layout: str = "tuple") -> Database:
    database = Database(layout=layout)
    database.add_relations({"node": {(i,) for i in range(node_count)}})
    database.add_relations({"source": {(0,)}})
    return database


def preferential_attachment(
    node_count: int,
    edges_per_node: int = 4,
    seed: int = 0,
    *,
    layout: str = "tuple",
) -> Database:
    """A Barabási–Albert-style digraph: new nodes attach to popular ones.

    Each arriving node emits *edges_per_node* edges whose targets are drawn
    from the existing endpoint pool (so attachment probability is
    proportional to current degree).  Edge count is
    ``~ (node_count - 1) * edges_per_node`` before deduplication; the
    degree distribution is heavy-tailed like real social graphs, which
    makes the transitive closure wavefront wide early.
    """
    rng = random.Random(seed)
    database = _base(node_count, layout=layout)
    edges = set()
    # Endpoint pool: every edge appends both ends, so the draw is
    # degree-proportional (the standard trick, no explicit weights).
    pool = [0]
    for node in range(1, node_count):
        for _ in range(edges_per_node):
            target = pool[rng.randrange(len(pool))]
            # Orient old -> new so early hubs (and source(0)) reach the
            # bulk of the graph; attachment statistics are unaffected.
            if target != node:
                edges.add((target, node))
            pool.append(target)
        pool.append(node)
    database.add_relations({"edge": edges})
    return database


def grid(
    width: int,
    height: int,
    *,
    layout: str = "tuple",
) -> Database:
    """A directed ``width x height`` grid: edges go right and down.

    Node ``(x, y)`` is the integer ``y * width + x``.  Shortest paths from
    the corner ``source(0)`` have length ``x + y`` with many alternatives,
    which is exactly the regime where the min-aggregate shortest-path
    program does nontrivial work.
    """
    database = _base(width * height, layout=layout)
    edges = set()
    for y in range(height):
        for x in range(width):
            node = y * width + x
            if x + 1 < width:
                edges.add((node, node + 1))
            if y + 1 < height:
                edges.add((node, node + width))
    database.add_relations({"edge": edges})
    return database


def random_graph(
    node_count: int,
    edge_count: int,
    seed: int = 0,
    *,
    layout: str = "tuple",
) -> Database:
    """A uniform random digraph with exactly *edge_count* distinct edges."""
    if edge_count > node_count * node_count:
        raise ValueError(
            f"cannot place {edge_count} distinct edges on {node_count} nodes"
        )
    rng = random.Random(seed)
    database = _base(node_count, layout=layout)
    edges = set()
    while len(edges) < edge_count:
        edges.add((rng.randrange(node_count), rng.randrange(node_count)))
    database.add_relations({"edge": edges})
    return database


def add_successors(database: Database, limit: int) -> Database:
    """Add ``succ(i, i+1)`` facts for ``1 <= i < limit`` (in place).

    The successor relation is the arithmetic the shortest-path program
    needs: hop counts are data, not built-ins, and *limit* bounds the
    distance domain (and with it the ``dist`` fixpoint's depth).
    """
    database.add_relations({"succ": {(i, i + 1) for i in range(1, limit)}})
    return database


def add_ordering(database: Database, node_count: int) -> Database:
    """Add ``lt(i, j)`` facts for all ``i < j`` below *node_count* (in place).

    The triangle program uses the strict order to pick one canonical
    rotation per 3-cycle.  The relation is quadratic in *node_count*, so
    only attach it to the small graphs the triangle workload runs on.
    """
    database.add_relations(
        {"lt": {(i, j) for i in range(node_count) for j in range(i + 1, node_count)}}
    )
    return database


def points_to_input(
    variable_count: int,
    statement_count: int,
    seed: int = 0,
    *,
    heap_count: Optional[int] = None,
    layout: str = "tuple",
) -> Database:
    """A synthetic input for context-insensitive Andersen points-to.

    Emits the four statement relations of the classical formulation over
    variables ``v0..`` and heap objects ``h0..``:

    * ``alloc(v, h)`` — ``v = new h`` (20% of statements),
    * ``assign(v, u)`` — ``v = u`` (40%),
    * ``store(u, v)`` — ``u.f = v`` (20%),
    * ``load(v, u)`` — ``v = u.f`` (20%).

    The proportions follow the shape of real points-to benchmark suites:
    copies dominate, and every heap object is allocated somewhere, so the
    analysis's fixpoint is driven by copy/load/store propagation.
    """
    rng = random.Random(seed)
    heaps = heap_count if heap_count is not None else max(variable_count // 4, 1)
    alloc, assign, store, load = set(), set(), set(), set()
    variables = [f"v{i}" for i in range(variable_count)]
    objects = [f"h{i}" for i in range(heaps)]
    # Ground every heap object in some allocation site first.
    for index, heap in enumerate(objects):
        alloc.add((variables[index % variable_count], heap))
    for _ in range(max(statement_count - heaps, 0)):
        kind = rng.random()
        if kind < 0.2:
            alloc.add((rng.choice(variables), rng.choice(objects)))
        elif kind < 0.6:
            assign.add((rng.choice(variables), rng.choice(variables)))
        elif kind < 0.8:
            store.add((rng.choice(variables), rng.choice(variables)))
        else:
            load.add((rng.choice(variables), rng.choice(variables)))
    database = Database(layout=layout)
    database.add_relations(
        {"alloc": alloc, "assign": assign, "store": store, "load": load}
    )
    return database
