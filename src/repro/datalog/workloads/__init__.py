"""Graph-analytics workloads: EDB generators plus a program portfolio.

The package pairs scalable, seeded graph generators (:mod:`.graphs`) with
the Datalog programs that consume them (:mod:`.programs`).  Benchmarks
(``benchmarks/bench_e14_graph_analytics.py``), the differential tests, and
the negation walkthrough in ``docs/negation.md`` all draw from here so
every surface measures the same workloads.
"""

from repro.datalog.workloads.graphs import (
    add_ordering,
    add_successors,
    grid,
    points_to_input,
    preferential_attachment,
    random_graph,
)
from repro.datalog.workloads.programs import (
    DEGREE,
    POINTS_TO,
    PORTFOLIO,
    REACHABILITY,
    SAME_GENERATION,
    SHORTEST_PATH,
    TRIANGLE,
    UNREACHABLE,
    parse_workload,
)

__all__ = [
    "add_ordering",
    "add_successors",
    "grid",
    "points_to_input",
    "preferential_attachment",
    "random_graph",
    "DEGREE",
    "POINTS_TO",
    "PORTFOLIO",
    "REACHABILITY",
    "SAME_GENERATION",
    "SHORTEST_PATH",
    "TRIANGLE",
    "UNREACHABLE",
    "parse_workload",
]
