"""The graph-analytics program portfolio for the E14 workloads.

Each entry is a plain Datalog source string plus a ``parse_*`` helper, so
benchmarks, tests, and docs all evaluate the *same* text the manual shows.
The portfolio spans the language surface this subsystem added:

* ``REACHABILITY`` — the linear-recursive baseline every engine handles;
* ``UNREACHABLE`` — stratified negation over a recursive stratum;
* ``SAME_GENERATION`` — nonlinear recursion (bushy joins);
* ``SHORTEST_PATH`` — recursion feeding a ``min`` aggregate, with hop
  arithmetic supplied by a ``succ`` EDB relation (see
  :func:`repro.datalog.workloads.graphs.add_successors`);
* ``DEGREE`` / ``TRIANGLE`` — ``count`` aggregates, grouped and global;
* ``POINTS_TO`` — the four-rule context-insensitive Andersen analysis.
"""

from __future__ import annotations

from repro.datalog.parser import parse_program
from repro.datalog.program import Program

__all__ = [
    "REACHABILITY",
    "UNREACHABLE",
    "SAME_GENERATION",
    "SHORTEST_PATH",
    "DEGREE",
    "TRIANGLE",
    "POINTS_TO",
    "PORTFOLIO",
    "parse_workload",
]

REACHABILITY = """
reach(Y) :- source(X), edge(X, Y).
reach(Z) :- reach(Y), edge(Y, Z).
"""

# `reach` closes in a lower stratum; the complement ranges over the finite
# `node` domain, which keeps the negated rule safe.
UNREACHABLE = REACHABILITY + """
unreach(X) :- node(X), not reach(X).
"""

SAME_GENERATION = """
sg(X, X) :- node(X).
sg(X, Y) :- edge(P, X), sg(P, Q), edge(Q, Y).
"""

# Distances are data: succ(D, D2) bounds the hop domain, and the min
# aggregate collapses the dist fixpoint to one optimum per node.
SHORTEST_PATH = """
dist(Y, 1) :- source(X), edge(X, Y).
dist(Z, D2) :- dist(Y, D), edge(Y, Z), succ(D, D2).
shortest(Y, min<D>) :- dist(Y, D).
"""

DEGREE = """
degree(X, count<Y>) :- edge(X, Y).
"""

# Each directed 3-cycle appears once, rotated so its least node leads
# (lt is the strict order on nodes, an EDB relation — see add_ordering).
# Aggregates count *distinct bindings of one variable* per group, so the
# summaries are: per-apex triangle support (distinct middle vertices) and
# the global count of nodes that lead some triangle.
TRIANGLE = """
tri(X, Y, Z) :- edge(X, Y), edge(Y, Z), edge(Z, X), lt(X, Y), lt(X, Z).
tri_support(X, count<Y>) :- tri(X, Y, Z).
tri_apexes(count<X>) :- tri(X, Y, Z).
"""

# Andersen's inclusion-based points-to, context-insensitive: allocation
# seeds, copies propagate, and heap points-to (hpt) routes loads through
# stores.  pt and hpt are mutually recursive — one big stratum.
POINTS_TO = """
pt(V, H) :- alloc(V, H).
pt(V, H) :- assign(V, U), pt(U, H).
hpt(H1, H2) :- store(U, V), pt(U, H1), pt(V, H2).
pt(V, H2) :- load(V, U), pt(U, H1), hpt(H1, H2).
"""

PORTFOLIO = {
    "reachability": REACHABILITY,
    "unreachable": UNREACHABLE,
    "same_generation": SAME_GENERATION,
    "shortest_path": SHORTEST_PATH,
    "degree": DEGREE,
    "triangle": TRIANGLE,
    "points_to": POINTS_TO,
}


def parse_workload(name: str) -> Program:
    """Parse (and validate) a portfolio program by name."""
    try:
        source = PORTFOLIO[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; expected one of {sorted(PORTFOLIO)}"
        ) from None
    program = parse_program(source)
    program.validate()
    return program
