"""Substitutions, matching, and unification for Datalog atoms."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant, Term, Variable

Substitution = Dict[Variable, Term]


def apply_substitution(term: Term, substitution: Substitution) -> Term:
    """Apply a substitution to a single term (one step; Datalog terms are flat)."""
    if isinstance(term, Variable):
        return substitution.get(term, term)
    return term


def match_atom(
    pattern: Atom, fact_values: Tuple, substitution: Optional[Substitution] = None
) -> Optional[Substitution]:
    """Match a (possibly non-ground) atom against a tuple of constant values.

    This is one-way matching: only variables of *pattern* are bound.  Returns
    the extended substitution, or ``None`` if matching fails.  The input
    substitution is not modified.
    """
    if len(pattern.terms) != len(fact_values):
        return None
    bindings: Substitution = dict(substitution) if substitution else {}
    for term, value in zip(pattern.terms, fact_values):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            bound = bindings.get(term)
            if bound is None:
                bindings[term] = Constant(value)
            elif isinstance(bound, Constant):
                if bound.value != value:
                    return None
            else:  # pragma: no cover - bottom-up matching only binds constants
                bindings[term] = Constant(value)
    return bindings


def unify_atoms(
    left: Atom, right: Atom, substitution: Optional[Substitution] = None
) -> Optional[Substitution]:
    """Unify two atoms (both may contain variables).

    Datalog terms are flat (no function symbols), so unification reduces to
    resolving variable/variable and variable/constant pairs with union-find
    style chasing through the substitution.
    """
    if left.predicate != right.predicate or left.arity != right.arity:
        return None
    bindings: Substitution = dict(substitution) if substitution else {}

    def resolve(term: Term) -> Term:
        while isinstance(term, Variable) and term in bindings:
            term = bindings[term]
        return term

    for l_term, r_term in zip(left.terms, right.terms):
        l_resolved = resolve(l_term)
        r_resolved = resolve(r_term)
        if l_resolved == r_resolved:
            continue
        if isinstance(l_resolved, Variable):
            bindings[l_resolved] = r_resolved
        elif isinstance(r_resolved, Variable):
            bindings[r_resolved] = l_resolved
        else:
            return None
    return bindings


def ground_atom_with(atom: Atom, substitution: Substitution) -> Atom:
    """Apply a substitution and assert the result is ground."""
    result = atom.substitute(substitution)
    if not result.is_ground():
        raise ValueError(f"substitution does not ground atom {atom}")
    return result


def compose(outer: Substitution, inner: Substitution) -> Substitution:
    """Compose substitutions: apply *inner* first, then *outer*."""
    composed: Substitution = {}
    for var, term in inner.items():
        composed[var] = apply_substitution(term, outer)
    for var, term in outer.items():
        composed.setdefault(var, term)
    return composed
