"""Program transformations: adornments, magic sets, constant propagation, canonicalisation.

Each rewrite is available both as a plain function and as a named
:class:`~repro.datalog.transforms.pipeline.Transform` instance that
composes in a :class:`~repro.datalog.transforms.pipeline.Pipeline` with
per-stage provenance (see :mod:`repro.datalog.transforms.pipeline`).
"""

from repro.datalog.transforms.adornment import (
    AdornedProgram,
    adorn_program,
    adorned_name,
    adornments_used,
    split_adorned_name,
)
from repro.datalog.transforms.constants import (
    binding_invariant_positions,
    propagate_goal_constant,
)
from repro.datalog.transforms.magic import magic_predicates, magic_transform
from repro.datalog.transforms.parameters import (
    is_parameter_relation,
    parameter_relation,
    parameter_seed_rules,
    parameterize_rules,
)
from repro.datalog.transforms.pipeline import (
    Adorn,
    FunctionTransform,
    MagicSets,
    Pipeline,
    PipelineOutcome,
    PropagateConstants,
    Rectify,
    Transform,
    TransformStage,
)
from repro.datalog.transforms.rectify import (
    collapse_database,
    collapse_edbs,
    eliminate_zero_ary,
    rename_apart,
)

__all__ = [
    "Adorn",
    "AdornedProgram",
    "FunctionTransform",
    "MagicSets",
    "Pipeline",
    "PipelineOutcome",
    "PropagateConstants",
    "Rectify",
    "Transform",
    "TransformStage",
    "adorn_program",
    "adorned_name",
    "adornments_used",
    "binding_invariant_positions",
    "collapse_database",
    "collapse_edbs",
    "eliminate_zero_ary",
    "is_parameter_relation",
    "magic_predicates",
    "magic_transform",
    "parameter_relation",
    "parameter_seed_rules",
    "parameterize_rules",
    "propagate_goal_constant",
    "rename_apart",
    "split_adorned_name",
]
