"""Composable program transforms with per-stage provenance.

Every rewrite in this package — rectification, adornment, magic sets,
constant propagation — is a pure function ``Program -> Program``.  This
module gives them a uniform :class:`Transform` interface and a
:class:`Pipeline` that composes them while recording what each stage did,
so a :class:`~repro.datalog.session.QuerySession` (or a benchmark, or the
CLI) can both run the composed rewrite and explain it afterwards::

    from repro.datalog.transforms import Pipeline, MagicSets, Rectify

    pipeline = Pipeline([Rectify(), MagicSets()])
    outcome = pipeline.apply(program)
    outcome.program          # the fully rewritten program
    outcome.stages[1].name   # "magic" — and its input/output programs

Chain-program-specific rewrites (the Theorem 3.3 monadic rewrite, the
Section 7 quotient magic sets) live next to their analyses in
:mod:`repro.core.propagation` and :mod:`repro.core.magic_chain` but conform
to the same protocol, so they compose in the same pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Protocol, Tuple, runtime_checkable

from repro.datalog.program import Program
from repro.datalog.transforms.constants import propagate_goal_constant
from repro.datalog.transforms.magic import magic_transform
from repro.datalog.transforms.rectify import eliminate_zero_ary


@runtime_checkable
class Transform(Protocol):
    """A named, pure rewrite of Datalog programs."""

    name: str

    def apply(self, program: Program) -> Program:
        """Return the rewritten program; must not mutate the input."""
        ...  # pragma: no cover


@dataclass(frozen=True)
class TransformStage:
    """Provenance record for one pipeline stage."""

    name: str
    input_program: Program
    output_program: Program

    @property
    def rules_added(self) -> int:
        return len(self.output_program.rules) - len(self.input_program.rules)

    def changed(self) -> bool:
        """Whether the stage rewrote anything at all."""
        return (
            self.input_program.rules != self.output_program.rules
            or self.input_program.goal != self.output_program.goal
        )


@dataclass(frozen=True)
class PipelineOutcome:
    """The composed rewrite's result plus the full stage-by-stage history."""

    program: Program
    stages: Tuple[TransformStage, ...]

    def stage(self, name: str) -> TransformStage:
        """The (first) stage with the given transform name."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"no pipeline stage named {name!r}")

    def describe(self) -> str:
        """A short human-readable summary, one line per stage."""
        if not self.stages:
            return "(identity pipeline: no transforms)"
        lines = []
        for stage in self.stages:
            delta = stage.rules_added
            sign = "+" if delta >= 0 else ""
            status = f"{sign}{delta} rules" if stage.changed() else "no change"
            lines.append(f"{stage.name}: {status} -> {len(stage.output_program.rules)} total")
        return "\n".join(lines)


class Pipeline:
    """An ordered composition of :class:`Transform` instances."""

    def __init__(self, transforms: Iterable[Transform] = ()):
        self._transforms: Tuple[Transform, ...] = tuple(transforms)
        for transform in self._transforms:
            if not callable(getattr(transform, "apply", None)):
                raise TypeError(f"{transform!r} does not implement Transform.apply")

    @property
    def transforms(self) -> Tuple[Transform, ...]:
        return self._transforms

    def then(self, *transforms: Transform) -> "Pipeline":
        """A new pipeline with extra transforms appended (pipelines are immutable)."""
        return Pipeline(self._transforms + transforms)

    def apply(self, program: Program) -> PipelineOutcome:
        """Run every stage in order, recording per-stage provenance."""
        stages: List[TransformStage] = []
        current = program
        for transform in self._transforms:
            rewritten = transform.apply(current)
            stages.append(TransformStage(transform.name, current, rewritten))
            current = rewritten
        return PipelineOutcome(current, tuple(stages))

    def __len__(self) -> int:
        return len(self._transforms)

    def __repr__(self) -> str:
        names = " | ".join(t.name for t in self._transforms) or "identity"
        return f"Pipeline({names})"


# ----------------------------------------------------------------------
# Standard transform instances
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FunctionTransform:
    """Adapter turning any ``Program -> Program`` function into a Transform."""

    name: str
    function: Callable[[Program], Program]

    def apply(self, program: Program) -> Program:
        return self.function(program)


@dataclass(frozen=True)
class Rectify:
    """Canonicalise away zero-ary IDB predicates (Lemmas 4.1 / 5.1)."""

    name: str = "rectify"
    constant_value: str = "c0"

    def apply(self, program: Program) -> Program:
        return eliminate_zero_ary(program, self.constant_value)


@dataclass(frozen=True)
class Adorn:
    """Adorn predicates with bound/free annotations from the goal's bindings."""

    name: str = "adorn"

    def apply(self, program: Program) -> Program:
        from repro.datalog.transforms.adornment import adorn_program

        return adorn_program(program).program


@dataclass(frozen=True)
class MagicSets:
    """The generalized magic-set transformation (reference [5] of the paper)."""

    name: str = "magic"

    def apply(self, program: Program) -> Program:
        return magic_transform(program)


@dataclass(frozen=True)
class PropagateConstants:
    """Push the goal's constant bindings into rule bodies where invariant."""

    name: str = "propagate-constants"

    def apply(self, program: Program) -> Program:
        return propagate_goal_constant(program)
