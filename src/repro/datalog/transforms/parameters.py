"""Compiling parameters away: deferred seeding through ``__param_*`` relations.

The rewrites of the paper (adornment, magic sets, constant propagation)
depend only on the goal's *binding pattern*, so they happily carry
:class:`~repro.datalog.terms.Parameter` terms through — a magic-set
transformation of ``?anc($who, Y)`` produces the seed rule
``magic_anc__bf($who).``.  Engines, however, need ground programs.  This
module closes the gap with a purely syntactic final compile step:

* :func:`parameterize_rules` rewrites every rule that still mentions a
  parameter, replacing each occurrence of ``$who`` with a fresh variable
  constrained by a new body atom ``__param_who(V)`` — the magic seed above
  becomes ``magic_anc__bf(V) :- __param_who(V).``;
* :func:`parameter_seed_rules` builds, at bind time, the ground facts
  ``__param_who(john).`` that make those relations non-empty.

The result is that *all* per-binding state lives in tiny single-fact
relations appended at execution time, while the rewritten rules — and the
join/stratification plan compiled for them — are shared by every binding
(see :mod:`repro.datalog.prepared`).  Parameters in the *goal* atom are
left in place: the goal is the answer-selection template and is bound
separately when answers are extracted.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.datalog.atoms import Atom, ground_atom
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Parameter, Term, Variable, fresh_variable

PARAMETER_RELATION_PREFIX = "__param_"


def parameter_relation(name: str) -> str:
    """The relation holding the bound value of parameter *name* at run time."""
    return PARAMETER_RELATION_PREFIX + name


def is_parameter_relation(predicate: str) -> bool:
    """True if *predicate* is a deferred-seed relation minted by this module."""
    return predicate.startswith(PARAMETER_RELATION_PREFIX)


def parameter_seed_rules(bindings: Mapping[str, object]) -> Tuple[Rule, ...]:
    """One ground fact rule ``__param_<name>(value).`` per binding.

    Appended to a prepared program at execution time; loading them is the
    *only* per-binding work besides the fixpoint itself.
    """
    return tuple(
        Rule(ground_atom(parameter_relation(name), (value,)), ())
        for name, value in sorted(bindings.items(), key=lambda item: item[0])
    )


def _replace_parameters(atom: Atom, mapping: Dict[Parameter, Variable]) -> Atom:
    if not any(isinstance(term, Parameter) for term in atom.terms):
        return atom
    terms: Tuple[Term, ...] = tuple(
        mapping[term] if isinstance(term, Parameter) else term for term in atom.terms
    )
    return Atom(atom.predicate, terms)


def parameterize_rules(program: Program) -> Program:
    """Rewrite parameterized rules into deferred-seed form.

    Every rule mentioning parameters has each parameter ``$p`` replaced by
    a fresh variable bound by a prepended body atom ``__param_p(V)``; rules
    without parameters (the common case) are kept identical, so join plans
    compiled for them stay valid.  The goal atom is returned unchanged —
    its parameters are bound at answer-extraction time.
    """
    new_rules: List[Rule] = []
    changed = False
    for rule in program.rules:
        rule_parameters = rule.parameters()
        if not rule_parameters:
            new_rules.append(rule)
            continue
        changed = True
        used = {variable.name for variable in rule.variables()}
        mapping: Dict[Parameter, Variable] = {
            parameter: fresh_variable(f"P_{parameter.name}", used)
            for parameter in rule_parameters
        }
        guards = tuple(
            Atom(parameter_relation(parameter.name), (variable,))
            for parameter, variable in mapping.items()
        )
        head = _replace_parameters(rule.head, mapping)
        body = guards + tuple(_replace_parameters(atom, mapping) for atom in rule.body)
        new_rules.append(Rule(head, body))
    if not changed:
        return program
    return Program(tuple(new_rules), program.goal)
