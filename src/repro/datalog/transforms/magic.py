"""The generalized magic-set transformation of Bancilhon, Maier, Sagiv, and Ullman.

Reference [5] of the paper.  Given a program and a goal with constants, the
transformation produces a new program whose bottom-up evaluation only derives
facts "relevant" to the goal bindings, simulating top-down evaluation.  The
paper's Section 7 explains the same transformation for chain programs in
terms of language quotients; :mod:`repro.core.magic_chain` implements that
language view, while this module is the classical syntactic version usable
on any Datalog program (it handles Programs A and B of Example 1.1, and the
adorned magic rules for Program C).
"""

from __future__ import annotations

from typing import List

from repro.datalog.atoms import Atom
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Aggregate, Constant, Parameter
from repro.datalog.transforms.adornment import (
    AdornedProgram,
    adorn_program,
    bound_terms,
    split_adorned_name,
)
from repro.errors import ValidationError

MAGIC_PREFIX = "magic_"


def magic_name(adorned_predicate: str) -> str:
    """The magic predicate associated with an adorned predicate name."""
    return MAGIC_PREFIX + adorned_predicate


def magic_transform(program: Program) -> Program:
    """Apply the generalized magic-set transformation to *program*.

    The program must have a goal containing at least one bound argument — a
    constant or a :class:`~repro.datalog.terms.Parameter` (otherwise there
    is no binding to propagate and the transformation would be the identity
    up to renaming).  With parameters, the seed rule carries the parameters;
    :func:`repro.datalog.transforms.parameters.parameterize_rules` then
    turns it into a deferred seed read from a ``__param_*`` relation, so
    the rewrite is compiled once per binding pattern and the concrete
    constants only arrive at execution time.
    """
    if program.goal is None:
        raise ValidationError("magic sets require a goal")
    if not any(isinstance(term, (Constant, Parameter)) for term in program.goal.terms):
        raise ValidationError("magic sets require a goal with at least one bound argument")
    # Magic guards change which instantiations a rule fires for; under a
    # negated literal or an aggregate head that changes the *model*, not
    # just the work (the complement/aggregate must see the full extension).
    # Goal-reachable rules with either therefore refuse the rewrite —
    # callers (the ``magic`` registry engine) treat the ValidationError as
    # "engine not applicable" and fall back cleanly.
    from repro.datalog.analysis import relevant_rules

    for rule in relevant_rules(program):
        if rule.negated_body():
            raise ValidationError(
                f"magic sets do not support negation: rule {rule} is "
                "goal-reachable and has a negated body literal"
            )
        if any(isinstance(term, Aggregate) for term in rule.head.terms):
            raise ValidationError(
                f"magic sets do not support aggregates: rule {rule} is "
                "goal-reachable and has an aggregate head term"
            )

    adorned: AdornedProgram = adorn_program(program)
    idb_adorned = adorned.program.idb_predicates()

    magic_rules: List[Rule] = []
    modified_rules: List[Rule] = []

    for rule in adorned.program.rules:
        head_predicate = rule.head.predicate
        _, head_adornment = split_adorned_name(head_predicate)
        head_bound = bound_terms(rule.head, head_adornment)
        magic_head_atom = Atom(magic_name(head_predicate), head_bound)

        # Modified rule: guard the original rule with its magic predicate.
        if head_bound:
            modified_rules.append(Rule(rule.head, (magic_head_atom,) + rule.body))
        else:
            modified_rules.append(rule)

        # Magic rules: one per IDB body occurrence.
        for position, atom in enumerate(rule.body):
            if atom.predicate not in idb_adorned:
                continue
            _, body_adornment = split_adorned_name(atom.predicate)
            body_bound = bound_terms(atom, body_adornment)
            if not body_bound:
                continue
            magic_body_head = Atom(magic_name(atom.predicate), body_bound)
            prefix = rule.body[:position]
            if head_bound:
                magic_rules.append(Rule(magic_body_head, (magic_head_atom,) + prefix))
            else:
                magic_rules.append(Rule(magic_body_head, prefix))

    # Seed: the goal bindings.
    goal = adorned.program.goal
    assert goal is not None
    _, goal_adornment = split_adorned_name(goal.predicate)
    seed_terms = bound_terms(goal, goal_adornment)
    seed = Rule(Atom(magic_name(goal.predicate), seed_terms), ())

    transformed_rules = (seed,) + tuple(magic_rules) + tuple(modified_rules)
    return Program(transformed_rules, goal)


def magic_predicates(program: Program) -> List[str]:
    """The magic predicates defined by a transformed program."""
    return sorted(
        predicate
        for predicate in program.idb_predicates()
        if predicate.startswith(MAGIC_PREFIX)
    )
