"""Naive constant propagation: the Program A → Program D rewriting of Example 1.1.

When a goal binds an argument to a constant and every recursive rule passes
that argument *unchanged* to its recursive calls, the binding can be pushed
into the program directly: the bound argument is dropped, the recursive
predicate becomes monadic, and base rules substitute the constant.  This is
the "naive propagation of the binding of X to john" described in the paper's
introduction, and it is exactly what turns::

    ?anc(john, Y)
    anc(X, Y) :- par(X, Y)
    anc(X, Y) :- anc(X, Z), par(Z, Y)

into::

    ?ancjohn(Y)
    ancjohn(Y) :- par(john, Y)
    ancjohn(Y) :- ancjohn(Z), par(Z, Y)

The rewriting is purely syntactic and only applies when the binding is
invariant; for chain programs in general the grammar-based construction in
:mod:`repro.core.rewrites` is needed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.datalog.atoms import Atom
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Parameter, Variable
from repro.errors import ValidationError


def _bound_positions(goal: Atom) -> Tuple[int, ...]:
    return tuple(
        position
        for position, term in enumerate(goal.terms)
        if isinstance(term, (Constant, Parameter))
    )


def binding_invariant_positions(program: Program) -> Tuple[int, ...]:
    """Goal argument positions whose binding is passed unchanged through all recursion.

    A bound position ``i`` of the goal predicate is *invariant* when, in every
    rule for an IDB predicate reachable from the goal, the head term at
    position ``i`` is syntactically identical to the term at position ``i`` of
    every recursive body occurrence of the same predicate.  Only the goal
    predicate itself is considered here (the transformation below specialises
    one predicate); mutual recursion falls back to the grammar-based rewrites.
    """
    goal = program.goal
    if goal is None:
        raise ValidationError("constant propagation requires a goal")
    invariant: List[int] = []
    for position in _bound_positions(goal):
        ok = True
        for rule in program.rules_for(goal.predicate):
            head_term = rule.head.terms[position]
            for atom in rule.body:
                if atom.predicate != goal.predicate:
                    continue
                if atom.terms[position] != head_term:
                    ok = False
                    break
            if not ok:
                break
        if ok:
            invariant.append(position)
    return tuple(invariant)


def propagate_goal_constant(
    program: Program, position: Optional[int] = None, specialized_suffix: Optional[str] = None
) -> Program:
    """Specialise the goal predicate by pushing one bound goal argument into the rules.

    Parameters
    ----------
    program:
        Program whose goal has at least one constant argument.
    position:
        Which bound goal position to propagate; defaults to the first
        binding-invariant one.
    specialized_suffix:
        Suffix for the specialised predicate name; defaults to the constant
        value (as in ``ancjohn``).

    Raises
    ------
    ValidationError
        If the binding is not invariant through the recursion (the rewriting
        would then be unsound) or if other IDB predicates depend on the goal
        predicate.
    """
    goal = program.goal
    if goal is None:
        raise ValidationError("constant propagation requires a goal")
    invariant = binding_invariant_positions(program)
    if position is None:
        if not invariant:
            raise ValidationError("no binding-invariant bound goal position to propagate")
        position = invariant[0]
    elif position not in invariant:
        raise ValidationError(f"goal position {position} is not binding invariant")

    constant = goal.terms[position]
    if not isinstance(constant, (Constant, Parameter)):
        raise ValidationError(f"goal position {position} is not bound to a constant")

    target = goal.predicate
    for rule in program.rules:
        if rule.head.predicate == target:
            continue
        if any(atom.predicate == target for atom in rule.body):
            raise ValidationError(
                f"predicate {target} is used by other rules; cannot specialise it in isolation"
            )

    if specialized_suffix is not None:
        suffix = specialized_suffix
    elif isinstance(constant, Parameter):
        suffix = f"_{constant.name}"
    else:
        suffix = str(constant.value)
    specialized = f"{target}{suffix}"

    def drop_position(atom: Atom) -> Atom:
        terms = tuple(term for index, term in enumerate(atom.terms) if index != position)
        return Atom(specialized, terms)

    new_rules: List[Rule] = []
    for rule in program.rules:
        if rule.head.predicate != target:
            new_rules.append(rule)
            continue
        head_term = rule.head.terms[position]
        substitution: Dict[Variable, Constant] = {}
        if isinstance(head_term, Variable):
            substitution[head_term] = constant
        elif isinstance(constant, Parameter):
            # Whether a constant-pinned head matches the parameter is only
            # known at bind time; specialising here would be unsound.
            raise ValidationError(
                f"rule {rule} pins goal position {position} to {head_term}; "
                "cannot specialise against parameter ${} at prepare time".format(
                    constant.name
                )
            )
        elif head_term != constant:
            # This rule can never contribute to the selected goal.
            continue
        bound_rule = rule.substitute(substitution)
        new_body = tuple(
            drop_position(atom) if atom.predicate == target else atom for atom in bound_rule.body
        )
        new_rules.append(Rule(drop_position(bound_rule.head), new_body))

    new_goal = drop_position(goal)
    return Program(tuple(new_rules), new_goal)
