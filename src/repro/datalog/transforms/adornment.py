"""Adorned programs: binding-pattern propagation with left-to-right sideways information passing.

Adornments are the bookkeeping device of the magic-set transformation
([5, 23] in the paper): an IDB predicate is annotated with a string over
``{b, f}`` describing which argument positions are bound when the predicate
is called during a top-down evaluation of the goal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.datalog.atoms import Atom
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Parameter, Variable
from repro.errors import ValidationError

ADORNMENT_SEPARATOR = "__"


def adornment_of_atom(atom: Atom, bound_variables: Set[Variable]) -> str:
    """The ``b``/``f`` pattern of *atom* given the variables already bound.

    Parameters count as bound: the adornment describes *which* positions
    carry a binding, not the concrete constant, which is exactly why a
    prepared query can reuse one adorned program for every binding.
    """
    letters = []
    for term in atom.terms:
        if isinstance(term, (Constant, Parameter)) or term in bound_variables:
            letters.append("b")
        else:
            letters.append("f")
    return "".join(letters)


def adorned_name(predicate: str, adornment: str) -> str:
    """The predicate symbol used for an adorned copy, e.g. ``anc__bf``."""
    return f"{predicate}{ADORNMENT_SEPARATOR}{adornment}"


def split_adorned_name(name: str) -> Tuple[str, str]:
    """Invert :func:`adorned_name`; raises if the name is not adorned."""
    if ADORNMENT_SEPARATOR not in name:
        raise ValidationError(f"{name} is not an adorned predicate name")
    predicate, _, adornment = name.rpartition(ADORNMENT_SEPARATOR)
    return predicate, adornment


def bound_terms(atom: Atom, adornment: str) -> Tuple:
    """The terms of *atom* at the bound positions of *adornment*."""
    return tuple(term for term, letter in zip(atom.terms, adornment) if letter == "b")


@dataclass(frozen=True)
class AdornedProgram:
    """The result of adorning a program with respect to its goal."""

    program: Program
    goal_adornment: str
    original_goal: Atom

    @property
    def goal_predicate(self) -> str:
        return self.original_goal.predicate


def adorn_program(program: Program) -> AdornedProgram:
    """Adorn *program* with respect to its goal, using left-to-right SIPS.

    The goal must be present and its predicate must be an IDB.  IDB
    predicates in rule bodies are renamed to their adorned copies; EDB atoms
    are left untouched.
    """
    if program.goal is None:
        raise ValidationError("cannot adorn a program without a goal")
    program.validate()
    idb = program.idb_predicates()
    goal = program.goal
    goal_adornment = "".join(
        "b" if isinstance(term, (Constant, Parameter)) else "f" for term in goal.terms
    )

    worklist: List[Tuple[str, str]] = [(goal.predicate, goal_adornment)]
    processed: Set[Tuple[str, str]] = set()
    adorned_rules: List[Rule] = []

    while worklist:
        predicate, adornment = worklist.pop()
        if (predicate, adornment) in processed:
            continue
        processed.add((predicate, adornment))
        for rule in program.rules_for(predicate):
            bound: Set[Variable] = set()
            for term, letter in zip(rule.head.terms, adornment):
                if letter == "b" and isinstance(term, Variable):
                    bound.add(term)
            new_body: List[Atom] = []
            for atom in rule.body:
                if atom.predicate in idb:
                    body_adornment = adornment_of_atom(atom, bound)
                    new_body.append(atom.rename_predicate(adorned_name(atom.predicate, body_adornment)))
                    if (atom.predicate, body_adornment) not in processed:
                        worklist.append((atom.predicate, body_adornment))
                else:
                    new_body.append(atom)
                bound.update(atom.variables())
            new_head = rule.head.rename_predicate(adorned_name(predicate, adornment))
            adorned_rules.append(Rule(new_head, tuple(new_body)))

    adorned_goal = goal.rename_predicate(adorned_name(goal.predicate, goal_adornment))
    adorned = Program(tuple(adorned_rules), adorned_goal)
    return AdornedProgram(adorned, goal_adornment, goal)


def adornments_used(adorned: AdornedProgram) -> Dict[str, Set[str]]:
    """Map each original IDB predicate to the set of adornments generated for it."""
    usage: Dict[str, Set[str]] = {}
    for rule in adorned.program.rules:
        predicate, adornment = split_adorned_name(rule.head.predicate)
        usage.setdefault(predicate, set()).add(adornment)
    return usage
