"""Canonicalisation helpers used by the paper's proofs.

These small rewritings appear inside the arguments of Sections 4–6:

* replacing zero-ary IDB predicates by unary ones applied to a constant
  (Lemma 4.1, Lemma 5.1: "predicates of arity zero can be simulated by new
  predicates of arity one and the constant c");
* collapsing all EDB predicates into a single EDB (end of Lemma 6.1: "replace
  all EDB predicates in H and in its finite query equivalent monadic h with
  one EDB predicate b");
* renaming predicates apart so two programs can be evaluated on the same
  database without interference.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant


def eliminate_zero_ary(program: Program, constant_value="c0") -> Program:
    """Replace every zero-ary IDB predicate ``p`` by ``p(c0)`` for a fixed constant."""
    arities = program.predicate_arities()
    idb = program.idb_predicates()
    zero_ary = {name for name in idb if arities[name] == 0}
    if not zero_ary:
        return program
    constant = Constant(constant_value)

    def fix(atom: Atom) -> Atom:
        if atom.predicate in zero_ary:
            return Atom(atom.predicate, (constant,))
        return atom

    rules = tuple(
        Rule(fix(rule.head), tuple(fix(atom) for atom in rule.body)) for rule in program.rules
    )
    goal = fix(program.goal) if program.goal is not None else None
    return Program(rules, goal)


def collapse_edbs(program: Program, merged_name: str = "b") -> Tuple[Program, Dict[str, str]]:
    """Replace every EDB predicate by a single EDB predicate *merged_name*.

    Returns the rewritten program and the mapping from old EDB names to the
    merged name (useful for rewriting databases consistently with
    :func:`collapse_database`).  All EDBs must share one arity.
    """
    edbs = program.edb_predicates()
    arities = program.predicate_arities()
    edb_arities = {arities[name] for name in edbs}
    if len(edb_arities) > 1:
        raise ValueError(f"cannot collapse EDBs of different arities: {sorted(edb_arities)}")
    mapping = {name: merged_name for name in edbs}
    return program.rename_predicates(mapping), mapping


def collapse_database(database: Database, mapping: Dict[str, str]) -> Database:
    """Merge database relations according to the mapping from :func:`collapse_edbs`."""
    return database.rename(mapping)


def rename_apart(program: Program, suffix: str) -> Program:
    """Rename every IDB predicate by appending *suffix* (EDBs are shared)."""
    mapping = {name: name + suffix for name in program.idb_predicates()}
    return program.rename_predicates(mapping)
