"""Cooperative query guardrails: deadlines, resource budgets, cancellation.

``max_iterations`` was the stack's only evaluation bound; production Datalog
engines govern every query with wall-clock deadlines and derivation budgets
so a mis-planned cross product or a deep recursive fixpoint cannot hold a
worker forever.  This module is that governance layer:

* :class:`ResourceBudget` — declarative limits (wall-clock ``timeout``,
  ``max_facts`` derived, ``max_rounds`` of fixpoint iteration);
* :class:`CancellationToken` — a thread-safe flag an *external* party (the
  HTTP layer on client disconnect, an operator) flips to stop a run;
* :class:`ExecutionGuard` — one armed instance per evaluation run, whose
  :meth:`~ExecutionGuard.checkpoint` every evaluation loop calls at safe
  points: naive/semi-naive round boundaries, compiled kernel batch
  boundaries in both columnar lanes, top-down resolution steps, and the
  initial build of a materialized view.

A tripped checkpoint raises a typed :class:`~repro.errors.QueryAborted`
subclass (:class:`~repro.errors.QueryTimeout`,
:class:`~repro.errors.BudgetExceeded`,
:class:`~repro.errors.QueryCancelled`).  Because every engine evaluates over
a copy or copy-on-write overlay of the input database — never the database
itself — an abort at any checkpoint leaves the service's database snapshot,
its materialized views, and the WAL byte-identical to the pre-request
state; the guard property tests assert exactly that.

Checkpoints never mutate :class:`~repro.datalog.engine.stats.EvaluationStatistics`,
so guarded and unguarded runs of the same query produce identical counters
(the statistics-parity contract the differential harnesses enforce).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.errors import BudgetExceeded, QueryCancelled, QueryTimeout

__all__ = [
    "BudgetExceeded",
    "CancellationToken",
    "ExecutionGuard",
    "QueryCancelled",
    "QueryTimeout",
    "ResourceBudget",
    "build_guard",
]


class CancellationToken:
    """A thread-safe one-way flag: once cancelled, forever cancelled.

    The party running the query hands the token to the evaluation (via
    ``cancellation=``); any other thread may call :meth:`cancel` — the run
    stops at its next checkpoint with :class:`~repro.errors.QueryCancelled`.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent, callable from any thread)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:
        return f"CancellationToken(cancelled={self.cancelled})"


@dataclass(frozen=True)
class ResourceBudget:
    """Declarative per-query resource limits (``None`` = unlimited).

    ``timeout`` is wall-clock seconds from :meth:`start`; ``max_facts``
    bounds the facts an evaluation may derive; ``max_rounds`` bounds total
    fixpoint rounds (like ``max_iterations``, but raising the typed
    :class:`~repro.errors.BudgetExceeded` instead of a generic error).
    """

    timeout: Optional[float] = None
    max_facts: Optional[int] = None
    max_rounds: Optional[int] = None

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout < 0:
            raise ValueError(f"timeout must be non-negative, got {self.timeout}")
        if self.max_facts is not None and self.max_facts < 0:
            raise ValueError(f"max_facts must be non-negative, got {self.max_facts}")
        if self.max_rounds is not None and self.max_rounds < 0:
            raise ValueError(f"max_rounds must be non-negative, got {self.max_rounds}")

    @property
    def unlimited(self) -> bool:
        return self.timeout is None and self.max_facts is None and self.max_rounds is None

    def start(
        self, cancellation: Optional[CancellationToken] = None
    ) -> "ExecutionGuard":
        """Arm the budget for one run: the deadline clock starts *now*."""
        return ExecutionGuard(self, cancellation)


class ExecutionGuard:
    """One armed run of a :class:`ResourceBudget` (plus optional cancellation).

    Engines call :meth:`checkpoint` at every safe point.  A guard is cheap
    to check — one monotonic clock read and a couple of integer compares —
    so checkpoints can sit on kernel batch boundaries without measurable
    overhead.  Guards are single-run: arm a fresh one per evaluation.
    """

    __slots__ = ("budget", "cancellation", "_deadline", "checkpoints")

    def __init__(
        self,
        budget: Optional[ResourceBudget] = None,
        cancellation: Optional[CancellationToken] = None,
    ):
        self.budget = budget if budget is not None else ResourceBudget()
        self.cancellation = cancellation
        self._deadline = (
            time.monotonic() + self.budget.timeout
            if self.budget.timeout is not None
            else None
        )
        #: How many times :meth:`checkpoint` ran — observability for tests
        #: asserting that every loop family actually reaches its checkpoints.
        self.checkpoints = 0

    @property
    def deadline(self) -> Optional[float]:
        """The absolute ``time.monotonic()`` deadline, if a timeout is set."""
        return self._deadline

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (``None`` without one; never negative)."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.monotonic())

    def checkpoint(self, statistics=None) -> None:
        """Abort the run if cancelled, past deadline, or over budget.

        *statistics* (an :class:`~repro.datalog.engine.stats.EvaluationStatistics`)
        supplies the ``facts_derived`` / ``iterations`` counters the fact and
        round budgets compare against; loops without statistics at hand may
        call with ``None`` and still get deadline + cancellation checks.
        """
        self.checkpoints += 1
        if self.cancellation is not None and self.cancellation.cancelled:
            raise QueryCancelled("query cancelled at an evaluation checkpoint")
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise QueryTimeout(
                f"query exceeded its {self.budget.timeout}s wall-clock deadline"
            )
        if statistics is not None:
            max_rounds = self.budget.max_rounds
            if max_rounds is not None and statistics.iterations > max_rounds:
                raise BudgetExceeded(
                    f"query exceeded its budget of {max_rounds} fixpoint round(s)"
                )
            max_facts = self.budget.max_facts
            if max_facts is not None and statistics.facts_derived > max_facts:
                raise BudgetExceeded(
                    f"query exceeded its budget of {max_facts} derived fact(s)"
                )

    def __repr__(self) -> str:
        return (
            f"ExecutionGuard(budget={self.budget!r}, "
            f"cancelled={self.cancellation.cancelled if self.cancellation else False}, "
            f"checkpoints={self.checkpoints})"
        )


def build_guard(
    timeout: Optional[float] = None,
    budget: Optional[ResourceBudget] = None,
    cancellation: Optional[CancellationToken] = None,
) -> Optional[ExecutionGuard]:
    """The armed guard for one request, or ``None`` when nothing is bounded.

    The common calling convention across :class:`QuerySession`,
    :class:`PreparedQuery`, and :class:`DatalogService`: ``timeout=`` is
    shorthand for a deadline-only budget and combines with an explicit
    ``budget=`` (the tighter wall-clock bound wins).
    """
    if timeout is None and budget is None and cancellation is None:
        return None
    if budget is None:
        budget = ResourceBudget(timeout=timeout)
    elif timeout is not None:
        merged = (
            timeout if budget.timeout is None else min(timeout, budget.timeout)
        )
        budget = ResourceBudget(
            timeout=merged, max_facts=budget.max_facts, max_rounds=budget.max_rounds
        )
    return budget.start(cancellation)
