"""A memoizing (tabled) top-down evaluator.

The magic-set transformation (Section 7 and [5] in the paper) is usually
presented as a bottom-up simulation of top-down evaluation with memoing.
Having an actual top-down evaluator lets the benchmarks compare three ways
of answering a selection query:

* bottom-up over the original program (computes everything, then selects),
* bottom-up over the magic-transformed / monadic-rewritten program,
* top-down with tabling (only explores subqueries reachable from the goal).

The evaluator computes, for every *call pattern* (a predicate with some
argument positions bound to constants), the set of matching facts of the
minimum model.  Recursion is handled by iterating the whole computation to a
global fixpoint, which always terminates because tables only grow and are
bounded by the finite Herbrand base.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.datalog.atoms import Atom, NegatedAtom
from repro.datalog.database import Database
from repro.datalog.engine.base import (
    EvaluationResult,
    _apply_aggregate,
    candidate_tuples,
    is_aggregate_rule,
)
from repro.datalog.engine.stats import EvaluationStatistics
from repro.datalog.program import Program
from repro.datalog.terms import Aggregate, Constant, Variable
from repro.datalog.unify import Substitution, match_atom
from repro.errors import EvaluationError

Call = Tuple[str, Tuple[Optional[object], ...]]


def _call_of(atom: Atom, substitution: Substitution) -> Call:
    pattern: List[Optional[object]] = []
    for term in atom.terms:
        if isinstance(term, Constant):
            pattern.append(term.value)
        else:
            bound = substitution.get(term)
            pattern.append(bound.value if isinstance(bound, Constant) else None)
    return (atom.predicate, tuple(pattern))


def _matches_call(values: Tuple, call: Call) -> bool:
    return all(bound is None or bound == value for bound, value in zip(call[1], values))


class TopDownEvaluator:
    """Tabled top-down evaluation of a Datalog program."""

    def __init__(self, program: Program, database: Database, guard=None):
        program.validate()
        self.program = program
        self.database = database
        # Armed ExecutionGuard (or None): checkpointed at every outer
        # fixpoint round and at every rule-resolution step inside _solve,
        # so even a single monster iteration stays cancellable.  Tables are
        # evaluator-private — an abort discards them with the database
        # untouched.
        self.guard = guard
        self.statistics = EvaluationStatistics()
        self._idb = program.idb_predicates()
        self._tables: Dict[Call, Set[Tuple]] = {}
        self._changed = False
        # Full calls (all positions free) that have been run to their own
        # nested fixpoint.  Negated subgoals and aggregate-rule bodies read
        # only such *saturated* tables: tables here only ever grow, so a
        # complement or aggregate taken over a still-growing table could
        # persist facts that later turn false.  Stratification makes the
        # nested fixpoint sound — a saturated predicate sits in a strictly
        # lower stratum than every reader, so saturation never re-enters an
        # active call of the reader's stratum.
        self._saturated: Set[Call] = set()

    # ------------------------------------------------------------------
    def query(
        self, goal: Optional[Atom] = None, max_iterations: Optional[int] = None
    ) -> FrozenSet[Tuple]:
        """Answers to *goal* (defaults to the program goal), as full predicate tuples."""
        goal = goal if goal is not None else self.program.goal
        if goal is None:
            raise ValueError("no goal supplied and the program has none")
        root = _call_of(goal, {})
        start = self.statistics.iterations  # bound is per query, not per evaluator lifetime
        while True:
            self._changed = False
            self.statistics.iterations += 1
            if self.guard is not None:
                self.guard.checkpoint(self.statistics)
            if max_iterations is not None and self.statistics.iterations - start > max_iterations:
                raise EvaluationError(
                    f"top-down evaluation exceeded {max_iterations} iterations"
                )
            self._solve(root, set())
            if not self._changed:
                break
        return frozenset(self._tables.get(root, set()))

    def result(
        self, goal: Optional[Atom] = None, max_iterations: Optional[int] = None
    ) -> EvaluationResult:
        """Package the relevant part of the minimum model as an :class:`EvaluationResult`."""
        goal = goal if goal is not None else self.program.goal
        tuples = self.query(goal, max_iterations=max_iterations)
        idb_facts = Database()
        for call, answers in self._tables.items():
            for values in answers:
                idb_facts.add_fact(call[0], values)
        result_goal = goal
        program = self.program if self.program.goal == result_goal else self.program.with_goal(
            result_goal
        )
        del tuples
        return EvaluationResult(program, self.database, idb_facts, self.statistics)

    # ------------------------------------------------------------------
    def _solve(self, call: Call, active: Set[Call]) -> Set[Tuple]:
        table = self._tables.setdefault(call, set())
        if call in active:
            return table
        active = active | {call}
        predicate = call[0]
        # Database facts of an IDB predicate are part of B and belong to the
        # minimum model M(B, H) exactly like rule derivations (the bottom-up
        # engines start from a copy of the database); seed the call's table
        # with the matching ones before resolving rules.
        arity = len(call[1])
        for values in self.database.relation(predicate):
            if (
                len(values) == arity
                and values not in table
                and _matches_call(values, call)
            ):
                table.add(values)
                self._changed = True
        for rule in self.program.rules_for(predicate):
            if self.guard is not None:
                self.guard.checkpoint(self.statistics)
            renamed = rule.rename_variables("__td")
            head_binding: Substitution = {}
            consistent = True
            for term, bound in zip(renamed.head.terms, call[1]):
                if bound is None:
                    continue
                if isinstance(term, Aggregate):
                    # A bound aggregate position constrains the aggregate's
                    # *result*; groups are computed in full and filtered
                    # against the call pattern afterwards.
                    continue
                if isinstance(term, Constant):
                    if term.value != bound:
                        consistent = False
                        break
                else:
                    existing = head_binding.get(term)
                    if existing is not None and existing != Constant(bound):
                        consistent = False
                        break
                    head_binding[term] = Constant(bound)
            if not consistent:
                continue
            if is_aggregate_rule(renamed):
                self._solve_aggregate(renamed, call, table, head_binding)
                continue
            # Negated literals run as ground complement checks, so they are
            # deferred behind the positive atoms (safety then guarantees
            # their variables are bound when reached); the reorder is
            # deterministic, keeping the statistics reproducible.
            body = tuple(
                atom for atom in renamed.body if not isinstance(atom, NegatedAtom)
            ) + tuple(atom for atom in renamed.body if isinstance(atom, NegatedAtom))
            for substitution in self._solve_body(body, 0, head_binding, active):
                self.statistics.record_firing()
                head = renamed.head.substitute(substitution)
                if not head.is_ground():
                    continue
                values = head.as_fact_tuple()
                is_new = values not in table
                self.statistics.record_fact(predicate, is_new)
                if is_new:
                    table.add(values)
                    self._changed = True
        return table

    def _saturate(self, predicate: str, arity: int) -> Set[Tuple]:
        """The fully-closed table of *predicate* (nested fixpoint, memoized)."""
        call: Call = (predicate, (None,) * arity)
        if call in self._saturated:
            return self._tables.setdefault(call, set())
        outer_changed = self._changed
        while True:
            self._changed = False
            self._solve(call, set())
            if not self._changed:
                break
            outer_changed = True
        self._changed = outer_changed
        self._saturated.add(call)
        return self._tables.setdefault(call, set())

    def _negation_passes(self, atom: Atom, substitution: Substitution) -> bool:
        """Ground complement check for a negated literal (must be fully bound)."""
        values: List[object] = []
        for term in atom.terms:
            if isinstance(term, Constant):
                values.append(term.value)
            else:
                bound = substitution.get(term)
                if not isinstance(bound, Constant):
                    raise EvaluationError(
                        f"negated literal {atom} reached with {term} unbound"
                    )
                values.append(bound.value)
        ground = tuple(values)
        if atom.predicate in self._idb:
            if ground in self._saturate(atom.predicate, len(atom.terms)):
                return False
            # Saturated tables are seeded from the database too, so the
            # EDB-side check below is only needed for pure-EDB predicates —
            # but it is harmless and keeps the two branches symmetric.
        return not self.database.contains(atom.predicate, ground)

    def _solve_aggregate(
        self, rule, call: Call, table: Set[Tuple], head_binding: Substitution
    ) -> None:
        """Fire one aggregate rule for *call*, reading only saturated tables.

        Stratification puts the whole body strictly below the head, so the
        groups computed here are final.  Grouping is by the non-aggregate
        head positions (pre-bound positions restrict to those groups, which
        is sound — groups are independent); the aggregate is taken over the
        distinct bindings of the aggregated variable, and a bound aggregate
        position filters the finished group results.
        """
        predicate = call[0]
        agg_position = next(
            position
            for position, term in enumerate(rule.head.terms)
            if isinstance(term, Aggregate)
        )
        aggregate: Aggregate = rule.head.terms[agg_position]
        key_spec = tuple(
            term
            for position, term in enumerate(rule.head.terms)
            if position != agg_position
        )
        body = tuple(
            atom for atom in rule.body if not isinstance(atom, NegatedAtom)
        ) + tuple(atom for atom in rule.body if isinstance(atom, NegatedAtom))
        groups: Dict[Tuple, Set] = {}
        for substitution in self._solve_body(body, 0, head_binding, set(), closed=True):
            self.statistics.record_firing()
            key = tuple(
                substitution[term].value if isinstance(term, Variable) else term.value
                for term in key_spec
            )
            groups.setdefault(key, set()).add(substitution[aggregate.variable].value)
        for key in sorted(groups, key=repr):
            result = _apply_aggregate(aggregate.op, groups[key])
            values = key[:agg_position] + (result,) + key[agg_position:]
            if not _matches_call(values, call):
                continue
            is_new = values not in table
            self.statistics.record_fact(predicate, is_new)
            if is_new:
                table.add(values)
                self._changed = True

    def _solve_body(
        self,
        body: Tuple[Atom, ...],
        position: int,
        substitution: Substitution,
        active: Set[Call],
        closed: bool = False,
    ):
        if position == len(body):
            yield substitution
            return
        atom = body[position]
        if isinstance(atom, NegatedAtom):
            if self._negation_passes(atom, substitution):
                yield from self._solve_body(body, position + 1, substitution, active, closed)
            return
        # Both branches iterate in sorted order so the resolution trace —
        # and with it the firing/duplicate counters — depends only on the
        # program, goal, and fact *content*.  Raw set/index order varies
        # with hash-table layout, which `Database.copy()` does not preserve
        # (a copied set may re-chain collisions), so an unsorted walk makes
        # statistics differ between a database and its own copy.
        if atom.predicate in self._idb:
            if closed:
                # Aggregate-rule bodies read only saturated tables — the
                # aggregate must be a function of the final extension.
                answers = sorted(
                    self._saturate(atom.predicate, len(atom.terms)), key=repr
                )
            else:
                call = _call_of(atom, substitution)
                answers = sorted(self._solve(call, active), key=repr)
            for values in answers:
                extended = match_atom(atom, values, substitution)
                if extended is not None:
                    yield from self._solve_body(body, position + 1, extended, active, closed)
        else:
            for values in sorted(
                candidate_tuples(atom, self.database, substitution), key=repr
            ):
                extended = match_atom(atom, values, substitution)
                if extended is not None:
                    yield from self._solve_body(body, position + 1, extended, active, closed)


def _evaluate(
    program: Program,
    database: Database,
    goal: Optional[Atom] = None,
    max_iterations: Optional[int] = None,
    guard=None,
):
    """Build an evaluator, run the goal, return the result (registry entry point)."""
    evaluator = TopDownEvaluator(program, database, guard=guard)
    return evaluator.result(goal, max_iterations=max_iterations)
