"""Depth-concurrent stratum scheduling for the bottom-up engines.

The paper's SCC stratification (Section 2.1 via :mod:`repro.datalog.engine.planner`)
orders strata bottom-up, but the order is a *linearisation* of a partial
order: two strata at the same topological depth in the condensation DAG
cannot reference each other's predicates — an edge between them would have
ordered them — so their fixpoints read disjoint head relations over a
common, already-closed lower layer.  This module exploits exactly that
freedom:

* :func:`depth_groups` partitions ``ProgramPlan.strata`` by the planner's
  ``Stratum.depth`` annotation (depth order is itself a valid topological
  order, including across negation and aggregate edges, which are ordinary
  dependency edges);
* :func:`evaluate_strata` drives the groups — serially when ``workers <= 1``
  (the byte-for-byte historical path, in the planner's original stratum
  order), and with a thread per same-depth stratum otherwise.

Each concurrent stratum runs over a copy-on-write
:meth:`~repro.datalog.database.Database.overlay` of the shared working set
with a private :class:`~repro.datalog.engine.stats.EvaluationStatistics`;
after the group joins, derived facts and statistics are folded back in
stratum-index order.  Because a stratum's firing counts depend only on its
body predicates — all in strictly lower depths or the stratum itself,
never in a sibling — the folded counters are *identical* to the serial
run's, which is the parity contract the differential tests enforce.

Guards stay cooperative: every thread checkpoints the shared deadline and
cancellation token at its round boundaries, and the driver checkpoints the
merged statistics (the exact global fact/round budget) at every group
boundary.  One aborting stratum flips a group-local event that its
siblings observe at their next checkpoint, so the whole group unwinds
promptly and the first failure (in stratum-index order) is re-raised.

CPython's GIL means same-depth threading is a structural win (latency
overlap for kernels that release the GIL, free-threaded builds) rather
than a throughput one for pure-Python kernels; the throughput story is the
process-sharded delta lane in :mod:`repro.datalog.columnar.shard`.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence

from repro.datalog.engine.stats import EvaluationStatistics
from repro.errors import EvaluationError


class _SiblingAborted(Exception):
    """Internal: a sibling stratum failed; unwind quietly, it carries the error."""


def resolve_workers(workers: Optional[int]) -> int:
    """Validate the ``workers=`` knob; ``None`` means serial (1)."""
    if workers is None:
        return 1
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise EvaluationError(
            f"workers must be a positive int, got {workers!r}"
        )
    if workers < 1:
        raise EvaluationError(f"workers must be >= 1, got {workers}")
    return workers


def depth_groups(strata: Sequence) -> List[List]:
    """Strata partitioned by topological depth, shallowest group first.

    Within a group, strata keep their original (plan) index order — the
    order results are folded back in.  Depth order is a valid topological
    order of the condensation DAG, so replacing the planner's
    linearisation with it never runs a stratum before a dependency.
    """
    groups: Dict[int, List] = {}
    for stratum in strata:
        groups.setdefault(stratum.depth, []).append(stratum)
    return [groups[depth] for depth in sorted(groups)]


def evaluate_strata(
    plan,
    working,
    statistics: EvaluationStatistics,
    run_stratum: Callable,
    check_budget: Callable[[], None],
    *,
    guard=None,
    max_iterations: Optional[int] = None,
    workers: int = 1,
    error_label: str = "semi-naive",
) -> None:
    """Run every stratum of *plan* over *working*, threading same-depth groups.

    *run_stratum* is the engine's serial stratum core with the signature
    ``run_stratum(stratum, working, statistics, check_budget, collect)``;
    ``collect`` (``None`` on the serial path) receives every tuple the
    stratum derives, per predicate, so the driver can commit an overlay's
    additions back into the shared working set.
    """
    if workers <= 1:
        for stratum in plan.strata:
            run_stratum(stratum, working, statistics, check_budget, None)
        return

    executor: Optional[ThreadPoolExecutor] = None
    try:
        for group in depth_groups(plan.strata):
            if len(group) == 1:
                run_stratum(group[0], working, statistics, check_budget, None)
                continue
            if executor is None:
                executor = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="repro-stratum"
                )
            abort = threading.Event()
            base_iterations = statistics.iterations

            def job(stratum):
                local = EvaluationStatistics()

                def check() -> None:
                    if abort.is_set():
                        raise _SiblingAborted()
                    if guard is not None:
                        # Deadline + cancellation see the shared state; the
                        # fact/round budget is enforced exactly against the
                        # merged totals at the group boundary below.
                        guard.checkpoint(local)
                    if (
                        max_iterations is not None
                        and base_iterations + local.iterations > max_iterations
                    ):
                        raise EvaluationError(
                            f"{error_label} evaluation exceeded "
                            f"{max_iterations} iterations"
                        )

                collect: Dict[str, set] = {}
                run_stratum(stratum, working.overlay(), local, check, collect)
                return local, collect

            futures = [executor.submit(job, stratum) for stratum in group]
            results: List = []
            error: Optional[BaseException] = None
            for future in futures:
                try:
                    results.append(future.result())
                except _SiblingAborted:
                    results.append(None)
                except BaseException as exc:
                    abort.set()
                    if error is None:
                        error = exc
                    results.append(None)
            if error is not None:
                raise error
            # Fold back in stratum-index order (futures follow group order):
            # counters are sums and the per-label maps compare
            # order-insensitively, so the merged statistics are identical
            # to the serial pass's.
            for outcome in results:
                local, collect = outcome
                statistics.absorb(local)
                if collect:
                    working.add_relations(collect)
            check_budget()
    finally:
        if executor is not None:
            executor.shutdown(wait=True)
