"""Compiled slot-based join kernels for the bottom-up engines.

PR 2's :class:`~repro.datalog.engine.planner.JoinPlan` fixed *what order* a
rule's body is joined in; the engines still *interpreted* that order through
:func:`~repro.datalog.engine.base.match_body`, which pays real interpreter
overhead per candidate tuple: a fresh substitution dict (``dict(...)`` per
candidate, even failing ones), a :class:`~repro.datalog.terms.Constant`
wrapper allocated per binding, and an ``isinstance`` scan over the atom's
terms to rediscover the probe column on every call.

This module lowers each plan into a :class:`RuleKernel` that removes all of
that from the inner loop:

* the rule's variables are numbered into **slots** ``0..k-1`` once, at
  compile time; a substitution becomes a plain Python list of raw domain
  values — no dicts, no ``Constant`` wrapping;
* each join step precompiles its **probe source** (a constant value, a slot
  to read, or a full scan), its **equality checks** as ``(tuple position,
  expected)`` pairs, and its **bind list** of ``(tuple position, slot)``
  writes — the loop body is pure tuple indexing and list writes;
* **head extraction** compiles to a builder over slot indexes and constant
  values (no per-firing dict lookups through the substitution);
* every :class:`~repro.datalog.engine.planner.DeltaVariant` gets its own
  compiled step sequence sharing the same slot numbering, so semi-naive
  rounds run kernels too.

Compilation is conservative: a rule whose terms are not all variables and
constants (e.g. an un-compiled :class:`~repro.datalog.terms.Parameter`)
yields no kernel and the engines fall back to the ``match_body`` reference
path, which also remains the evaluator for the top-down engine and any
custom transform that produces such rules.  :func:`compile_program_plan`
attaches kernels to the :class:`~repro.datalog.engine.planner.ProgramPlan`,
so the :class:`~repro.datalog.engine.planner.Planner` memo cache (and a
:class:`~repro.datalog.prepared.PreparedQuery`'s cached plan) amortises
kernel compilation exactly like join planning: once per binding pattern.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.datalog.atoms import NegatedAtom
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable

# Probe kinds a compiled step can use to fetch its candidate tuples.
PROBE_CONST = 0  # index probe with a constant baked in at compile time
PROBE_SLOT = 1  # index probe with the value read from a slot
PROBE_SCAN = 2  # full relation scan


class StepKernel:
    """One compiled join step: where to fetch tuples and how to filter them.

    Everything the inner loop needs is precomputed into plain tuples of
    integers and raw values; the atom itself is kept only for
    :meth:`describe`.
    """

    __slots__ = (
        "atom",
        "predicate",
        "arity",
        "use_delta",
        "probe_kind",
        "probe_position",
        "probe_value",
        "probe_slot",
        "const_checks",
        "slot_checks",
        "self_checks",
        "binds",
        "anti",
        "anti_ops",
    )

    def __init__(
        self,
        atom,
        use_delta: bool,
        probe_kind: int,
        probe_position: int,
        probe_value,
        probe_slot: int,
        const_checks: Tuple[Tuple[int, object], ...],
        slot_checks: Tuple[Tuple[int, int], ...],
        self_checks: Tuple[Tuple[int, int], ...],
        binds: Tuple[Tuple[int, int], ...],
        anti: bool = False,
        anti_ops: Tuple[Tuple[bool, object], ...] = (),
    ):
        self.atom = atom
        self.predicate = atom.predicate
        self.arity = atom.arity
        self.use_delta = use_delta
        self.probe_kind = probe_kind
        self.probe_position = probe_position
        self.probe_value = probe_value
        self.probe_slot = probe_slot
        self.const_checks = const_checks
        self.slot_checks = slot_checks
        self.self_checks = self_checks
        self.binds = binds
        # Anti steps (negated literals) run fully bound: ``anti_ops`` builds
        # the ground value tuple — one (is_slot, payload) pair per argument —
        # and the step passes iff the tuple is absent from the relation.
        self.anti = anti
        self.anti_ops = anti_ops

    def describe(self) -> str:
        """One EXPLAIN line: source, probe, checks, and slot writes."""
        if self.anti:
            args = ", ".join(
                f"s{payload}" if is_slot else repr(payload)
                for is_slot, payload in self.anti_ops
            )
            return f"anti-join {self.predicate}({args})"
        source = "delta " if self.use_delta else ""
        if self.probe_kind == PROBE_CONST:
            access = f"probe {source}{self.predicate}[{self.probe_position}]=={self.probe_value!r}"
        elif self.probe_kind == PROBE_SLOT:
            access = f"probe {source}{self.predicate}[{self.probe_position}]==s{self.probe_slot}"
        else:
            access = f"scan {source}{self.predicate}"
        parts = [access]
        checks = [f"[{pos}]=={value!r}" for pos, value in self.const_checks]
        checks += [f"[{pos}]==s{slot}" for pos, slot in self.slot_checks]
        checks += [f"[{pos}]==[{other}]" for pos, other in self.self_checks]
        if checks:
            parts.append("check " + ",".join(checks))
        if self.binds:
            parts.append("bind " + ",".join(f"s{slot}<-[{pos}]" for pos, slot in self.binds))
        return "; ".join(parts)


# A compiled step sequence: call with (database, delta_database, slots, emit)
# and it invokes ``emit`` once per satisfying head-value tuple.
KernelRunner = Callable[[object, object, List[object], Callable[[Tuple], None]], None]


def _compile_head(head_ops: Tuple[Tuple[bool, object], ...]) -> Callable[[List[object]], Tuple]:
    """A builder turning a slot list into the head's value tuple.

    *head_ops* holds one ``(is_slot, payload)`` pair per head argument —
    the payload is a slot index or a raw constant value.  The common small
    arities get dedicated closures so the hot path avoids a generator
    expression per firing.
    """
    if all(not is_slot for is_slot, _ in head_ops):
        ground = tuple(payload for _, payload in head_ops)
        return lambda slots: ground
    if len(head_ops) == 1:
        # The all-constant case returned above, so this is a slot read.
        ((_, payload),) = head_ops
        return lambda slots: (slots[payload],)
    if len(head_ops) == 2:
        (first_slot, first), (second_slot, second) = head_ops
        if first_slot and second_slot:
            return lambda slots: (slots[first], slots[second])
        if first_slot:
            return lambda slots: (slots[first], second)
        return lambda slots: (first, slots[second])
    return lambda slots: tuple(
        slots[payload] if is_slot else payload for is_slot, payload in head_ops
    )


def _compile_steps(
    steps: Sequence[StepKernel], head_builder: Callable[[List[object]], Tuple]
) -> KernelRunner:
    """Chain the compiled steps into nested loops, innermost emitting heads.

    Built back-to-front: each step becomes a closure over its own probe
    spec, check lists, and bind list (all locals — no attribute lookups in
    the loop) that drives the next step's closure per surviving tuple.
    """
    runner: Optional[KernelRunner] = None
    for step in reversed(steps):
        runner = _compile_step(step, runner, head_builder)
    if runner is None:
        # Empty body: fire exactly once (match_body yields one empty
        # substitution); validation guarantees the head is ground.
        return lambda database, delta, slots, emit: emit(head_builder(slots))
    return runner


def _compile_step(
    step: StepKernel,
    continuation: Optional[KernelRunner],
    head_builder: Callable[[List[object]], Tuple],
) -> KernelRunner:
    predicate = step.predicate
    arity = step.arity
    use_delta = step.use_delta
    probe_kind = step.probe_kind
    probe_position = step.probe_position
    probe_value = step.probe_value
    probe_slot = step.probe_slot
    const_checks = step.const_checks
    slot_checks = step.slot_checks
    self_checks = step.self_checks
    binds = step.binds
    is_leaf = continuation is None

    if step.anti:
        anti_ops = step.anti_ops

        def run_anti(database, delta, slots, emit):
            # Membership test against the working database (the negated
            # predicate's relation is fully closed — it lives in a strictly
            # lower stratum or the EDB — so ``contains`` is the complement).
            values = tuple(
                slots[payload] if is_slot else payload for is_slot, payload in anti_ops
            )
            if database.contains(predicate, values):
                return
            if is_leaf:
                emit(head_builder(slots))
            else:
                continuation(database, delta, slots, emit)

        return run_anti

    def run(database, delta, slots, emit):
        source = delta if use_delta else database
        if probe_kind == PROBE_CONST:
            candidates = source.probe(predicate, probe_position, probe_value)
        elif probe_kind == PROBE_SLOT:
            candidates = source.probe(predicate, probe_position, slots[probe_slot])
        else:
            candidates = source.relation(predicate)
        for values in candidates:
            if len(values) != arity:
                continue
            if const_checks:
                matched = True
                for position, expected in const_checks:
                    if values[position] != expected:
                        matched = False
                        break
                if not matched:
                    continue
            if slot_checks:
                matched = True
                for position, slot in slot_checks:
                    if values[position] != slots[slot]:
                        matched = False
                        break
                if not matched:
                    continue
            if self_checks:
                matched = True
                for position, other in self_checks:
                    if values[position] != values[other]:
                        matched = False
                        break
                if not matched:
                    continue
            for position, slot in binds:
                slots[slot] = values[position]
            if is_leaf:
                emit(head_builder(slots))
            else:
                continuation(database, delta, slots, emit)

    return run


class RuleKernel:
    """The fully compiled evaluator for one rule.

    One slot file (``register_count`` raw values) is shared by the static
    step sequence and every delta variant; callers get firings as a list of
    head-value tuples (duplicates included — duplicate accounting belongs
    to the fixpoint, which owns the per-predicate seen-sets).
    """

    __slots__ = (
        "rule",
        "register_count",
        "slot_names",
        "head_ops",
        "static_steps",
        "delta_steps",
        "_head_builder",
        "_static_runner",
        "_delta_runners",
        "_batch",
    )

    def __init__(
        self,
        rule: Rule,
        register_count: int,
        slot_names: Tuple[str, ...],
        head_ops: Tuple[Tuple[bool, object], ...],
        static_steps: Tuple[StepKernel, ...],
        delta_steps: Dict[int, Tuple[StepKernel, ...]],
    ):
        self.rule = rule
        self.register_count = register_count
        self.slot_names = slot_names
        self.head_ops = head_ops
        self.static_steps = static_steps
        self.delta_steps = dict(delta_steps)
        self._head_builder = _compile_head(head_ops)
        self._static_runner = _compile_steps(static_steps, self._head_builder)
        self._delta_runners = {
            position: _compile_steps(steps, self._head_builder)
            for position, steps in delta_steps.items()
        }
        self._batch = None

    @property
    def delta_positions(self) -> Tuple[int, ...]:
        """Original body positions that have a compiled delta variant."""
        return tuple(self.delta_steps)

    def batch_kernel(self):
        """The columnar lowering of this kernel's step programs.

        Same steps, same slot numbering, same delta variants — but each
        step runs over a whole batch of intern-code columns instead of one
        tuple at a time (see :mod:`repro.datalog.columnar.batch`).  Built
        lazily so tuple-layout evaluations never pay for it.
        """
        if self._batch is None:
            from repro.datalog.columnar.batch import BatchKernel

            self._batch = BatchKernel(self)
        return self._batch

    def execute_static(self, database, emit: Callable[[Tuple], None]) -> None:
        """Stream the static order's head-value firings into *emit*.

        Duplicates are streamed too — duplicate accounting belongs to the
        fixpoint, which owns the per-predicate seen-sets and filters in its
        callback without materialising the firing list.
        """
        self._static_runner(database, None, [None] * self.register_count, emit)

    def execute_delta(
        self, position: int, database, delta, emit: Callable[[Tuple], None]
    ) -> None:
        """Stream firings with the body atom at *position* reading the delta."""
        self._delta_runners[position](database, delta, [None] * self.register_count, emit)

    def run_static(self, database) -> List[Tuple]:
        """All head-value firings of the static order, materialised (for tests)."""
        out: List[Tuple] = []
        self.execute_static(database, out.append)
        return out

    def run_delta(self, position: int, database, delta) -> List[Tuple]:
        """All firings of one delta variant, materialised (for tests)."""
        out: List[Tuple] = []
        self.execute_delta(position, database, delta, out.append)
        return out

    def head(self, slots: Sequence[object]) -> Tuple:
        """The head-value tuple for a fully populated slot list (for tests)."""
        return self._head_builder(list(slots))

    def describe(self) -> str:
        """EXPLAIN surface: slot numbering, head extraction, per-step detail."""
        slots = ", ".join(f"{name}=s{index}" for index, name in enumerate(self.slot_names))
        head = ", ".join(
            f"s{payload}" if is_slot else repr(payload) for is_slot, payload in self.head_ops
        )
        lines = [f"kernel: {self.register_count} slots ({slots or 'none'}); head <{head}>"]
        for number, step in enumerate(self.static_steps, start=1):
            lines.append(f"  {number}. {step.describe()}")
        for position in sorted(self.delta_steps):
            chain = " -> ".join(step.describe() for step in self.delta_steps[position])
            lines.append(f"  delta@{position}: {chain}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"RuleKernel(rule={self.rule}, slots={self.register_count}, "
            f"steps={len(self.static_steps)}, variants={len(self.delta_steps)})"
        )


def _compile_sequence(
    rule: Rule,
    order: Sequence[int],
    registers: Dict[Variable, int],
    delta_position: Optional[int],
) -> Optional[Tuple[StepKernel, ...]]:
    """Lower one execution order into compiled steps under the shared slots.

    The probe column mirrors :func:`~repro.datalog.engine.base.candidate_tuples`
    exactly — the first argument (in term order) that is a constant or an
    already-bound variable — so the compiled access path is the one the
    planner's ``probe``/``scan`` annotations promised.

    A negated literal compiles to an *anti step* (fully-bound membership
    test against the complement) — unless it is the delta position, in
    which case it is matched positively against the signed delta (the
    incremental maintenance pass enumerates negated-position deltas that
    way).  Returns ``None`` if an anti step would run with an unbound
    variable (planned orders never do this; a hand-built order might).
    """
    bound: set = set()
    steps: List[StepKernel] = []
    for position in order:
        atom = rule.body[position]
        if isinstance(atom, NegatedAtom) and position != delta_position:
            anti_ops: List[Tuple[bool, object]] = []
            for term in atom.terms:
                if isinstance(term, Constant):
                    anti_ops.append((False, term.value))
                elif term in bound:
                    anti_ops.append((True, registers[term]))
                else:
                    return None
            steps.append(
                StepKernel(
                    atom, False, PROBE_SCAN, -1, None, -1, (), (), (), (),
                    anti=True, anti_ops=tuple(anti_ops),
                )
            )
            continue
        probe_kind = PROBE_SCAN
        probe_position = -1
        probe_value = None
        probe_slot = -1
        for index, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                probe_kind, probe_position, probe_value = PROBE_CONST, index, term.value
                break
            if term in bound:
                probe_kind, probe_position, probe_slot = PROBE_SLOT, index, registers[term]
                break
        const_checks: List[Tuple[int, object]] = []
        slot_checks: List[Tuple[int, int]] = []
        self_checks: List[Tuple[int, int]] = []
        binds: List[Tuple[int, int]] = []
        first_here: Dict[Variable, int] = {}
        for index, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                if probe_kind == PROBE_CONST and index == probe_position:
                    continue  # the probe already guarantees equality here
                const_checks.append((index, term.value))
            elif term in bound:
                if probe_kind == PROBE_SLOT and index == probe_position:
                    continue  # ditto: probed by this slot's value
                slot_checks.append((index, registers[term]))
            elif term in first_here:
                # Repeated variable within this atom, still unbound: compare
                # the two tuple positions directly.
                self_checks.append((index, first_here[term]))
            else:
                first_here[term] = index
                binds.append((index, registers[term]))
        bound.update(first_here)
        steps.append(
            StepKernel(
                atom,
                position == delta_position,
                probe_kind,
                probe_position,
                probe_value,
                probe_slot,
                tuple(const_checks),
                tuple(slot_checks),
                tuple(self_checks),
                tuple(binds),
            )
        )
    return tuple(steps)


def compile_rule_kernel(plan) -> Optional[RuleKernel]:
    """Compile a :class:`~repro.datalog.engine.planner.JoinPlan` to a kernel.

    Returns ``None`` when the rule cannot be lowered — any term that is not
    a plain variable or constant (an un-compiled parameter, or a term kind a
    future transform might invent) keeps the rule on the interpreted
    ``match_body`` path instead of miscompiling it.
    """
    rule: Rule = plan.rule
    for atom in (rule.head, *rule.body):
        for term in atom.terms:
            if not isinstance(term, (Variable, Constant)):
                return None
    registers: Dict[Variable, int] = {}
    for atom in rule.body:
        for term in atom.terms:
            if isinstance(term, Variable) and term not in registers:
                registers[term] = len(registers)
    head_ops: List[Tuple[bool, object]] = []
    for term in rule.head.terms:
        if isinstance(term, Variable):
            if term not in registers:
                return None  # unsafe head variable; leave it to validation
            head_ops.append((True, registers[term]))
        else:
            head_ops.append((False, term.value))
    static_steps = _compile_sequence(rule, plan.order, registers, None)
    if static_steps is None:
        return None
    delta_steps = {}
    for variant in plan.variants:
        steps = _compile_sequence(rule, variant.order, registers, variant.position)
        if steps is None:
            return None
        delta_steps[variant.position] = steps
    slot_names = tuple(
        name for name, _ in sorted(
            ((variable.name, index) for variable, index in registers.items()),
            key=lambda pair: pair[1],
        )
    )
    return RuleKernel(
        rule, len(registers), slot_names, tuple(head_ops), static_steps, delta_steps
    )
