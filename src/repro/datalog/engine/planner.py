"""Cost-guided join planning and SCC stratification for the bottom-up engines.

The paper's rewrites (magic sets, Theorem 3.3's monadic rewrite) shrink the
set of *facts* an evaluation has to derive; this module makes sure the
evaluator does not squander those savings on the *joins* it performs to
derive them.  Two classic, rewrite-compatible optimisations live here:

**Join planning.**  For each rule a :class:`JoinPlan` fixes the order in
which body atoms are matched.  The order is chosen greedily: always prefer
an atom that can be answered by an index probe — one with a constant
argument or a variable already bound by earlier atoms (served by
:meth:`repro.datalog.database.Database.probe`) — and among equally
probeable atoms take the one over the smallest relation
(:meth:`repro.datalog.database.Database.cardinality`).  For semi-naive
evaluation every plan also carries *delta variants*: one per recursive body
atom, with the delta atom moved to the front (the per-iteration delta is
the smallest relation in sight) and the rest re-ordered under the bindings
the delta atom provides.

**SCC stratification.**  A :class:`ProgramPlan` groups the program's rules
into :class:`Stratum` objects — the strongly connected components of the
predicate dependency graph (:mod:`repro.datalog.analysis`), in bottom-up
topological order.  Each stratum reaches its own fixpoint before the next
one starts, so non-recursive strata are evaluated in exactly one pass and a
chain program's long dependency chain costs O(rules) rule scans instead of
O(strata × rules).

Plans are compiled once per evaluation from the EDB's cardinalities;
:class:`Planner` additionally memoises them per ``(program, database,
version)`` so a :class:`~repro.datalog.session.QuerySession` re-running the
same query (e.g. inside a benchmark loop) pays for planning once.  Each
plan also carries the compiled slot-based kernels the bottom-up engines
execute (:mod:`repro.datalog.engine.executor`), so kernel compilation is
amortised exactly like planning — once per binding pattern for a prepared
query.  ``ProgramPlan.describe()`` is the ``EXPLAIN`` surface printed by
``repro evaluate --explain``.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.datalog.analysis import dependency_graph, negative_dependency_edges
from repro.datalog.atoms import Atom, NegatedAtom
from repro.datalog.database import Database
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Aggregate, Constant, Parameter, Variable


@dataclass(frozen=True)
class AtomStep:
    """One step of a join plan: match *atom* (at original body *position*).

    ``access`` is the access path predicted at plan time: ``"probe"`` when
    the atom has a constant or an already-bound variable (so the database's
    hash index applies), ``"scan"`` for a full-relation scan, ``"delta"``
    when the atom is matched against the per-iteration delta, ``"anti"``
    for a negated literal checked as an anti-join (a membership test
    against the closed lower-stratum relation).  ``estimate`` is the
    relation cardinality the choice was based on.
    """

    position: int
    atom: Atom
    access: str
    probe_hint: Optional[str]
    estimate: int

    def describe(self) -> str:
        if self.access == "delta":
            return f"{self.atom} [delta]"
        if self.access == "anti":
            return f"{self.atom} [anti-join {self.atom.predicate}, ~{self.estimate} rows]"
        if self.access == "probe":
            return f"{self.atom} [probe {self.probe_hint}, ~{self.estimate} rows]"
        return f"{self.atom} [scan {self.atom.predicate}, ~{self.estimate} rows]"


@dataclass(frozen=True)
class DeltaVariant:
    """A delta-specialised ordering: the atom at *position* reads the delta."""

    position: int
    order: Tuple[int, ...]
    steps: Tuple[AtomStep, ...]

    def describe(self) -> str:
        chain = " -> ".join(step.describe() for step in self.steps)
        return f"delta on {self.steps[0].atom}: {chain}"


@dataclass(frozen=True)
class JoinPlan:
    """The compiled evaluation order for one rule's body.

    ``order`` lists original body positions in execution order; the engines
    hand it to :func:`repro.datalog.engine.base.match_body`.  ``variants``
    holds one :class:`DeltaVariant` per body position that can receive
    semi-naive deltas (atoms whose predicate is in the head's stratum).
    ``head_spec`` precompiles head-tuple extraction — one ``(variable,
    constant)`` pair per head argument — so engines build a derived fact's
    value tuple straight from the substitution without instantiating an
    :class:`~repro.datalog.atoms.Atom` per firing.
    """

    rule: Rule
    order: Tuple[int, ...]
    steps: Tuple[AtomStep, ...]
    variants: Tuple[DeltaVariant, ...]
    head_spec: Tuple[Tuple[Optional[Variable], object], ...] = ()

    def head_values(self, substitution) -> Tuple:
        """The head fact's value tuple under *substitution* (must bind all head vars)."""
        return tuple(
            substitution[variable].value if variable is not None else constant
            for variable, constant in self.head_spec
        )

    def describe(self) -> str:
        lines = [f"{self.rule}"]
        if self.order:
            chain = " -> ".join(step.describe() for step in self.steps)
            lines.append(f"  order: {chain}")
        for variant in self.variants:
            lines.append(f"  {variant.describe()}")
        return "\n".join(lines)


@dataclass(frozen=True)
class Stratum:
    """One strongly connected component of IDB predicates, with its rules.

    ``depth`` is the stratum's topological depth in the condensation DAG:
    0 for strata that read only EDB relations, else one more than the
    deepest stratum any body atom depends on.  Strata sharing a depth have
    no dependency edges between them (an edge would order them), which is
    what licenses evaluating them concurrently — see
    :mod:`repro.datalog.engine.parallel`.
    """

    index: int
    predicates: FrozenSet[str]
    rules: Tuple[Rule, ...]
    recursive: bool
    depth: int = 0

    @property
    def label(self) -> str:
        """Stable display name: the member predicates, sorted."""
        return ",".join(sorted(self.predicates))


@dataclass
class ProgramPlan:
    """Strata, per-rule join plans, and compiled kernels for one (program, database) pair."""

    program: Program
    strata: Tuple[Stratum, ...]
    plans: Dict[Rule, JoinPlan] = field(default_factory=dict)
    # rule -> compiled slot-based kernel, or None when the rule cannot be
    # lowered (see repro.datalog.engine.executor.compile_rule_kernel); the
    # engines fall back to interpreted match_body for None entries.
    kernels: Dict[Rule, object] = field(default_factory=dict)

    def join_plan(self, rule: Rule) -> JoinPlan:
        """The compiled plan for *rule* (every proper rule has one)."""
        return self.plans[rule]

    def kernel(self, rule: Rule):
        """The compiled :class:`~repro.datalog.engine.executor.RuleKernel`, or ``None``."""
        return self.kernels.get(rule)

    def describe(self) -> str:
        """Human-readable EXPLAIN output: strata, join orders, compiled kernels."""
        rule_count = sum(len(stratum.rules) for stratum in self.strata)
        negative = negative_dependency_edges(self.program)
        lines = [f"join plan: {len(self.strata)} strata, {rule_count} rules"]
        for stratum in self.strata:
            kind = "recursive" if stratum.recursive else "single pass"
            # Depth 0 keeps the historical line shape; deeper strata show
            # where they sit in the condensation DAG (same-depth strata are
            # the ones a parallel run may evaluate concurrently).
            if stratum.depth:
                kind = f"{kind}, depth {stratum.depth}"
            lines.append(f"stratum {stratum.index + 1}: {stratum.label} [{kind}]")
            for (source, target), reason in sorted(negative.items()):
                if source in stratum.predicates:
                    lines.append(
                        f"  negative edge: {source} -> {target} [{reason}; "
                        f"{target} closed in a lower stratum]"
                    )
            for rule in stratum.rules:
                plan = self.plans[rule]
                for line in plan.describe().splitlines():
                    lines.append("  " + line)
                kernel = self.kernels.get(rule)
                if kernel is None:
                    lines.append("    kernel: none (interpreted match_body path)")
                else:
                    for line in kernel.describe().splitlines():
                        lines.append("    " + line)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Ordering heuristic
# ----------------------------------------------------------------------
def _probe_position(atom: Atom, bound: Set[Variable]) -> Optional[int]:
    """The position :func:`candidate_tuples` will probe under *bound*, if any.

    Mirrors its search exactly: the first argument (in term order) that is a
    constant or an already-bound variable is the probe column.  Parameter
    slots count as bound — the concrete constant arrives at execution time,
    but the access path (index probe on that position) is fixed now, which
    is what lets a prepared query reuse one plan for every binding.
    """
    for position, term in enumerate(atom.terms):
        if isinstance(term, (Constant, Parameter)):
            return position
        if isinstance(term, Variable) and term in bound:
            return position
    return None


def _probe_hint(atom: Atom, bound: Set[Variable]) -> Optional[str]:
    """Human-readable probe description for EXPLAIN output, if probeable."""
    position = _probe_position(atom, bound)
    if position is None:
        return None
    term = atom.terms[position]
    if isinstance(term, Constant):
        return f"{atom.predicate}[{position}]={term.value}"
    if isinstance(term, Parameter):
        return f"{atom.predicate}[{position}]=${term.name}"
    return f"{atom.predicate}[{position}]={term.name}"


def _probe_estimate(
    atom: Atom,
    position: Optional[int],
    cardinality: int,
    column_stats: Optional[Dict[str, Dict[int, int]]],
) -> int:
    """Expected rows per probe hit: cardinality over the column's distincts.

    Without column statistics (tuple layout, or an IDB relation that has no
    columns yet) the estimate stays the whole-relation cardinality — the
    pre-columnar behaviour.
    """
    if position is None or not column_stats:
        return cardinality
    distinct = column_stats.get(atom.predicate, {}).get(position, 0)
    if distinct <= 0:
        return cardinality
    return max(1, cardinality // distinct)


def order_body(
    body: Sequence[Atom],
    estimates: Dict[str, int],
    bound: Optional[Set[Variable]] = None,
    first: Optional[int] = None,
    column_stats: Optional[Dict[str, Dict[int, int]]] = None,
) -> Tuple[int, ...]:
    """Greedy join order over *body*: probeable atoms first, smallest next.

    At every step the next atom is the one minimising
    ``(not probeable, row estimate, unbound variable count, original
    position)`` given the variables bound so far; *first* pins an atom to
    the front (the semi-naive delta atom).  The row estimate is the
    relation cardinality, refined for probeable atoms by *column_stats*
    (per-position distinct counts from a columnar-layout database) to the
    expected rows per probe hit.  Returns original body positions in
    execution order.
    """
    bound_vars: Set[Variable] = set(bound) if bound else set()
    order: List[int] = []
    remaining = list(range(len(body)))
    if first is not None:
        remaining.remove(first)
        order.append(first)
        bound_vars.update(body[first].variables())

    while remaining:

        def cost(position: int) -> Tuple[int, int, int, int]:
            atom = body[position]
            unbound = sum(1 for v in atom.variables() if v not in bound_vars)
            if isinstance(atom, NegatedAtom):
                # A fully-bound negated literal is a free filter — run it as
                # soon as possible (tier 0, below any positive estimate).  An
                # unbound one goes to tier 2: never before the positives, so
                # by safety every anti step executes fully bound.
                if unbound == 0:
                    return (0, -1, 0, position)
                return (2, estimates.get(atom.predicate, 0), unbound, position)
            probe_position = _probe_position(atom, bound_vars)
            cardinality = estimates.get(atom.predicate, 0)
            estimate = _probe_estimate(atom, probe_position, cardinality, column_stats)
            return (
                0 if probe_position is not None else 1,
                estimate,
                unbound,
                position,
            )

        best = min(remaining, key=cost)
        remaining.remove(best)
        order.append(best)
        bound_vars.update(body[best].variables())
    return tuple(order)


def _steps_for(
    body: Sequence[Atom],
    order: Tuple[int, ...],
    estimates: Dict[str, int],
    delta_position: Optional[int] = None,
    column_stats: Optional[Dict[str, Dict[int, int]]] = None,
) -> Tuple[AtomStep, ...]:
    """Annotate an ordering with the access path each step will use."""
    bound: Set[Variable] = set()
    steps: List[AtomStep] = []
    for position in order:
        atom = body[position]
        estimate = estimates.get(atom.predicate, 0)
        if position == delta_position:
            steps.append(AtomStep(position, atom, "delta", None, estimate))
        elif isinstance(atom, NegatedAtom):
            steps.append(AtomStep(position, atom, "anti", None, estimate))
        else:
            probe_position = _probe_position(atom, bound)
            hint = _probe_hint(atom, bound)
            access = "probe" if hint is not None else "scan"
            estimate = _probe_estimate(atom, probe_position, estimate, column_stats)
            steps.append(AtomStep(position, atom, access, hint, estimate))
        bound.update(atom.variables())
    return tuple(steps)


def plan_rule(
    rule: Rule,
    initial_estimates: Dict[str, int],
    steady_estimates: Optional[Dict[str, int]] = None,
    delta_predicates: FrozenSet[str] = frozenset(),
    column_stats: Optional[Dict[str, Dict[int, int]]] = None,
) -> JoinPlan:
    """Compile the :class:`JoinPlan` for one rule.

    *delta_predicates* are the predicates of the rule's own stratum: every
    body occurrence of one gets a delta-specialised variant with that atom
    moved to the front.  The static order is chosen under
    *initial_estimates* (same-stratum relations are near-empty when the
    stratum's first pass runs); the delta variants under *steady_estimates*
    (mid-fixpoint, when those relations have grown).
    """
    if steady_estimates is None:
        steady_estimates = initial_estimates
    order = order_body(rule.body, initial_estimates, column_stats=column_stats)
    steps = _steps_for(rule.body, order, initial_estimates, column_stats=column_stats)
    variants = []
    for position, atom in enumerate(rule.body):
        if atom.predicate in delta_predicates:
            variant_order = order_body(
                rule.body, steady_estimates, first=position, column_stats=column_stats
            )
            variant_steps = _steps_for(
                rule.body, variant_order, steady_estimates, position, column_stats
            )
            variants.append(DeltaVariant(position, variant_order, variant_steps))
    head_spec = tuple(
        (term, None)
        if isinstance(term, Variable)
        # Aggregate head slots are filled by the stratum-close aggregate
        # routine, never by head_values — a placeholder keeps plan
        # compilation total.
        else (None, None)
        if isinstance(term, Aggregate)
        else (None, term.value)
        for term in rule.head.terms
    )
    return JoinPlan(rule, order, steps, tuple(variants), head_spec)


# ----------------------------------------------------------------------
# Program-level compilation
# ----------------------------------------------------------------------
def cardinality_estimates(program: Program, database: Database) -> Dict[str, int]:
    """Per-predicate cardinality estimates at plan time.

    EDB predicates report their exact current cardinality; IDB relations do
    not exist yet when the plan is compiled, so they are pessimistically
    estimated at the database's total fact count — which makes the planner
    prefer joining through concrete (usually smaller) EDB relations first.
    Stratum compilation refines this per stratum: a stratum's *own*
    predicates are estimated near-empty for the static (first-pass) order,
    because when that order runs the stratum has derived nothing yet.
    """
    from repro.datalog.transforms.parameters import is_parameter_relation

    idb = program.idb_predicates()
    total = max(database.fact_count(), 1)
    estimates: Dict[str, int] = {}
    for predicate in program.predicates():
        if is_parameter_relation(predicate):
            # Deferred parameter seeds: exactly one fact per binding at run
            # time (a handful under execute_many), regardless of what the
            # database holds at plan time.
            estimates[predicate] = 1
        elif predicate in idb:
            estimates[predicate] = total
        else:
            estimates[predicate] = database.cardinality(predicate)
    return estimates


def column_statistics(
    program: Program, database: Database
) -> Optional[Dict[str, Dict[int, int]]]:
    """Per-position distinct-code counts for a columnar-layout database.

    Tuple-layout databases return ``None`` — their plans are chosen exactly
    as before this statistic existed, so plan shapes (and EXPLAIN output)
    only change where the columnar mirror actually provides the numbers.
    Only EDB predicates report: IDB relations have no columns at plan time.
    """
    if getattr(database, "layout", "tuple") != "columnar":
        return None
    idb = program.idb_predicates()
    store = database.columnar_store()
    stats: Dict[str, Dict[int, int]] = {}
    for predicate in program.predicates():
        if predicate in idb:
            continue
        distincts = store.column_distincts(predicate)
        if distincts:
            stats[predicate] = distincts
    return stats or None


def compile_program_plan(
    program: Program, database: Database, *, all_deltas: bool = False
) -> ProgramPlan:
    """Compile strata, per-rule join plans, and slot kernels for *program* over *database*.

    With ``all_deltas=True`` every body position of every rule gets a
    delta-specialised variant (and compiled delta kernel), not just the
    recursive same-stratum positions.  The evaluation engines never need
    that — their deltas are always same-stratum — but incremental view
    maintenance (:mod:`repro.datalog.incremental`) seeds deltas from
    *external* insertions and deletions, which arrive through EDB and
    lower-stratum body atoms too.
    """
    from repro.datalog.engine.executor import compile_rule_kernel

    proper_rules = tuple(rule for rule in program.rules if not rule.is_fact())
    graph = dependency_graph(program)
    estimates = cardinality_estimates(program, database)
    column_stats = column_statistics(program, database)

    strata: List[Stratum] = []
    plans: Dict[Rule, JoinPlan] = {}
    kernels: Dict[Rule, object] = {}
    # predicate -> depth of the (already built, i.e. lower) stratum holding
    # it; EDB predicates and rule-less components never enter, so they
    # contribute depth -1 below and a stratum over pure EDB input sits at 0.
    stratum_depths: Dict[str, int] = {}
    for component in graph.strongly_connected_components():
        rules: List[Rule] = []
        for rule in proper_rules:
            if rule.head.predicate in component:
                rules.append(rule)
        if not rules:
            continue
        recursive = len(component) > 1 or any(
            (predicate, predicate) in graph.edges for predicate in component
        )
        predicates = frozenset(component)
        delta_predicates = predicates if recursive else frozenset()
        if all_deltas:
            delta_predicates = frozenset(
                atom.predicate for rule in rules for atom in rule.body
            )
        # The stratum's own relations hold (at most) fact-rule facts when its
        # first pass runs, so the static order treats them as near-empty; the
        # delta variants run mid-fixpoint and keep the pessimistic estimate.
        initial_estimates = dict(estimates)
        for predicate in predicates:
            initial_estimates[predicate] = 0
        for rule in rules:
            if rule not in plans:
                plans[rule] = plan_rule(
                    rule, initial_estimates, estimates, delta_predicates, column_stats
                )
                kernels[rule] = compile_rule_kernel(plans[rule])
        depth = 1 + max(
            (
                stratum_depths.get(atom.predicate, -1)
                for rule in rules
                for atom in rule.body
                if atom.predicate not in predicates
            ),
            default=-1,
        )
        for predicate in predicates:
            stratum_depths[predicate] = depth
        strata.append(Stratum(len(strata), predicates, tuple(rules), recursive, depth))
    return ProgramPlan(program, tuple(strata), plans, kernels)


class Planner:
    """Memoising front end over :func:`compile_program_plan`.

    A :class:`~repro.datalog.session.QuerySession` keeps one planner for its
    lifetime and passes it to every engine run, so repeated queries over the
    same program and database reuse the compiled plan.  The cache keys on
    the identities of the program and database plus the database's mutation
    counter (:attr:`~repro.datalog.database.Database.version`): mutating the
    data invalidates the plan, because the cardinalities it was based on are
    stale.
    """

    MAX_ENTRIES = 128

    def __init__(self) -> None:
        # (id(program), id(database)) -> (version, plan, weak program ref,
        # weak database ref).  Weak refs mean the cache never keeps a swept
        # database alive, and a recycled id is detected because its dead ref
        # no longer matches the new object.
        self._cache: Dict[
            Tuple[int, int], Tuple[int, ProgramPlan, "weakref.ref", "weakref.ref"]
        ] = {}
        # One planner is shared by every engine run of a session/service, and
        # the service runs engines without holding its own lock — so the LRU
        # del/re-insert, the eviction scan, and the counters below must never
        # race (an unlocked eviction scan over .items() can see a concurrent
        # del and raise "dictionary changed size during iteration").
        self._lock = threading.Lock()
        self.plans_compiled = 0
        self.cache_hits = 0

    def plan(self, program: Program, database: Database, statistics=None) -> ProgramPlan:
        """The (possibly cached) :class:`ProgramPlan` for this pair.

        When *statistics* (an
        :class:`~repro.datalog.engine.stats.EvaluationStatistics`) is given,
        the compile/hit is recorded there as well.  Thread-safe: concurrent
        callers may compile the same plan at most once each (compilation
        deliberately runs outside the lock — plans are immutable and cheap
        to discard), but the cache structure and the ``plans_compiled`` /
        ``cache_hits`` counters stay consistent, with one count per call.
        """
        key = (id(program), id(database))
        with self._lock:
            entry = self._cache.get(key)
            if (
                entry is not None
                and entry[0] == database.version
                and entry[2]() is program
                and entry[3]() is database
            ):
                self.cache_hits += 1
                # Re-insert so eviction order is least-recently-used, not FIFO.
                del self._cache[key]
                self._cache[key] = entry
                if statistics is not None:
                    statistics.record_plan(cache_hit=True)
                return entry[1]
        plan = compile_program_plan(program, database)
        with self._lock:
            if len(self._cache) >= self.MAX_ENTRIES:
                # Engines that rewrite the program per call (e.g. ``magic``)
                # mint a fresh Program object every evaluation; without a
                # bound those one-shot entries would accumulate forever.
                # Drop dead entries first, then the oldest, so hot pairs
                # survive eviction.
                for stale in [
                    k
                    for k, (_, _, p, d) in self._cache.items()
                    if p() is None or d() is None
                ]:
                    del self._cache[stale]
                while len(self._cache) >= self.MAX_ENTRIES:
                    self._cache.pop(next(iter(self._cache)))
            self._cache[key] = (
                database.version,
                plan,
                weakref.ref(program),
                weakref.ref(database),
            )
            self.plans_compiled += 1
        if statistics is not None:
            statistics.record_plan(cache_hit=False)
        return plan
