"""Derivation trees and proof-depth accounting.

Section 2.1 defines the operational semantics of Datalog via derivation
trees; Section 8 defines *boundedness* in terms of the size of derivation
trees.  This module computes, for every fact of the minimum model, the
minimum derivation-tree height and size, and can reconstruct an explicit
tree — the machinery behind the Proposition 8.2 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.datalog.atoms import Atom, ground_atom
from repro.datalog.database import Database
from repro.datalog.engine.base import match_body
from repro.datalog.engine.naive import _evaluate as _evaluate_naive
from repro.datalog.program import Program
from repro.datalog.rules import Rule


@dataclass(frozen=True)
class DerivationTree:
    """A derivation tree: a ground atom, the rule used, and child subtrees.

    Leaves are database facts; their ``rule`` is ``None`` and they have no
    children (property (1) of the paper's definition).
    """

    fact: Atom
    rule: Optional[Rule]
    children: Tuple["DerivationTree", ...] = ()

    def height(self) -> int:
        """Height of the tree (a single leaf has height 1)."""
        if not self.children:
            return 1
        return 1 + max(child.height() for child in self.children)

    def size(self) -> int:
        """Number of nodes of the tree."""
        return 1 + sum(child.size() for child in self.children)

    def leaves(self) -> Tuple[Atom, ...]:
        """The database facts the tree rests on."""
        if not self.children:
            return (self.fact,)
        result = []
        for child in self.children:
            result.extend(child.leaves())
        return tuple(result)


class DerivationAnalyzer:
    """Minimum proof heights and explicit derivation trees for a program run."""

    def __init__(self, program: Program, database: Database):
        self.program = program
        self.database = database
        self._result = _evaluate_naive(program, database)
        self._model = self._result.full_model()
        self._heights = self._compute_heights()

    # ------------------------------------------------------------------
    def _compute_heights(self) -> Dict[Tuple[str, Tuple], int]:
        """Minimum derivation height per derived fact (EDB facts have height 1)."""
        heights: Dict[Tuple[str, Tuple], int] = {}
        for fact in self.database.facts():
            heights[(fact.predicate, fact.as_fact_tuple())] = 1

        fact_rules = [rule for rule in self.program.rules if rule.is_fact()]
        for rule in fact_rules:
            heights[(rule.head.predicate, rule.head.as_fact_tuple())] = 1

        proper_rules = [rule for rule in self.program.rules if not rule.is_fact()]
        index = self._model
        changed = True
        while changed:
            changed = False
            for rule in proper_rules:
                for substitution in match_body(rule.body, index):
                    body_heights = []
                    ok = True
                    for atom in rule.body:
                        key = (atom.predicate, atom.substitute(substitution).as_fact_tuple())
                        if key not in heights:
                            ok = False
                            break
                        body_heights.append(heights[key])
                    if not ok:
                        continue
                    head = rule.head.substitute(substitution)
                    key = (head.predicate, head.as_fact_tuple())
                    candidate = 1 + max(body_heights) if body_heights else 1
                    if key not in heights or candidate < heights[key]:
                        heights[key] = candidate
                        changed = True
        return heights

    # ------------------------------------------------------------------
    def proof_height(self, fact: Atom) -> Optional[int]:
        """Minimum derivation-tree height of a ground atom, or ``None`` if underivable."""
        return self._heights.get((fact.predicate, fact.as_fact_tuple()))

    def max_goal_proof_height(self) -> int:
        """Maximum over goal answers of the minimum proof height (0 if no answers).

        A program is bounded w.r.t. its goal when this quantity is bounded by
        a constant independent of the database (Section 8).
        """
        goal = self.program.goal
        if goal is None:
            raise ValueError("the program has no goal")
        relation = self._result.relation(goal.predicate)
        heights = [
            self._heights.get((goal.predicate, values))
            for values in relation
        ]
        heights = [h for h in heights if h is not None]
        return max(heights) if heights else 0

    def derivation_tree(self, fact: Atom) -> Optional[DerivationTree]:
        """An explicit minimum-height derivation tree for *fact* (or ``None``)."""
        key = (fact.predicate, fact.as_fact_tuple())
        if key not in self._heights:
            return None
        return self._build_tree(fact)

    def _build_tree(self, fact: Atom) -> DerivationTree:
        key = (fact.predicate, fact.as_fact_tuple())
        height = self._heights[key]
        if height == 1 and self.database.contains(fact.predicate, fact.as_fact_tuple()):
            return DerivationTree(fact, None, ())
        index = self._model
        for rule in self.program.rules:
            if rule.head.predicate != fact.predicate:
                continue
            if rule.is_fact():
                if rule.head.as_fact_tuple() == fact.as_fact_tuple():
                    return DerivationTree(fact, rule, ())
                continue
            # Bind the head against the target fact, then search bodies.
            from repro.datalog.unify import match_atom

            head_binding = match_atom(rule.head, fact.as_fact_tuple())
            if head_binding is None:
                continue
            for substitution in match_body(rule.body, index, initial=head_binding):
                child_keys = [
                    (atom.predicate, atom.substitute(substitution).as_fact_tuple())
                    for atom in rule.body
                ]
                if any(k not in self._heights for k in child_keys):
                    continue
                if 1 + max(self._heights[k] for k in child_keys) != height:
                    continue
                children = tuple(
                    self._build_tree(ground_atom(pred, values)) for pred, values in child_keys
                )
                return DerivationTree(fact, rule, children)
        # Fall back: the fact is in the model but only via the database.
        return DerivationTree(fact, None, ())
