"""Naive bottom-up evaluation: iterate all rules over the full model until fixpoint.

This is the textbook (Gauss–Seidel-free) fixpoint computation of the minimum
model ``M(B, H)`` of Section 2.1.  It recomputes every rule over the whole
model at every iteration, so it derives the same facts over and over — the
:class:`~repro.datalog.engine.stats.EvaluationStatistics` duplicate counter
makes that waste visible, which is exactly the waste the paper's selection
propagation and the magic-set transformation are designed to avoid.
"""

from __future__ import annotations

from typing import Optional

from repro.datalog.database import Database
from repro.datalog.engine.base import (
    EvaluationResult,
    match_body,
    split_rules,
)
from repro.datalog.engine.stats import EvaluationStatistics
from repro.datalog.program import Program
from repro.errors import EvaluationError


def evaluate_naive(
    program: Program, database: Database, max_iterations: Optional[int] = None
) -> EvaluationResult:
    """Compute the minimum model of *program* over *database* naively.

    Parameters
    ----------
    program:
        The Datalog program (must be safe).
    database:
        The EDB instance; it is not modified.
    max_iterations:
        Optional safety valve; exceeded iterations raise :class:`EvaluationError`.
    """
    program.validate()
    statistics = EvaluationStatistics()
    working = database.copy()

    fact_rules, proper_rules = split_rules(program)
    for rule in fact_rules:
        is_new = working.add_fact(rule.head.predicate, rule.head.as_fact_tuple())
        statistics.record_firing()
        statistics.record_fact(rule.head.predicate, is_new)

    changed = True
    while changed:
        changed = False
        statistics.iterations += 1
        if max_iterations is not None and statistics.iterations > max_iterations:
            raise EvaluationError(f"naive evaluation exceeded {max_iterations} iterations")
        pending = set()
        for rule in proper_rules:
            for substitution in match_body(rule.body, working):
                statistics.record_firing()
                head = rule.head.substitute(substitution)
                values = head.as_fact_tuple()
                key = (head.predicate, values)
                is_new = not working.contains(head.predicate, values) and key not in pending
                statistics.record_fact(head.predicate, is_new)
                if is_new:
                    pending.add(key)
        for predicate, values in pending:
            if working.add_fact(predicate, values):
                changed = True

    idb_facts = working.restrict(program.idb_predicates())
    return EvaluationResult(program, database, idb_facts, statistics)
