"""Naive bottom-up evaluation: iterate a stratum's rules over the full model.

This is the textbook fixpoint computation of the minimum model ``M(B, H)``
of Section 2.1, kept deliberately wasteful *within* a recursive stratum: it
recomputes every rule over the whole model at every iteration, so it
derives the same facts over and over — the
:class:`~repro.datalog.engine.stats.EvaluationStatistics` duplicate counter
makes that waste visible, which is exactly the waste the paper's selection
propagation and the magic-set transformation are designed to avoid.

It does share the planner's structural optimisations with the semi-naive
engine (see :mod:`repro.datalog.engine.planner`): bodies are joined in the
planned order, and evaluation proceeds stratum by stratum so non-recursive
strata run in a single pass.  What stays naive is the differential part —
inside a recursive stratum there are no deltas, every round redoes all the
work.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.datalog.database import Database
from repro.datalog.engine.base import (
    EvaluationResult,
    fire_aggregate_rule,
    fire_rule,
    split_aggregate_rules,
    split_rules,
)
from repro.datalog.engine.planner import Planner, ProgramPlan, compile_program_plan
from repro.datalog.engine.stats import EvaluationStatistics
from repro.datalog.program import Program
from repro.errors import EvaluationError


def _evaluate(
    program: Program,
    database: Database,
    max_iterations: Optional[int] = None,
    planner: Optional[Planner] = None,
    plan: Optional[ProgramPlan] = None,
    compiled: bool = True,
    guard=None,
) -> EvaluationResult:
    """Compute the minimum model of *program* over *database* naively.

    Parameters
    ----------
    program:
        The Datalog program (must be safe).
    database:
        The EDB instance; it is not modified.
    max_iterations:
        Optional safety valve over the total rounds across all strata;
        exceeded iterations raise :class:`EvaluationError`.
    planner:
        Optional :class:`~repro.datalog.engine.planner.Planner` whose cache
        serves the compiled join/stratification plan.
    plan:
        Optional precompiled plan (the prepared-query path); used as-is.
    compiled:
        When true (the default), rules with a compiled slot kernel
        (:mod:`repro.datalog.engine.executor`) run through it; rules
        without one — and every rule when ``compiled=False``, which the
        kernel benchmarks use to time the baseline — run through the
        interpreted :func:`~repro.datalog.engine.base.match_body` path.
    guard:
        Optional armed :class:`~repro.datalog.guard.ExecutionGuard`,
        checkpointed at every round boundary; aborts leave *database*
        untouched (evaluation runs over a working copy).
    """
    program.validate()
    statistics = EvaluationStatistics()

    # Plan first (it reads the *input* database, not the working copy) so a
    # columnar-layout database can take the batch path before any tuple work.
    if plan is not None:
        statistics.record_plan(cache_hit=True)
    elif planner is not None:
        plan = planner.plan(program, database, statistics=statistics)
    else:
        plan = compile_program_plan(program, database)
        statistics.record_plan(cache_hit=False)

    if compiled and getattr(database, "layout", "tuple") == "columnar":
        from repro.datalog.columnar.batch import evaluate_naive, plan_supported

        if plan_supported(plan):
            return evaluate_naive(
                program, database, plan, statistics, max_iterations, guard=guard
            )

    working = database.copy()

    fact_rules, _ = split_rules(program)
    for rule in fact_rules:
        is_new = working.add_fact(rule.head.predicate, rule.head.as_fact_tuple())
        statistics.record_firing()
        statistics.record_fact(rule.head.predicate, is_new)

    for stratum in plan.strata:
        statistics.record_stratum()
        plain_rules, aggregate_rules = split_aggregate_rules(stratum.rules)
        first_round = True
        changed = True
        while changed:
            changed = False
            statistics.record_iteration(stratum.label)
            if guard is not None:
                guard.checkpoint(statistics)
            if max_iterations is not None and statistics.iterations > max_iterations:
                raise EvaluationError(
                    f"naive evaluation exceeded {max_iterations} iterations"
                )
            # predicate -> fresh head tuples produced this round.  The round
            # never mutates `working`, so its live relation view plus this
            # bucket answer every duplicate check by direct set membership.
            pending: Dict[str, Set[Tuple]] = {}
            for rule in plain_rules:
                bucket = pending.setdefault(rule.head.predicate, set())
                fire_rule(plan, rule, working, bucket, statistics, compiled)
            if first_round:
                # Aggregate rules read only closed lower strata — one firing
                # per stratum, on the first round, exactly as the semi-naive
                # engine does it (shared routine, identical statistics).
                for rule in aggregate_rules:
                    bucket = pending.setdefault(rule.head.predicate, set())
                    fire_aggregate_rule(plan, rule, working, bucket, statistics)
                first_round = False
            changed = working.add_relations(pending) > 0
            if not stratum.recursive:
                # Every body predicate is already at fixpoint: one pass suffices.
                break

    idb_facts = working.restrict(program.idb_predicates())
    return EvaluationResult(program, database, idb_facts, statistics)
