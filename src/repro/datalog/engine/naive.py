"""Naive bottom-up evaluation: iterate a stratum's rules over the full model.

This is the textbook fixpoint computation of the minimum model ``M(B, H)``
of Section 2.1, kept deliberately wasteful *within* a recursive stratum: it
recomputes every rule over the whole model at every iteration, so it
derives the same facts over and over — the
:class:`~repro.datalog.engine.stats.EvaluationStatistics` duplicate counter
makes that waste visible, which is exactly the waste the paper's selection
propagation and the magic-set transformation are designed to avoid.

It does share the planner's structural optimisations with the semi-naive
engine (see :mod:`repro.datalog.engine.planner`): bodies are joined in the
planned order, and evaluation proceeds stratum by stratum so non-recursive
strata run in a single pass.  What stays naive is the differential part —
inside a recursive stratum there are no deltas, every round redoes all the
work.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.datalog.database import Database
from repro.datalog.engine.base import (
    EvaluationResult,
    fire_aggregate_rule,
    fire_rule,
    split_aggregate_rules,
    split_rules,
)
from repro.datalog.engine.parallel import evaluate_strata, resolve_workers
from repro.datalog.engine.planner import Planner, ProgramPlan, compile_program_plan
from repro.datalog.engine.stats import EvaluationStatistics
from repro.datalog.program import Program
from repro.errors import EvaluationError


def _run_stratum(plan, stratum, working, statistics, check_budget, compiled, collect=None):
    """One stratum's naive fixpoint over *working* (serial core).

    With ``collect`` supplied (the depth-concurrent path, where *working*
    is a private overlay), every derived tuple is also recorded per
    predicate so the driver can fold the overlay's additions back into
    the shared working set.
    """
    statistics.record_stratum()
    plain_rules, aggregate_rules = split_aggregate_rules(stratum.rules)
    first_round = True
    changed = True
    while changed:
        changed = False
        statistics.record_iteration(stratum.label)
        check_budget()
        # predicate -> fresh head tuples produced this round.  The round
        # never mutates `working`, so its live relation view plus this
        # bucket answer every duplicate check by direct set membership.
        pending: Dict[str, Set[Tuple]] = {}
        for rule in plain_rules:
            bucket = pending.setdefault(rule.head.predicate, set())
            fire_rule(plan, rule, working, bucket, statistics, compiled)
        if first_round:
            # Aggregate rules read only closed lower strata — one firing
            # per stratum, on the first round, exactly as the semi-naive
            # engine does it (shared routine, identical statistics).
            for rule in aggregate_rules:
                bucket = pending.setdefault(rule.head.predicate, set())
                fire_aggregate_rule(plan, rule, working, bucket, statistics)
            first_round = False
        changed = working.add_relations(pending) > 0
        if collect is not None:
            for name, bucket in pending.items():
                if bucket:
                    collect.setdefault(name, set()).update(bucket)
        if not stratum.recursive:
            # Every body predicate is already at fixpoint: one pass suffices.
            break


def _evaluate(
    program: Program,
    database: Database,
    max_iterations: Optional[int] = None,
    planner: Optional[Planner] = None,
    plan: Optional[ProgramPlan] = None,
    compiled: bool = True,
    guard=None,
    workers: Optional[int] = None,
) -> EvaluationResult:
    """Compute the minimum model of *program* over *database* naively.

    Parameters
    ----------
    program:
        The Datalog program (must be safe).
    database:
        The EDB instance; it is not modified.
    max_iterations:
        Optional safety valve over the total rounds across all strata;
        exceeded iterations raise :class:`EvaluationError`.
    planner:
        Optional :class:`~repro.datalog.engine.planner.Planner` whose cache
        serves the compiled join/stratification plan.
    plan:
        Optional precompiled plan (the prepared-query path); used as-is.
    compiled:
        When true (the default), rules with a compiled slot kernel
        (:mod:`repro.datalog.engine.executor`) run through it; rules
        without one — and every rule when ``compiled=False``, which the
        kernel benchmarks use to time the baseline — run through the
        interpreted :func:`~repro.datalog.engine.base.match_body` path.
    guard:
        Optional armed :class:`~repro.datalog.guard.ExecutionGuard`,
        checkpointed at every round boundary; aborts leave *database*
        untouched (evaluation runs over a working copy).
    workers:
        Optional parallelism degree (> 1 runs same-depth strata on
        concurrent threads; see :mod:`repro.datalog.engine.parallel`).
        The naive engine has no deltas to shard, so the columnar lane
        stays serial at any worker count; results and statistics are
        identical to the serial run regardless.
    """
    program.validate()
    workers_n = resolve_workers(workers)
    statistics = EvaluationStatistics()

    # Plan first (it reads the *input* database, not the working copy) so a
    # columnar-layout database can take the batch path before any tuple work.
    if plan is not None:
        statistics.record_plan(cache_hit=True)
    elif planner is not None:
        plan = planner.plan(program, database, statistics=statistics)
    else:
        plan = compile_program_plan(program, database)
        statistics.record_plan(cache_hit=False)

    if compiled and getattr(database, "layout", "tuple") == "columnar":
        from repro.datalog.columnar.batch import evaluate_naive, plan_supported

        if plan_supported(plan):
            return evaluate_naive(
                program, database, plan, statistics, max_iterations,
                guard=guard, workers=workers_n,
            )

    working = database.copy()

    fact_rules, _ = split_rules(program)
    for rule in fact_rules:
        is_new = working.add_fact(rule.head.predicate, rule.head.as_fact_tuple())
        statistics.record_firing()
        statistics.record_fact(rule.head.predicate, is_new)

    def check_budget() -> None:
        if guard is not None:
            guard.checkpoint(statistics)
        if max_iterations is not None and statistics.iterations > max_iterations:
            raise EvaluationError(
                f"naive evaluation exceeded {max_iterations} iterations"
            )

    def run_stratum(stratum, target, stats, check, collect):
        _run_stratum(plan, stratum, target, stats, check, compiled, collect)

    evaluate_strata(
        plan, working, statistics, run_stratum, check_budget,
        guard=guard, max_iterations=max_iterations, workers=workers_n,
        error_label="naive",
    )

    idb_facts = working.restrict(program.idb_predicates())
    return EvaluationResult(program, database, idb_facts, statistics)
