"""Evaluation engines for Datalog programs, behind one registry.

The paper (conf_pods_BeeriKBR87) is a comparison of evaluation strategies
for a selection query, and this package mirrors that: every strategy is an
:class:`~repro.datalog.engine.registry.Engine` — an object with a ``name``
and an ``evaluate(program, database, *, max_iterations=None)`` method
returning an :class:`EvaluationResult` — registered under a stable name.

The supported workflow::

    from repro.datalog.engine import available_engines, get_engine

    available_engines()                  # ('magic', 'naive', 'seminaive', 'topdown')
    result = get_engine("topdown").evaluate(program, database)
    result.answers()                     # the goal's selected tuples

or, one level up, through the :class:`~repro.datalog.session.QuerySession`
facade, which also composes program transforms::

    from repro.datalog import QuerySession

    QuerySession(program, database).evaluate(engine="seminaive").answers()

Custom strategies join via :func:`register_engine`; the bundled ones are

* ``naive`` — full-model fixpoint iteration;
* ``seminaive`` — differential fixpoint;
* ``topdown`` — memoizing top-down resolution (:class:`TopDownEvaluator`);
* ``magic`` — generalized magic-set rewrite, then semi-naive bottom-up.

The registry (or a session) is the only entry point: the legacy
``evaluate_naive`` / ``evaluate_seminaive`` / ``evaluate_topdown`` free
functions and the ``RelationIndex`` shim warned as deprecated for three
releases and have been removed.
"""

from repro.datalog.engine.base import EvaluationResult, select_answers
from repro.datalog.engine.derivation import DerivationAnalyzer, DerivationTree
from repro.datalog.engine.executor import RuleKernel, StepKernel, compile_rule_kernel
from repro.datalog.engine.planner import (
    JoinPlan,
    Planner,
    ProgramPlan,
    Stratum,
    compile_program_plan,
)
from repro.datalog.engine.registry import (
    Engine,
    EngineNotApplicableError,
    EngineNotFoundError,
    FunctionEngine,
    TransformedEngine,
    available_engines,
    engine_descriptions,
    get_engine,
    register_engine,
    unregister_engine,
)
from repro.datalog.engine.stats import EvaluationStatistics
from repro.datalog.engine.topdown import TopDownEvaluator

__all__ = [
    "DerivationAnalyzer",
    "DerivationTree",
    "Engine",
    "EngineNotApplicableError",
    "EngineNotFoundError",
    "EvaluationResult",
    "EvaluationStatistics",
    "FunctionEngine",
    "JoinPlan",
    "Planner",
    "ProgramPlan",
    "RuleKernel",
    "StepKernel",
    "Stratum",
    "TopDownEvaluator",
    "TransformedEngine",
    "available_engines",
    "compile_program_plan",
    "compile_rule_kernel",
    "engine_descriptions",
    "get_engine",
    "register_engine",
    "select_answers",
    "unregister_engine",
]
