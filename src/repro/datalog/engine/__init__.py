"""Evaluation engines for Datalog programs."""

from repro.datalog.engine.base import EvaluationResult, select_answers
from repro.datalog.engine.derivation import DerivationAnalyzer, DerivationTree
from repro.datalog.engine.naive import evaluate_naive
from repro.datalog.engine.seminaive import evaluate_seminaive
from repro.datalog.engine.stats import EvaluationStatistics
from repro.datalog.engine.topdown import TopDownEvaluator, evaluate_topdown

__all__ = [
    "DerivationAnalyzer",
    "DerivationTree",
    "EvaluationResult",
    "EvaluationStatistics",
    "TopDownEvaluator",
    "evaluate_naive",
    "evaluate_seminaive",
    "evaluate_topdown",
    "select_answers",
]
