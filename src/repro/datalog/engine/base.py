"""Shared machinery for the bottom-up evaluation engines.

This module provides:

* :class:`EvaluationResult` — the minimum model restricted to IDB predicates,
  the full model, the goal answers, and the evaluation statistics;
* body matching (:func:`match_body`) against the database's persistent hash
  indexes (:meth:`repro.datalog.database.Database.probe`), so the engines stay
  far from quadratic behaviour on the benchmark workloads without rebuilding
  indexes at every fixpoint iteration;
* the shared per-rule evaluators :func:`fire_rule` / :func:`fire_rule_delta`,
  which dispatch each rule to its compiled slot kernel
  (:mod:`repro.datalog.engine.executor`) or to the interpreted
  :func:`match_body` fallback, with identical duplicate accounting on both
  paths;
* :func:`select_answers` — the selection described by the goal atom
  (Section 2.1: the output is obtained by performing the selections described
  by the goal on the interpretation of its predicate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.datalog.atoms import Atom, NegatedAtom
from repro.datalog.database import Database
from repro.datalog.engine.stats import EvaluationStatistics
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Aggregate, Constant, Parameter, Variable
from repro.datalog.unify import Substitution, match_atom
from repro.errors import EvaluationError


def candidate_tuples(atom: Atom, index, substitution: Substitution) -> Iterable[Tuple]:
    """Tuples worth matching against *atom* given the bindings accumulated so far.

    *index* is anything exposing the :class:`Database` probe interface —
    normally the database itself.
    """
    best: Optional[Tuple[int, object]] = None
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            best = (position, term.value)
            break
        bound = substitution.get(term)
        if isinstance(bound, Constant):
            best = (position, bound.value)
            break
    if best is None:
        return index.relation(atom.predicate)
    position, value = best
    return index.probe(atom.predicate, position, value)


def match_body(
    body: Tuple[Atom, ...],
    index,
    initial: Optional[Substitution] = None,
    delta_position: Optional[int] = None,
    delta_index=None,
    order: Optional[Sequence[int]] = None,
    sources: Optional[Sequence] = None,
    positive_positions: Optional[frozenset] = None,
) -> Iterator[Substitution]:
    """Enumerate substitutions that satisfy *body* against the indexed database.

    *index* (and *delta_index*) are databases — or any object exposing
    ``relation``/``probe``.  When ``delta_position`` is given, the atom at
    that position is matched against ``delta_index`` (the per-iteration
    delta) instead of the full database — the standard semi-naive
    specialisation.  *sources*, when given, generalises that to a fully
    per-position assignment: one ``relation``/``probe`` object per original
    body position (*index*/``delta_*`` are then ignored) — incremental
    counting maintenance joins three states (delta / new / old) in one body
    this way.

    *order*, when given, lists original body positions in the sequence the
    join should execute them (a :class:`~repro.datalog.engine.planner.JoinPlan`
    order).  ``delta_position`` always refers to the *original* body
    position, whatever the execution order.  Reordering never changes the
    set of substitutions produced — conjunction is commutative — only the
    work done to enumerate them.

    A :class:`~repro.datalog.atoms.NegatedAtom` is checked as an anti-join:
    once its variables are bound, the step passes iff the ground tuple is
    *absent* from its source (the complement of a relation closed in a
    lower stratum).  Without an explicit *order*, negated literals are
    deferred behind the positive atoms so safety guarantees they run fully
    bound.  ``positive_positions`` (and the delta position) name original
    body positions matched positively even when negated — incremental
    maintenance enumerates signed deltas *at* negated positions that way.
    """
    if order is not None:
        positions = tuple(order)
    else:
        positions = tuple(
            position
            for position, atom in enumerate(body)
            if not isinstance(atom, NegatedAtom)
        ) + tuple(
            position
            for position, atom in enumerate(body)
            if isinstance(atom, NegatedAtom)
        )
    if sources is not None:
        sequence = tuple((position, body[position], sources[position]) for position in positions)
    else:
        sequence = tuple(
            (
                position,
                body[position],
                delta_index
                if (delta_index is not None and position == delta_position)
                else index,
            )
            for position in positions
        )

    def extend(step: int, substitution: Substitution) -> Iterator[Substitution]:
        if step == len(sequence):
            yield substitution
            return
        position, atom, source = sequence[step]
        if isinstance(atom, NegatedAtom) and not (
            position == delta_position
            or (positive_positions is not None and position in positive_positions)
        ):
            values = []
            for term in atom.terms:
                if isinstance(term, Constant):
                    values.append(term.value)
                else:
                    bound = substitution.get(term)
                    if not isinstance(bound, Constant):
                        raise EvaluationError(
                            f"negated literal {atom} reached with {term} unbound; "
                            "the join order must bind every negated variable first"
                        )
                    values.append(bound.value)
            if not source.contains(atom.predicate, tuple(values)):
                yield from extend(step + 1, substitution)
            return
        for values in candidate_tuples(atom, source, substitution):
            extended = match_atom(atom, values, substitution)
            if extended is not None:
                yield from extend(step + 1, extended)

    yield from extend(0, dict(initial) if initial else {})


def fire_rule(plan, rule: Rule, working, bucket, statistics, compiled: bool = True) -> None:
    """Run one rule over the full model, adding fresh head tuples to *bucket*.

    The single rule evaluator shared by both bottom-up engines' full-model
    rounds: the compiled slot kernel when the plan has one (and *compiled*
    is set), the interpreted :func:`match_body` path otherwise.  The caller
    must not mutate *working* while a round is firing (both engines stage
    additions in buckets) — that is what makes deduping against the live
    :meth:`~repro.datalog.database.Database.relation_view` sound, and it
    must hold identically on both paths so they produce the same statistics.
    """
    predicate = rule.head.predicate
    kernel = plan.kernel(rule) if compiled else None
    if kernel is not None:
        before = len(bucket)
        sink, firings = _dedup_sink(working.relation_view(predicate), bucket)
        kernel.execute_static(working, sink)
        statistics.record_batch(predicate, firings(), len(bucket) - before)
    else:
        join_plan = plan.join_plan(rule)
        for substitution in match_body(rule.body, working, order=join_plan.order):
            statistics.record_firing()
            values = join_plan.head_values(substitution)
            is_new = not working.contains(predicate, values) and values not in bucket
            statistics.record_fact(predicate, is_new)
            if is_new:
                bucket.add(values)


def _dedup_sink(existing, bucket):
    """An emit callback filtering kernel firings straight into *bucket*.

    Returns ``(sink, firings)``: the kernel streams every head tuple into
    ``sink`` (no intermediate list), and ``firings()`` reports how many
    arrived — the duplicate count the statistics need is the difference
    against the bucket's growth.
    """
    count = 0

    def sink(values):
        nonlocal count
        count += 1
        if values not in existing and values not in bucket:
            bucket.add(values)

    return sink, lambda: count


def fire_rule_delta(
    plan,
    rule: Rule,
    working,
    delta,
    delta_predicates,
    bucket,
    statistics,
    compiled: bool = True,
) -> None:
    """Run one rule's delta variants (the semi-naive round form of :func:`fire_rule`).

    Each body position whose predicate occurs in *delta_predicates* is
    matched against *delta* instead of the full model, via the compiled
    delta kernel or the interpreted variant order.
    """
    predicate = rule.head.predicate
    kernel = plan.kernel(rule) if compiled else None
    if kernel is not None:
        existing = working.relation_view(predicate)
        for position in kernel.delta_positions:
            if rule.body[position].predicate not in delta_predicates:
                continue
            before = len(bucket)
            sink, firings = _dedup_sink(existing, bucket)
            kernel.execute_delta(position, working, delta, sink)
            statistics.record_batch(predicate, firings(), len(bucket) - before)
    else:
        join_plan = plan.join_plan(rule)
        for variant in join_plan.variants:
            if rule.body[variant.position].predicate not in delta_predicates:
                continue
            for substitution in match_body(
                rule.body,
                working,
                delta_position=variant.position,
                delta_index=delta,
                order=variant.order,
            ):
                statistics.record_firing()
                values = join_plan.head_values(substitution)
                is_new = not working.contains(predicate, values) and values not in bucket
                statistics.record_fact(predicate, is_new)
                if is_new:
                    bucket.add(values)


def is_aggregate_rule(rule: Rule) -> bool:
    """True if the rule's head contains an aggregate term."""
    return any(isinstance(term, Aggregate) for term in rule.head.terms)


def split_aggregate_rules(rules: Iterable[Rule]) -> Tuple[Tuple[Rule, ...], Tuple[Rule, ...]]:
    """Split rules into (plain, aggregate) — aggregates fire at stratum close."""
    plain = tuple(rule for rule in rules if not is_aggregate_rule(rule))
    aggregate = tuple(rule for rule in rules if is_aggregate_rule(rule))
    return plain, aggregate


def _apply_aggregate(op: str, values: FrozenSet) -> object:
    """Apply one aggregate operator to a group's distinct value set."""
    if op == "count":
        return len(values)
    try:
        if op == "sum":
            return sum(values)
        if op == "min":
            return min(values)
        return max(values)
    except TypeError as exc:
        raise EvaluationError(
            f"aggregate {op} over incompatible values "
            f"{sorted(values, key=repr)!r}: {exc}"
        ) from exc


def fire_aggregate_rule(plan, rule: Rule, working, bucket, statistics) -> None:
    """Run one aggregate rule against its fully-closed body relations.

    Stratification guarantees every body predicate is closed when this
    runs (aggregate-rule body edges are negative dependency edges), so the
    rule fires exactly once per stratum — on the stratum's first pass, in
    both bottom-up engines, via this one routine, which is what keeps the
    statistics identical across engines and kernel paths (aggregate rules
    never compile to kernels; the whole columnar plan falls back too).

    Grouping is by the non-aggregate head positions; the aggregate is
    computed over the *distinct* bindings of the aggregated variable per
    group, so the result depends only on the minimum model — not on join
    order, duplicates, or engine choice.
    """
    predicate = rule.head.predicate
    join_plan = plan.join_plan(rule)
    agg_position = next(
        position
        for position, term in enumerate(rule.head.terms)
        if isinstance(term, Aggregate)
    )
    aggregate: Aggregate = rule.head.terms[agg_position]
    key_spec = tuple(
        (term, None) if isinstance(term, Variable) else (None, getattr(term, "value", None))
        for position, term in enumerate(rule.head.terms)
        if position != agg_position
    )
    groups: Dict[Tuple, set] = {}
    for substitution in match_body(rule.body, working, order=join_plan.order):
        statistics.record_firing()
        key = tuple(
            substitution[variable].value if variable is not None else constant
            for variable, constant in key_spec
        )
        groups.setdefault(key, set()).add(substitution[aggregate.variable].value)
    for key, group_values in groups.items():
        result = _apply_aggregate(aggregate.op, group_values)
        values = key[:agg_position] + (result,) + key[agg_position:]
        is_new = not working.contains(predicate, values) and values not in bucket
        statistics.record_fact(predicate, is_new)
        if is_new:
            bucket.add(values)


def select_answers(goal: Atom, tuples: Iterable[Tuple]) -> FrozenSet[Tuple]:
    """Apply the selection described by *goal* to the tuples of its predicate.

    The output arity equals the number of distinct variables in the goal
    (Section 2.1); constants filter, repeated variables force equality, and
    a goal with no variables denotes a boolean query whose positive answer
    is the set containing the empty tuple.
    """
    # Compile the goal's selection once: constant filters, repeated-variable
    # equality pairs, and projection positions are all fixed by the goal, so
    # the per-tuple loop below is pure tuple indexing — no bindings dict.
    positions: List[int] = []
    seen: Dict[Variable, int] = {}
    constant_checks: List[Tuple[int, object]] = []
    equality_checks: List[Tuple[int, int]] = []
    for position, term in enumerate(goal.terms):
        if isinstance(term, Parameter):
            raise EvaluationError(
                f"goal {goal} has unbound parameter ${term.name}; bind it first "
                "(PreparedQuery.bind / DatalogService.execute)"
            )
        if isinstance(term, Constant):
            constant_checks.append((position, term.value))
        elif term in seen:
            equality_checks.append((position, seen[term]))
        else:
            seen[term] = position
            positions.append(position)

    arity = len(goal.terms)
    answers = set()
    for values in tuples:
        if len(values) != arity:
            continue
        ok = True
        for position, expected in constant_checks:
            if values[position] != expected:
                ok = False
                break
        if ok:
            for position, first in equality_checks:
                if values[position] != values[first]:
                    ok = False
                    break
        if ok:
            answers.add(tuple(values[p] for p in positions))
    return frozenset(answers)


@dataclass
class EvaluationResult:
    """Outcome of evaluating a program over a database."""

    program: Program
    input_database: Database
    idb_facts: Database
    statistics: EvaluationStatistics

    def full_model(self) -> Database:
        """The minimum model ``M(B, H)``: input facts plus derived facts."""
        model = self.input_database.copy()
        model.update(self.idb_facts)
        return model

    def relation(self, predicate: str) -> FrozenSet[Tuple]:
        """The derived relation for an IDB predicate."""
        return self.idb_facts.relation(predicate)

    def answers(self, goal: Optional[Atom] = None) -> FrozenSet[Tuple]:
        """The answers to the goal (defaults to the program's goal)."""
        goal = goal if goal is not None else self.program.goal
        if goal is None:
            raise ValueError("no goal supplied and the program has none")
        relation = self.idb_facts.relation(goal.predicate)
        if not relation and goal.predicate in self.input_database.predicates():
            relation = self.input_database.relation(goal.predicate)
        return select_answers(goal, relation)

    def boolean_answer(self, goal: Optional[Atom] = None) -> bool:
        """For goals without variables: whether the query is true."""
        return bool(self.answers(goal))


def split_rules(program: Program) -> Tuple[Tuple[Rule, ...], Tuple[Rule, ...]]:
    """Split a program's rules into ground facts and proper rules.

    Ground fact rules (empty body, ground head) are loaded directly into the
    database before fixpoint iteration begins; rules with empty bodies and
    variables in the head are rejected by safety checking earlier.
    """
    facts = tuple(rule for rule in program.rules if rule.is_fact())
    proper = tuple(rule for rule in program.rules if not rule.is_fact())
    return facts, proper
