"""The engine protocol and registry: one front door for every evaluator.

The paper compares evaluation strategies for the same selection query —
naive and semi-naive bottom-up, magic-transformed bottom-up, and memoing
top-down.  This module makes each strategy a first-class :class:`Engine`
that can be looked up by name, so the CLI, the :class:`QuerySession`
facade, and the benchmarks all dispatch through one interface::

    from repro.datalog.engine import get_engine

    result = get_engine("seminaive").evaluate(program, database)
    answers = result.answers()

Engines registered by default:

======================  =====================================================
``naive``               textbook full-model fixpoint iteration
``seminaive``           differential fixpoint with per-iteration deltas
``topdown``             memoizing (tabled) top-down resolution
``magic``               generalized magic-set rewrite, then semi-naive
======================  =====================================================

Third-party strategies plug in via :func:`register_engine`; anything with a
``name`` and an ``evaluate(program, database, *, max_iterations=None)``
returning an :class:`~repro.datalog.engine.base.EvaluationResult` conforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Protocol, Tuple, runtime_checkable

from repro.datalog.database import Database
from repro.datalog.engine.base import EvaluationResult
from repro.datalog.program import Program
from repro.errors import (
    EngineNotApplicableError,
    EngineNotFoundError,
    EvaluationError,
)

__all__ = [
    "Engine",
    "EngineNotApplicableError",
    "EngineNotFoundError",
    "FunctionEngine",
    "TransformedEngine",
    "available_engines",
    "engine_descriptions",
    "get_engine",
    "register_engine",
    "unregister_engine",
]


@runtime_checkable
class Engine(Protocol):
    """What an evaluation strategy must provide to join the registry.

    Engines that can exploit a shared join/stratification plan cache
    additionally expose a truthy ``supports_planner`` attribute and accept a
    ``planner=`` keyword (a :class:`~repro.datalog.engine.planner.Planner`)
    in ``evaluate``; callers such as :class:`~repro.datalog.session.QuerySession`
    only pass one when the engine advertises support, so plain engines need
    not know planning exists.
    """

    name: str

    def evaluate(
        self,
        program: Program,
        database: Database,
        *,
        max_iterations: Optional[int] = None,
    ) -> EvaluationResult:
        """Answer the program's goal over *database*; never mutates the input."""
        ...  # pragma: no cover


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Engine] = {}


def register_engine(engine: Engine, *, replace: bool = False) -> Engine:
    """Add *engine* to the registry under ``engine.name``.

    Registering a second engine under an existing name requires
    ``replace=True`` — silent shadowing hides configuration mistakes.
    Returns the engine so the call can be used as a decorator-ish one-liner.
    """
    name = engine.name
    if not replace and name in _REGISTRY:
        raise ValueError(f"engine {name!r} is already registered (pass replace=True)")
    _REGISTRY[name] = engine
    return engine


def unregister_engine(name: str) -> None:
    """Remove an engine from the registry (no error if absent)."""
    _REGISTRY.pop(name, None)


def get_engine(name: str) -> Engine:
    """Look up a registered engine by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise EngineNotFoundError(
            f"unknown engine {name!r}; registered engines: {known}"
        ) from None


def available_engines() -> Tuple[str, ...]:
    """Names of all registered engines, sorted."""
    return tuple(sorted(_REGISTRY))


def engine_descriptions() -> Dict[str, str]:
    """Mapping from engine name to its one-line description (for CLI listings)."""
    return {
        name: (getattr(engine, "description", "") or "").strip()
        for name, engine in sorted(_REGISTRY.items())
    }


# ----------------------------------------------------------------------
# Built-in engines
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FunctionEngine:
    """Adapter turning an ``evaluate(program, database, max_iterations)`` function into an Engine.

    ``supports_planner`` marks functions that also accept ``planner=`` and
    ``plan=`` keywords (the bottom-up engines); a planner passed to an
    engine that does not is simply ignored — it is a performance hint,
    never semantics.  A precompiled ``plan`` is different: it *is*
    semantics (it carries the strata the engine executes), so passing one
    to an engine that cannot honour it raises.

    ``supports_compiled`` marks functions with the compiled-kernel toggle
    (a ``compiled=`` keyword): the public way to run the interpreted
    ``match_body`` baseline is ``get_engine("seminaive").evaluate(...,
    compiled=False)``.  Asking a toggle-less engine for it raises rather
    than silently timing the wrong thing.

    ``supports_guard`` marks functions that accept a ``guard=`` keyword (an
    armed :class:`~repro.datalog.guard.ExecutionGuard`) and call its
    checkpoints cooperatively.  Like ``max_iterations``, a guard is a safety
    valve: passing one to an engine that would ignore it raises instead of
    silently running unbounded.

    ``supports_workers`` marks functions that accept a ``workers=`` keyword
    (the parallel evaluation layer: depth-concurrent strata and sharded
    columnar deltas).  Requesting ``workers`` from an engine without the
    layer raises rather than silently running serial — the caller asked
    for a scaling behaviour, not a hint.
    """

    name: str
    description: str
    function: Callable[..., EvaluationResult]
    supports_max_iterations: bool = True
    supports_planner: bool = False
    supports_compiled: bool = False
    supports_guard: bool = False
    supports_workers: bool = False

    def evaluate(
        self,
        program: Program,
        database: Database,
        *,
        max_iterations: Optional[int] = None,
        planner=None,
        plan=None,
        compiled: Optional[bool] = None,
        guard=None,
        workers: Optional[int] = None,
    ) -> EvaluationResult:
        kwargs = {}
        if self.supports_planner and planner is not None:
            kwargs["planner"] = planner
        if plan is not None:
            if not self.supports_planner:
                raise EvaluationError(
                    f"engine {self.name!r} cannot execute a precompiled plan"
                )
            kwargs["plan"] = plan
        if compiled is not None:
            if not self.supports_compiled:
                raise EvaluationError(
                    f"engine {self.name!r} has no compiled/interpreted toggle"
                )
            kwargs["compiled"] = compiled
        if guard is not None:
            if not self.supports_guard:
                # Silently dropping a guard would run the query unbounded.
                raise EvaluationError(
                    f"engine {self.name!r} does not support cooperative guards"
                )
            kwargs["guard"] = guard
        if workers is not None:
            if not self.supports_workers:
                # Silently running serial would misreport the scaling the
                # caller explicitly asked for.
                raise EvaluationError(
                    f"engine {self.name!r} does not support parallel workers"
                )
            kwargs["workers"] = workers
        if self.supports_max_iterations:
            return self.function(program, database, max_iterations=max_iterations, **kwargs)
        if max_iterations is not None:
            # Silently running unbounded would defeat the caller's safety valve.
            raise EvaluationError(
                f"engine {self.name!r} does not support max_iterations"
            )
        return self.function(program, database, **kwargs)


@dataclass(frozen=True)
class TransformedEngine:
    """An engine that rewrites the program first, then delegates to another engine.

    The result's statistics are those of the delegate run over the rewritten
    program; the rewritten program itself is what the result reports, which
    keeps the per-predicate fact counts honest (magic predicates show up as
    the extra work they are).
    """

    name: str
    description: str
    transform: Callable[[Program], Program]
    delegate: str = "seminaive"

    @property
    def supports_planner(self) -> bool:
        """Forward a planner exactly when the delegate engine can use one."""
        return bool(getattr(get_engine(self.delegate), "supports_planner", False))

    @property
    def supports_guard(self) -> bool:
        """Forward a guard exactly when the delegate engine honours one."""
        return bool(getattr(get_engine(self.delegate), "supports_guard", False))

    @property
    def supports_workers(self) -> bool:
        """Forward a worker count exactly when the delegate engine scales."""
        return bool(getattr(get_engine(self.delegate), "supports_workers", False))

    def evaluate(
        self,
        program: Program,
        database: Database,
        *,
        max_iterations: Optional[int] = None,
        planner=None,
        plan=None,
        compiled: Optional[bool] = None,
        guard=None,
        workers: Optional[int] = None,
    ) -> EvaluationResult:
        from repro.errors import ValidationError

        if plan is not None:
            # A precompiled plan describes the *unrewritten* program; running
            # it against the rewrite's output would execute the wrong strata.
            raise EvaluationError(
                f"engine {self.name!r} rewrites the program per call and cannot "
                "execute a precompiled plan; prepare the query instead "
                "(QuerySession.prepare folds the rewrite into the pipeline)"
            )
        try:
            rewritten = self.transform(program)
        except ValidationError as error:
            raise EngineNotApplicableError(
                f"engine {self.name!r} cannot rewrite this program: {error}"
            ) from error
        delegate = get_engine(self.delegate)
        kwargs = {}
        if planner is not None and getattr(delegate, "supports_planner", False):
            kwargs["planner"] = planner
        if compiled is not None:
            # The delegate's own toggle check raises if it has none.
            kwargs["compiled"] = compiled
        if guard is not None:
            # The delegate's own support check raises if it ignores guards.
            kwargs["guard"] = guard
        if workers is not None:
            # Likewise: the delegate raises if it cannot scale.
            kwargs["workers"] = workers
        return delegate.evaluate(
            rewritten, database, max_iterations=max_iterations, **kwargs
        )


def _topdown(
    program: Program,
    database: Database,
    max_iterations: Optional[int] = None,
    guard=None,
) -> EvaluationResult:
    from repro.datalog.engine.topdown import _evaluate

    return _evaluate(program, database, max_iterations=max_iterations, guard=guard)


def _register_builtins() -> None:
    from repro.datalog.engine.naive import _evaluate as naive_evaluate
    from repro.datalog.engine.seminaive import _evaluate as seminaive_evaluate
    from repro.datalog.transforms.magic import magic_transform

    register_engine(
        FunctionEngine(
            "naive",
            "naive bottom-up: re-evaluate every rule over the full model until fixpoint"
            " (stratified, planned joins, compiled kernels)",
            naive_evaluate,
            supports_planner=True,
            supports_compiled=True,
            supports_guard=True,
            supports_workers=True,
        )
    )
    register_engine(
        FunctionEngine(
            "seminaive",
            "semi-naive bottom-up: differential fixpoint over per-iteration deltas"
            " (stratified, planned joins, compiled kernels)",
            seminaive_evaluate,
            supports_planner=True,
            supports_compiled=True,
            supports_guard=True,
            supports_workers=True,
        )
    )
    register_engine(
        FunctionEngine(
            "topdown",
            "memoizing top-down: tabled resolution exploring only goal-reachable subqueries",
            _topdown,
            supports_guard=True,
        )
    )
    register_engine(
        TransformedEngine(
            "magic",
            "generalized magic-set rewrite (requires a goal with a constant), then semi-naive",
            magic_transform,
        )
    )


_register_builtins()
