"""Semi-naive bottom-up evaluation with per-iteration deltas.

The standard differential fixpoint: a rule instantiation is only recomputed
in iteration ``i`` if at least one of its IDB body atoms matches a fact that
was new in iteration ``i - 1``.  This engine is the reference evaluator used
throughout the benchmarks; the naive engine exists to expose the cost of not
doing this, and the magic-set / monadic rewrites then reduce the work
further by not deriving irrelevant facts at all.
"""

from __future__ import annotations

from typing import Optional

from repro.datalog.database import Database
from repro.datalog.engine.base import (
    EvaluationResult,
    match_body,
    split_rules,
)
from repro.datalog.engine.stats import EvaluationStatistics
from repro.datalog.program import Program
from repro.errors import EvaluationError


def evaluate_seminaive(
    program: Program, database: Database, max_iterations: Optional[int] = None
) -> EvaluationResult:
    """Compute the minimum model of *program* over *database* semi-naively."""
    program.validate()
    statistics = EvaluationStatistics()
    idb_predicates = program.idb_predicates()

    working = database.copy()
    delta = Database()

    fact_rules, proper_rules = split_rules(program)
    for rule in fact_rules:
        values = rule.head.as_fact_tuple()
        statistics.record_firing()
        is_new = working.add_fact(rule.head.predicate, values)
        statistics.record_fact(rule.head.predicate, is_new)
        if is_new:
            delta.add_fact(rule.head.predicate, values)

    # Initial round: every rule evaluated once over the EDB (and initial facts).
    statistics.iterations += 1
    next_delta = Database()
    for rule in proper_rules:
        for substitution in match_body(rule.body, working):
            statistics.record_firing()
            head = rule.head.substitute(substitution)
            values = head.as_fact_tuple()
            is_new = not working.contains(head.predicate, values) and not next_delta.contains(
                head.predicate, values
            )
            statistics.record_fact(head.predicate, is_new)
            if is_new:
                next_delta.add_fact(head.predicate, values)
    delta = next_delta

    while delta.fact_count():
        working.update(delta)
        statistics.iterations += 1
        if max_iterations is not None and statistics.iterations > max_iterations:
            raise EvaluationError(f"semi-naive evaluation exceeded {max_iterations} iterations")
        next_delta = Database()
        delta_predicates = delta.predicates()
        for rule in proper_rules:
            positions = [
                position
                for position, atom in enumerate(rule.body)
                if atom.predicate in idb_predicates and atom.predicate in delta_predicates
            ]
            for position in positions:
                for substitution in match_body(
                    rule.body, working, delta_position=position, delta_index=delta
                ):
                    statistics.record_firing()
                    head = rule.head.substitute(substitution)
                    values = head.as_fact_tuple()
                    is_new = not working.contains(
                        head.predicate, values
                    ) and not next_delta.contains(head.predicate, values)
                    statistics.record_fact(head.predicate, is_new)
                    if is_new:
                        next_delta.add_fact(head.predicate, values)
        delta = next_delta

    idb_facts = working.restrict(idb_predicates)
    return EvaluationResult(program, database, idb_facts, statistics)
