"""Semi-naive bottom-up evaluation: stratified, planned, with per-iteration deltas.

The standard differential fixpoint: a rule instantiation is only recomputed
in iteration ``i`` if at least one of its recursive body atoms matches a
fact that was new in iteration ``i - 1``.  This engine is the reference
evaluator used throughout the benchmarks; the naive engine exists to expose
the cost of not doing this, and the magic-set / monadic rewrites then
reduce the work further by not deriving irrelevant facts at all.

Two evaluation-level optimisations come from
:mod:`repro.datalog.engine.planner`:

* the fixpoint is **stratified** by strongly connected components of the
  predicate dependency graph — each stratum runs to its own fixpoint with
  all lower strata complete, so non-recursive strata take exactly one pass
  and long dependency chains never rescan rules that cannot fire again;
* each rule body is joined in the **planned order** — probeable atoms
  first, smallest relations next — and each recursive body atom has a
  delta-specialised variant that reads the (small) delta first.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.datalog.database import Database
from repro.datalog.engine.base import (
    EvaluationResult,
    fire_aggregate_rule,
    fire_rule,
    fire_rule_delta,
    split_aggregate_rules,
    split_rules,
)
from repro.datalog.engine.parallel import evaluate_strata, resolve_workers
from repro.datalog.engine.planner import Planner, ProgramPlan, compile_program_plan
from repro.datalog.engine.stats import EvaluationStatistics
from repro.datalog.program import Program
from repro.errors import EvaluationError


def _run_stratum(plan, stratum, working, statistics, check_budget, compiled, collect=None):
    """One stratum's semi-naive fixpoint over *working* (serial core).

    With ``collect`` supplied (the depth-concurrent path, where *working*
    is a private overlay), every derived tuple is also recorded per
    predicate so the driver can fold the overlay's additions back into
    the shared working set.
    """
    statistics.record_stratum()
    label = stratum.label

    # Initial round: every stratum rule once, over everything derived so
    # far (lower strata are complete, this stratum's relations may hold
    # facts loaded from fact rules).  Nothing mutates `working` within a
    # round, so its live relation view plus the per-predicate bucket
    # answer every duplicate check by direct set membership — no
    # contains() round-trips through tuple() coercion per firing, and no
    # per-round frozenset rebuild on deep recursions with small deltas.
    statistics.record_iteration(label)
    check_budget()
    plain_rules, aggregate_rules = split_aggregate_rules(stratum.rules)
    delta_sets: Dict[str, Set[Tuple]] = {}
    for rule in plain_rules:
        bucket = delta_sets.setdefault(rule.head.predicate, set())
        fire_rule(plan, rule, working, bucket, statistics, compiled)
    # Aggregate rules fire exactly once, here: stratification forces
    # their whole bodies into strictly lower (closed) strata, so the
    # stratum's own fixpoint cannot change what they derive.
    for rule in aggregate_rules:
        bucket = delta_sets.setdefault(rule.head.predicate, set())
        fire_aggregate_rule(plan, rule, working, bucket, statistics)
    delta = Database.adopt({name: bucket for name, bucket in delta_sets.items() if bucket})
    working.update(delta)
    if collect is not None:
        for name, bucket in delta_sets.items():
            if bucket:
                collect.setdefault(name, set()).update(bucket)

    if not stratum.recursive:
        # No rule in this stratum can feed itself: one pass is the fixpoint.
        return

    while delta.fact_count():
        statistics.record_iteration(label)
        check_budget()
        next_sets: Dict[str, Set[Tuple]] = {}
        delta_predicates = delta.predicates()
        for rule in plain_rules:
            bucket = next_sets.setdefault(rule.head.predicate, set())
            fire_rule_delta(
                plan, rule, working, delta, delta_predicates, bucket, statistics, compiled
            )
        next_delta = Database.adopt(
            {name: bucket for name, bucket in next_sets.items() if bucket}
        )
        working.update(next_delta)
        if collect is not None:
            for name, bucket in next_sets.items():
                if bucket:
                    collect.setdefault(name, set()).update(bucket)
        delta = next_delta


def _evaluate(
    program: Program,
    database: Database,
    max_iterations: Optional[int] = None,
    planner: Optional[Planner] = None,
    plan: Optional[ProgramPlan] = None,
    compiled: bool = True,
    guard=None,
    workers: Optional[int] = None,
) -> EvaluationResult:
    """Compute the minimum model of *program* over *database* semi-naively.

    *planner*, when supplied (a :class:`~repro.datalog.engine.planner.Planner`,
    normally the :class:`~repro.datalog.session.QuerySession`'s), serves the
    compiled :class:`~repro.datalog.engine.planner.ProgramPlan` from its
    cache across repeated evaluations; otherwise the plan is compiled fresh.
    *plan*, when supplied (the prepared-query path), is used as-is — the
    caller guarantees it was compiled for this program's proper rules; the
    program may additionally carry ground fact rules (per-binding seeds),
    which are loaded before the fixpoint like any other facts.
    ``max_iterations`` bounds the *total* fixpoint rounds across all strata.

    *compiled* selects the rule evaluator: the default runs every rule that
    has a compiled slot kernel (:mod:`repro.datalog.engine.executor`)
    through it; rules without one — and all rules when ``compiled=False``,
    the baseline the kernel benchmarks time against — run through the
    interpreted :func:`~repro.datalog.engine.base.match_body` path.

    *guard*, when supplied (an armed
    :class:`~repro.datalog.guard.ExecutionGuard`), is checkpointed at every
    fixpoint round boundary: a deadline, budget, or cancellation abort
    raises its typed error with the input database untouched (evaluation
    runs over a working copy).

    *workers*, when > 1, enables the parallel layer: same-depth strata run
    concurrently on threads (:mod:`repro.datalog.engine.parallel`), and on
    the columnar packed-bigint lane recursive rounds are process-sharded
    (:mod:`repro.datalog.columnar.shard`).  The model and statistics are
    identical to the serial run at any worker count.
    """
    program.validate()
    workers_n = resolve_workers(workers)
    statistics = EvaluationStatistics()
    idb_predicates = program.idb_predicates()

    # The plan resolves first (it reads the *input* database, never the
    # working copy, so hoisting it above fact loading changes nothing) so
    # that a columnar-layout database can route the whole evaluation
    # through the batch kernels before any tuple-side work happens.
    if plan is not None:
        statistics.record_plan(cache_hit=True)
    elif planner is not None:
        plan = planner.plan(program, database, statistics=statistics)
    else:
        plan = compile_program_plan(program, database)
        statistics.record_plan(cache_hit=False)

    if compiled and getattr(database, "layout", "tuple") == "columnar":
        from repro.datalog.columnar.batch import evaluate_seminaive, plan_supported

        if plan_supported(plan):
            return evaluate_seminaive(
                program, database, plan, statistics, max_iterations,
                guard=guard, workers=workers_n,
            )

    working = database.copy()

    fact_rules, _ = split_rules(program)
    for rule in fact_rules:
        values = rule.head.as_fact_tuple()
        statistics.record_firing()
        is_new = working.add_fact(rule.head.predicate, values)
        statistics.record_fact(rule.head.predicate, is_new)

    def check_budget() -> None:
        if guard is not None:
            guard.checkpoint(statistics)
        if max_iterations is not None and statistics.iterations > max_iterations:
            raise EvaluationError(
                f"semi-naive evaluation exceeded {max_iterations} iterations"
            )

    def run_stratum(stratum, target, stats, check, collect):
        _run_stratum(plan, stratum, target, stats, check, compiled, collect)

    evaluate_strata(
        plan, working, statistics, run_stratum, check_budget,
        guard=guard, max_iterations=max_iterations, workers=workers_n,
        error_label="semi-naive",
    )

    idb_facts = working.restrict(idb_predicates)
    return EvaluationResult(program, database, idb_facts, statistics)
