"""Evaluation statistics: the hardware-independent cost model used by all benchmarks.

The paper's motivation (and the performance study it cites) is about the
*amount of work* evaluation performs — how many rule instantiations fire and
how many facts are derived — not about wall-clock time on particular
hardware.  Every engine in :mod:`repro.datalog.engine` therefore reports an
:class:`EvaluationStatistics` object with those counts; benchmarks compare
the counts (shape) in addition to timing the runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class EvaluationStatistics:
    """Counters accumulated during one evaluation run."""

    iterations: int = 0
    rule_firings: int = 0
    facts_derived: int = 0
    duplicate_derivations: int = 0
    facts_per_predicate: Dict[str, int] = field(default_factory=dict)
    # stratified evaluation: how many SCC strata ran, and the fixpoint
    # rounds each needed (key = stratum label, i.e. its sorted predicates)
    strata: int = 0
    iterations_per_stratum: Dict[str, int] = field(default_factory=dict)
    # join planning: compiled fresh vs served from a Planner's cache
    plans_compiled: int = 0
    plan_cache_hits: int = 0

    def record_firing(self) -> None:
        """Count one successful body instantiation."""
        self.rule_firings += 1

    def record_iteration(self, stratum: str) -> None:
        """Count one fixpoint round, attributed to *stratum*."""
        self.iterations += 1
        self.iterations_per_stratum[stratum] = self.iterations_per_stratum.get(stratum, 0) + 1

    def record_stratum(self) -> None:
        """Count one SCC stratum whose fixpoint ran to completion."""
        self.strata += 1

    def record_plan(self, cache_hit: bool) -> None:
        """Count one program plan: compiled fresh, or reused from a cache."""
        if cache_hit:
            self.plan_cache_hits += 1
        else:
            self.plans_compiled += 1

    def record_batch(self, predicate: str, firings: int, new: int) -> None:
        """Count a whole kernel run at once: *firings* head productions, *new* fresh.

        Equivalent to ``record_firing()`` + ``record_fact(predicate, ...)``
        per production — the compiled engines accumulate plain integers in
        their inner loop and settle the counters here, once per rule run.
        """
        self.rule_firings += firings
        self.duplicate_derivations += firings - new
        if new:
            self.facts_derived += new
            self.facts_per_predicate[predicate] = (
                self.facts_per_predicate.get(predicate, 0) + new
            )

    def record_fact(self, predicate: str, is_new: bool) -> None:
        """Count one produced head fact; duplicates are tracked separately."""
        if is_new:
            self.facts_derived += 1
            self.facts_per_predicate[predicate] = self.facts_per_predicate.get(predicate, 0) + 1
        else:
            self.duplicate_derivations += 1

    def absorb(self, other: "EvaluationStatistics") -> None:
        """Fold *other* into this object in place.

        The parallel evaluators give each concurrent stratum its own
        statistics object and absorb them back in stratum-index order;
        because every counter is a sum and the per-predicate / per-stratum
        maps compare order-insensitively, the absorbed totals are identical
        to what the serial pass would have recorded.
        """
        self.iterations += other.iterations
        self.rule_firings += other.rule_firings
        self.facts_derived += other.facts_derived
        self.duplicate_derivations += other.duplicate_derivations
        self.strata += other.strata
        self.plans_compiled += other.plans_compiled
        self.plan_cache_hits += other.plan_cache_hits
        for predicate, count in other.facts_per_predicate.items():
            self.facts_per_predicate[predicate] = (
                self.facts_per_predicate.get(predicate, 0) + count
            )
        for stratum, count in other.iterations_per_stratum.items():
            self.iterations_per_stratum[stratum] = (
                self.iterations_per_stratum.get(stratum, 0) + count
            )

    def merge(self, other: "EvaluationStatistics") -> "EvaluationStatistics":
        """Combine two statistics objects (used when evaluation is staged)."""
        merged = EvaluationStatistics(
            iterations=self.iterations + other.iterations,
            rule_firings=self.rule_firings + other.rule_firings,
            facts_derived=self.facts_derived + other.facts_derived,
            duplicate_derivations=self.duplicate_derivations + other.duplicate_derivations,
            facts_per_predicate=dict(self.facts_per_predicate),
            strata=self.strata + other.strata,
            iterations_per_stratum=dict(self.iterations_per_stratum),
            plans_compiled=self.plans_compiled + other.plans_compiled,
            plan_cache_hits=self.plan_cache_hits + other.plan_cache_hits,
        )
        for predicate, count in other.facts_per_predicate.items():
            merged.facts_per_predicate[predicate] = (
                merged.facts_per_predicate.get(predicate, 0) + count
            )
        for stratum, count in other.iterations_per_stratum.items():
            merged.iterations_per_stratum[stratum] = (
                merged.iterations_per_stratum.get(stratum, 0) + count
            )
        return merged

    def as_dict(self) -> Dict[str, int]:
        """Flat summary used by benchmark reports."""
        return {
            "iterations": self.iterations,
            "rule_firings": self.rule_firings,
            "facts_derived": self.facts_derived,
            "duplicate_derivations": self.duplicate_derivations,
            "strata": self.strata,
            "plans_compiled": self.plans_compiled,
            "plan_cache_hits": self.plan_cache_hits,
        }

    def __str__(self) -> str:
        return (
            f"iterations={self.iterations} rule_firings={self.rule_firings} "
            f"facts_derived={self.facts_derived} duplicates={self.duplicate_derivations}"
        )
