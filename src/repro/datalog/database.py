"""Databases: finite structures interpreting the EDB predicates.

A database of arity ``(a1, ..., ak)`` is a vector of finite relations
(Section 2.1).  Here a :class:`Database` maps predicate names to sets of
tuples of plain Python values (the constants of the domain).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Set, Tuple

from repro.datalog.atoms import Atom, ground_atom


class Database:
    """A mutable finite structure: predicate name -> set of tuples."""

    def __init__(self, relations: Optional[Mapping[str, Iterable[Tuple]]] = None):
        self._relations: Dict[str, Set[Tuple]] = {}
        if relations:
            for name, tuples in relations.items():
                self._relations[name] = {tuple(t) for t in tuples}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_facts(cls, facts: Iterable[Atom]) -> "Database":
        """Build a database from ground atoms."""
        database = cls()
        for atom in facts:
            database.add_fact(atom.predicate, atom.as_fact_tuple())
        return database

    def copy(self) -> "Database":
        """Return a deep copy."""
        return Database({name: set(tuples) for name, tuples in self._relations.items()})

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_fact(self, predicate: str, values: Tuple) -> bool:
        """Add a tuple to a relation; return ``True`` if it was new."""
        relation = self._relations.setdefault(predicate, set())
        values = tuple(values)
        if values in relation:
            return False
        relation.add(values)
        return True

    def add_edge(self, predicate: str, source, target) -> bool:
        """Convenience for binary relations (labeled graph edges)."""
        return self.add_fact(predicate, (source, target))

    def update(self, other: "Database") -> None:
        """Add all facts of *other* to this database."""
        for name, tuples in other._relations.items():
            self._relations.setdefault(name, set()).update(tuples)

    def remove_relation(self, predicate: str) -> None:
        """Drop a relation entirely (no error if absent)."""
        self._relations.pop(predicate, None)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def relation(self, predicate: str) -> FrozenSet[Tuple]:
        """The set of tuples of a relation (empty if the relation is absent)."""
        return frozenset(self._relations.get(predicate, frozenset()))

    def relations(self) -> Dict[str, FrozenSet[Tuple]]:
        """All relations as an immutable snapshot."""
        return {name: frozenset(tuples) for name, tuples in self._relations.items()}

    def predicates(self) -> FrozenSet[str]:
        """Names of the non-empty relations."""
        return frozenset(name for name, tuples in self._relations.items() if tuples)

    def contains(self, predicate: str, values: Tuple) -> bool:
        """True if the given tuple belongs to the relation."""
        return tuple(values) in self._relations.get(predicate, ())

    def facts(self) -> Iterator[Atom]:
        """Iterate over all facts as ground atoms."""
        for name in sorted(self._relations):
            for values in sorted(self._relations[name], key=repr):
                yield ground_atom(name, values)

    def active_domain(self) -> FrozenSet:
        """All domain elements occurring in some tuple."""
        domain = set()
        for tuples in self._relations.values():
            for values in tuples:
                domain.update(values)
        return frozenset(domain)

    def fact_count(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(tuples) for tuples in self._relations.values())

    def restrict(self, predicates: Iterable[str]) -> "Database":
        """Return a database containing only the named relations."""
        names = set(predicates)
        return Database(
            {name: set(tuples) for name, tuples in self._relations.items() if name in names}
        )

    def rename(self, mapping: Mapping[str, str]) -> "Database":
        """Return a database with relations renamed according to *mapping*."""
        renamed = Database()
        for name, tuples in self._relations.items():
            new_name = mapping.get(name, name)
            for values in tuples:
                renamed.add_fact(new_name, values)
        return renamed

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        mine = {name: tuples for name, tuples in self._relations.items() if tuples}
        theirs = {name: tuples for name, tuples in other._relations.items() if tuples}
        return mine == theirs

    def __hash__(self):  # pragma: no cover - databases are mutable
        raise TypeError("Database objects are mutable and unhashable")

    def __contains__(self, fact: Atom) -> bool:
        return self.contains(fact.predicate, fact.as_fact_tuple())

    def __len__(self) -> int:
        return self.fact_count()

    def __repr__(self) -> str:
        counts = ", ".join(
            f"{name}:{len(tuples)}" for name, tuples in sorted(self._relations.items())
        )
        return f"Database({counts})"
