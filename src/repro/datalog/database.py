"""Databases: finite structures interpreting the EDB predicates.

A database of arity ``(a1, ..., ak)`` is a vector of finite relations
(Section 2.1).  Here a :class:`Database` maps predicate names to sets of
tuples of plain Python values (the constants of the domain).

Because the bottom-up engines probe the same relations thousands of times
per fixpoint iteration, the database maintains two acceleration structures
incrementally instead of letting every caller rebuild them:

* **cached snapshots** — :meth:`relation` returns a per-predicate
  ``frozenset`` that is cached until the relation mutates, so repeated
  full-relation scans during fixpoint iteration are O(1) instead of an
  O(n) copy per call;
* **persistent hash indexes** — :meth:`probe` answers "which tuples of
  ``p`` have value ``v`` at position ``i``" from a hash index that is built
  lazily on first use and then *maintained* by :meth:`add_fact` /
  :meth:`update`, so the indexes survive across fixpoint iterations rather
  than being rebuilt from scratch each round.
"""

from __future__ import annotations

import pickle
import struct
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.datalog.atoms import Atom, ground_atom

_EMPTY: Tuple = ()
_EMPTY_SET: FrozenSet[Tuple] = frozenset()


# ----------------------------------------------------------------------
# Compact value codec
#
# The durable server layer (repro.datalog.server) persists databases in
# snapshots and write batches in WAL records.  Both need a stable,
# self-describing byte encoding for the plain Python values that live in
# relations (and the JSON-ish structures around them).  The codec below is
# deliberately tiny: one tag byte per value, LEB128 varints for lengths and
# integers, and a pickle escape hatch for anything exotic so arbitrary
# hashable constants still round-trip.
#
# Trust boundary: ``pickle.loads`` on attacker-controlled bytes is code
# execution, and a CRC is integrity, not authentication.  Callers decoding
# bytes they did not just produce in-process — the server's WAL replay and
# snapshot load — pass ``allow_pickle=False``, which refuses both to emit
# and to decode the escape tag; the pickle path stays available (the
# default) for in-process round-trips of exotic constants.
# ----------------------------------------------------------------------
def _pack_varint(value: int, out: bytearray) -> None:
    """Append an unsigned LEB128 varint."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _unpack_varint(data: bytes, offset: int) -> Tuple[int, int]:
    """Read an unsigned LEB128 varint; returns (value, new offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise ValueError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def pack_value(obj, out: bytearray, *, allow_pickle: bool = True) -> None:
    """Append one value to *out*: tag byte + payload.

    Handles ``None``/``bool``/``int``/``float``/``str``/``bytes`` and
    ``tuple``/``list``/``dict`` containers; anything else is pickled under
    an escape tag (rejected with ``ValueError`` when ``allow_pickle`` is
    false).  Integers use zig-zag varints, so the small ints that dominate
    real EDBs cost two bytes.
    """
    if obj is None:
        out.append(ord("N"))
    elif obj is True:
        out.append(ord("T"))
    elif obj is False:
        out.append(ord("F"))
    elif type(obj) is int:
        out.append(ord("i"))
        zigzag = (obj << 1) if obj >= 0 else ((-obj << 1) - 1)
        _pack_varint(zigzag, out)
    elif type(obj) is float:
        out.append(ord("f"))
        out.extend(struct.pack(">d", obj))
    elif type(obj) is str:
        encoded = obj.encode("utf-8")
        out.append(ord("s"))
        _pack_varint(len(encoded), out)
        out.extend(encoded)
    elif type(obj) is bytes:
        out.append(ord("b"))
        _pack_varint(len(obj), out)
        out.extend(obj)
    elif type(obj) is tuple or type(obj) is list:
        out.append(ord("t") if type(obj) is tuple else ord("l"))
        _pack_varint(len(obj), out)
        for item in obj:
            pack_value(item, out, allow_pickle=allow_pickle)
    elif type(obj) is dict:
        out.append(ord("d"))
        _pack_varint(len(obj), out)
        for key, value in obj.items():
            pack_value(key, out, allow_pickle=allow_pickle)
            pack_value(value, out, allow_pickle=allow_pickle)
    else:
        if not allow_pickle:
            raise ValueError(
                f"cannot encode a {type(obj).__name__} value without the "
                "pickle escape hatch (allow_pickle=False); use only "
                "None/bool/int/float/str/bytes and tuple/list/dict"
            )
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        out.append(ord("P"))
        _pack_varint(len(payload), out)
        out.extend(payload)


def unpack_value(
    data: bytes, offset: int = 0, *, allow_pickle: bool = True
) -> Tuple[object, int]:
    """Decode one value; returns (value, new offset).  Raises ValueError on garbage.

    With ``allow_pickle=False`` the ``P`` escape tag is rejected instead of
    reaching ``pickle.loads`` — required when *data* comes from outside the
    process (see the trust-boundary note above).
    """
    if offset >= len(data):
        raise ValueError("truncated value")
    tag = data[offset]
    offset += 1
    if tag == ord("N"):
        return None, offset
    if tag == ord("T"):
        return True, offset
    if tag == ord("F"):
        return False, offset
    if tag == ord("i"):
        zigzag, offset = _unpack_varint(data, offset)
        return ((zigzag >> 1) if not zigzag & 1 else -((zigzag + 1) >> 1)), offset
    if tag == ord("f"):
        if offset + 8 > len(data):
            raise ValueError("truncated float")
        return struct.unpack(">d", data[offset : offset + 8])[0], offset + 8
    if tag in (ord("s"), ord("b"), ord("P")):
        length, offset = _unpack_varint(data, offset)
        if offset + length > len(data):
            raise ValueError("truncated payload")
        payload = data[offset : offset + length]
        offset += length
        if tag == ord("s"):
            return payload.decode("utf-8"), offset
        if tag == ord("b"):
            return bytes(payload), offset
        if not allow_pickle:
            raise ValueError(
                "refusing to unpickle an embedded payload (allow_pickle=False)"
            )
        return pickle.loads(payload), offset
    if tag in (ord("t"), ord("l")):
        count, offset = _unpack_varint(data, offset)
        items = []
        for _ in range(count):
            item, offset = unpack_value(data, offset, allow_pickle=allow_pickle)
            items.append(item)
        return (tuple(items) if tag == ord("t") else items), offset
    if tag == ord("d"):
        count, offset = _unpack_varint(data, offset)
        mapping = {}
        for _ in range(count):
            key, offset = unpack_value(data, offset, allow_pickle=allow_pickle)
            value, offset = unpack_value(data, offset, allow_pickle=allow_pickle)
            mapping[key] = value
        return mapping, offset
    raise ValueError(f"unknown value tag {tag!r}")


def encode_obj(obj, *, allow_pickle: bool = True) -> bytes:
    """One value as a standalone byte string (the WAL/snapshot payload codec)."""
    out = bytearray()
    pack_value(obj, out, allow_pickle=allow_pickle)
    return bytes(out)


def decode_obj(data: bytes, *, allow_pickle: bool = True):
    """Inverse of :func:`encode_obj`; rejects trailing garbage."""
    value, offset = unpack_value(data, 0, allow_pickle=allow_pickle)
    if offset != len(data):
        raise ValueError(f"{len(data) - offset} trailing bytes after value")
    return value


class _MembershipUnion:
    """``in``-only union of two containers (an overlay's local + base view)."""

    __slots__ = ("_local", "_base")

    def __init__(self, local, base):
        self._local = local
        self._base = base

    def __contains__(self, values) -> bool:
        return values in self._local or values in self._base


def _group_facts(facts: Iterable) -> Dict[str, Set[Tuple]]:
    """Group a mixed fact iterable (Atoms or ``(predicate, values)`` pairs) per predicate."""
    grouped: Dict[str, Set[Tuple]] = {}
    for fact in facts:
        if isinstance(fact, Atom):
            grouped.setdefault(fact.predicate, set()).add(fact.as_fact_tuple())
        else:
            predicate, values = fact
            grouped.setdefault(predicate, set()).add(tuple(values))
    return grouped


#: Storage layouts a :class:`Database` can advertise.  ``tuple`` is the
#: classic dict-of-sets layout; ``columnar`` additionally maintains an
#: interned columnar mirror (:mod:`repro.datalog.columnar`) and signals
#: the bottom-up engines to evaluate through the batch kernels.  The
#: tuple relations stay the source of truth in both layouts, so every
#: existing contract — snapshots, indexes, ``probe()``,
#: ``relation_view()``, overlays — holds unchanged.
LAYOUTS = ("tuple", "columnar")


class Database:
    """A mutable finite structure: predicate name -> set of tuples."""

    def __init__(
        self,
        relations: Optional[Mapping[str, Iterable[Tuple]]] = None,
        *,
        layout: str = "tuple",
    ):
        if layout not in LAYOUTS:
            raise ValueError(f"unknown layout {layout!r}; expected one of {LAYOUTS}")
        self._relations: Dict[str, Set[Tuple]] = {}
        # predicate -> cached frozenset snapshot (dropped on mutation)
        self._snapshots: Dict[str, FrozenSet[Tuple]] = {}
        # predicate -> position -> value -> list of tuples (maintained on add)
        self._indexes: Dict[str, Dict[int, Dict[object, List[Tuple]]]] = {}
        # bumped on every mutation; lets caches (e.g. QuerySession results)
        # detect that the data changed underneath them
        self._version = 0
        self._layout = layout
        # lazily built columnar mirror (repro.datalog.columnar.ColumnarStore)
        self._columnar = None
        if relations:
            for name, tuples in relations.items():
                self._relations[name] = {tuple(t) for t in tuples}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_facts(cls, facts: Iterable[Atom]) -> "Database":
        """Build a database from ground atoms."""
        database = cls()
        database.add_facts(facts)
        return database

    @classmethod
    def adopt(cls, relations: Dict[str, Set[Tuple]]) -> "Database":
        """Wrap already-grouped relation sets *without copying them*.

        The caller cedes ownership: the sets (and the mapping) become the
        database's internal state and must not be mutated afterwards.  The
        semi-naive engines use this to turn a round's per-predicate delta
        buckets into a probe-able database with zero re-tupling.
        """
        database = cls()
        database._relations = relations
        return database

    def copy(self) -> "Database":
        """Return a deep copy that keeps the acceleration structures warm.

        The snapshot cache and hash indexes come along (index buckets are
        copied so later mutations of either side stay independent) instead
        of being rebuilt lazily from scratch: a bottom-up engine calls
        ``copy()`` once per evaluation to obtain its working set and then
        immediately probes the same columns the EDB was already indexed on,
        so rebuilding would repay the whole indexing cost on every run.

        Concurrency: lock-free readers (:meth:`probe` / :meth:`relation`,
        e.g. engines reading through a prepared-query overlay while the
        service's writer copies) lazily *insert* missing entries into
        ``_indexes``/``_snapshots``, so each dict level is pinned with
        ``list()``/``dict()`` — single C-level calls, atomic under the GIL —
        before Python-level iteration.  An entry a reader adds mid-copy is
        simply absent from the clone and rebuilt there lazily.
        """
        clone = Database(layout=self._layout)
        clone._relations = {name: set(tuples) for name, tuples in list(self._relations.items())}
        if self._columnar is not None:
            # Share the intern table so codes stay stable across copies
            # (append-only, so the clone can never reassign them); the
            # clone re-encodes relations lazily on first columnar use.
            clone._columnar = self._columnar.fork(clone)
        # Carry the mutation counter forward: a copy that restarted at 0
        # would make version-derived observables (e.g. the service's
        # ``database_version`` statistic, which reads the *current* snapshot
        # after a copy-and-swap write) jump backwards.  Version-keyed caches
        # are keyed by object identity as well, so inheriting the counter is
        # safe.
        clone._version = self._version
        clone._snapshots = dict(self._snapshots)
        clone._indexes = {
            predicate: {
                position: {value: list(bucket) for value, bucket in index.items()}
                for position, index in list(positions.items())
            }
            for predicate, positions in list(self._indexes.items())
        }
        return clone

    def overlay(self) -> "OverlayDatabase":
        """An O(1) copy-on-write fork: reads fall through, writes stay local.

        The prepared-query execution path uses overlays as per-execution
        working sets so that running a query does not pay an O(data) copy
        of the EDB (see :mod:`repro.datalog.prepared`).  The base database
        must not be mutated while the overlay is in use.
        """
        return OverlayDatabase(self)

    # ------------------------------------------------------------------
    # Layout / columnar mirror
    # ------------------------------------------------------------------
    @property
    def layout(self) -> str:
        """The storage layout this database advertises (``tuple``/``columnar``)."""
        return self._layout

    def with_layout(self, layout: str) -> "Database":
        """A deep copy of this database under another layout."""
        if layout not in LAYOUTS:
            raise ValueError(f"unknown layout {layout!r}; expected one of {LAYOUTS}")
        clone = self.copy()
        clone._layout = layout
        if layout == "tuple":
            clone._columnar = None
        return clone

    def columnar_store(self):
        """The interned columnar mirror (built lazily, maintained on mutation)."""
        if self._columnar is None:
            from repro.datalog.columnar.store import ColumnarStore

            self._columnar = ColumnarStore(self)
        return self._columnar

    def columnar_parts(self, predicate: str):
        """Columnar arity groups backing *predicate* (base-to-local order)."""
        return self.columnar_store().parts(predicate)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _note_added(self, predicate: str, values: Tuple) -> None:
        """Maintain the snapshot cache and live indexes after adding a tuple."""
        self._version += 1
        self._snapshots.pop(predicate, None)
        indexes = self._indexes.get(predicate)
        if indexes:
            for position, index in indexes.items():
                if position < len(values):
                    index.setdefault(values[position], []).append(values)
        if self._columnar is not None:
            self._columnar.note_added(predicate, (values,))

    def _note_added_bulk(self, predicate: str, fresh: Iterable[Tuple]) -> None:
        """Snapshot/index maintenance for a grouped insert (no version bump).

        Every bulk mutation path (:meth:`add_facts`, :meth:`update`, the
        overlay's grouped insert) funnels through here so the maintenance
        rules live in one place; callers bump :attr:`version` themselves,
        at most once per call.
        """
        self._snapshots.pop(predicate, None)
        indexes = self._indexes.get(predicate)
        if indexes:
            for position, index in indexes.items():
                for values in fresh:
                    if position < len(values):
                        index.setdefault(values[position], []).append(values)
        if self._columnar is not None:
            self._columnar.note_added(predicate, fresh)

    def add_fact(self, predicate: str, values: Tuple) -> bool:
        """Add a tuple to a relation; return ``True`` if it was new."""
        relation = self._relations.setdefault(predicate, set())
        values = tuple(values)
        if values in relation:
            return False
        relation.add(values)
        self._note_added(predicate, values)
        return True

    def add_edge(self, predicate: str, source, target) -> bool:
        """Convenience for binary relations (labeled graph edges)."""
        return self.add_fact(predicate, (source, target))

    def add_facts(self, facts: Iterable) -> int:
        """Bulk insert; returns the number of facts that were actually new.

        *facts* may mix ground :class:`~repro.datalog.atoms.Atom` objects
        and ``(predicate, values)`` pairs.  Unlike a loop of
        :meth:`add_fact` calls, the snapshots and live indexes of each
        touched relation are updated in one pass and :attr:`version` is
        bumped exactly once, so a 10k-fact load costs one invalidation
        instead of 10k.
        """
        return self._add_grouped(_group_facts(facts))

    def add_relations(self, grouped: Mapping[str, Set[Tuple]]) -> int:
        """Bulk insert of already-grouped per-predicate tuple sets.

        The engines' round commits hold exactly this shape (predicate ->
        fresh head tuples), so this skips :meth:`add_facts`' flatten and
        regroup.  Returns the number of facts that were actually new.
        """
        return self._add_grouped(grouped)

    def update(self, other: "Database") -> None:
        """Add all facts of *other* to this database.

        Grouped per predicate like :meth:`add_facts`: snapshots and live
        indexes of each touched relation are maintained in one pass and
        :attr:`version` is bumped at most once per call.  The semi-naive
        engines run ``working.update(delta)`` every fixpoint round, so a
        per-fact version bump here would invalidate downstream caches once
        per derived fact instead of once per round.
        """
        self._add_grouped(other._relations)

    def _add_grouped(self, grouped: Mapping[str, Set[Tuple]]) -> int:
        """Shared grouped insert; input sets are diffed, never retained.

        Empty groups are skipped outright — an engine's round commit passes
        a bucket per head predicate whether or not anything fired, and a
        ``setdefault`` would leave phantom empty relations behind.
        """
        added = 0
        for predicate, tuples in grouped.items():
            if not tuples:
                continue
            relation = self._relations.setdefault(predicate, set())
            fresh = tuples - relation
            if not fresh:
                continue
            relation.update(fresh)
            added += len(fresh)
            self._note_added_bulk(predicate, fresh)
        if added:
            self._version += 1
        return added

    def _note_removed_bulk(self, predicate: str, gone: Iterable[Tuple]) -> None:
        """Snapshot/index maintenance for a grouped removal (no version bump).

        The mirror image of :meth:`_note_added_bulk`: the snapshot is dropped
        and every live index bucket containing a removed tuple is pruned (a
        tuple appears at most once per bucket because every insert path diffs
        against the relation first).  Emptied buckets are deleted so probes
        for a fully retracted value fall back to the shared empty result.
        """
        self._snapshots.pop(predicate, None)
        indexes = self._indexes.get(predicate)
        if indexes:
            for position, index in indexes.items():
                for values in gone:
                    if position < len(values):
                        bucket = index.get(values[position])
                        if bucket is not None:
                            try:
                                bucket.remove(values)
                            except ValueError:
                                pass
                            if not bucket:
                                del index[values[position]]
        if self._columnar is not None:
            # Columnar groups are append-only; a retraction drops the
            # predicate's encoding and the next columnar use re-encodes.
            self._columnar.invalidate(predicate)

    def remove_fact(self, predicate: str, values: Tuple) -> bool:
        """Remove a tuple from a relation; return ``True`` if it was present."""
        relation = self._relations.get(predicate)
        values = tuple(values)
        if relation is None or values not in relation:
            return False
        relation.remove(values)
        if not relation:
            del self._relations[predicate]
        self._version += 1
        self._note_removed_bulk(predicate, (values,))
        return True

    def retract(self, predicate: str, values: Tuple) -> bool:
        """Alias for :meth:`remove_fact` (the IVM layer's vocabulary)."""
        return self.remove_fact(predicate, values)

    def remove_facts(self, facts: Iterable) -> int:
        """Bulk removal; returns the number of facts that were actually present.

        The mirror of :meth:`add_facts`: *facts* may mix ground
        :class:`~repro.datalog.atoms.Atom` objects and ``(predicate, values)``
        pairs, the snapshots and live indexes of each touched relation are
        maintained in one pass, and :attr:`version` is bumped exactly once.
        Relations left empty are dropped entirely (no phantom empty entries).
        """
        return self._remove_grouped(_group_facts(facts))

    def _remove_grouped(self, grouped: Mapping[str, Set[Tuple]]) -> int:
        """Shared grouped removal; input sets are intersected, never retained."""
        removed = 0
        for predicate, tuples in grouped.items():
            if not tuples:
                continue
            relation = self._relations.get(predicate)
            if not relation:
                continue
            gone = tuples & relation
            if not gone:
                continue
            relation -= gone
            if not relation:
                del self._relations[predicate]
            removed += len(gone)
            self._note_removed_bulk(predicate, gone)
        if removed:
            self._version += 1
        return removed

    def remove_relation(self, predicate: str) -> None:
        """Drop a relation entirely (no error if absent)."""
        self._version += 1
        self._relations.pop(predicate, None)
        self._snapshots.pop(predicate, None)
        self._indexes.pop(predicate, None)
        if self._columnar is not None:
            self._columnar.invalidate(predicate)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotone mutation counter; unequal values mean the data changed."""
        return self._version

    def relation(self, predicate: str) -> FrozenSet[Tuple]:
        """The set of tuples of a relation (empty if the relation is absent).

        The returned ``frozenset`` is a cached, read-only snapshot: it is
        reused across calls until the relation next mutates, so hot-path
        callers may probe it repeatedly without paying a copy per call.
        """
        snapshot = self._snapshots.get(predicate)
        if snapshot is None:
            snapshot = frozenset(self._relations.get(predicate, _EMPTY))
            self._snapshots[predicate] = snapshot
        return snapshot

    def relation_view(self, predicate: str):
        """A live, membership-only view of a relation (no snapshot copy).

        Unlike :meth:`relation` this never materialises a frozenset — it
        returns the relation's live storage (or an empty set), so a caller
        that only needs ``values in view`` checks pays O(1) regardless of
        how recently the relation mutated.  The fixpoint engines dedup each
        round's firings against this view.  Contract: read-only, and not
        valid across mutations — re-fetch after any write.
        """
        return self._relations.get(predicate, _EMPTY_SET)

    def probe(self, predicate: str, position: int, value) -> Sequence[Tuple]:
        """Tuples of *predicate* whose argument at *position* equals *value*.

        Served from a persistent hash index keyed by ``(position, value)``.
        The index for a position is built on first probe and thereafter
        maintained incrementally by :meth:`add_fact` / :meth:`update`.

        The result is a read-only *view* into the index, not a copy (copying
        on every probe would defeat the hot path): it must not be mutated,
        and whether it reflects tuples added later is unspecified (non-empty
        buckets do; the shared empty result does not).  Callers holding a
        result across mutations — no engine does — should materialise it
        first (``tuple(db.probe(...))``).
        """
        indexes = self._indexes.setdefault(predicate, {})
        index = indexes.get(position)
        if index is None:
            index = {}
            for values in self._relations.get(predicate, _EMPTY):
                if position < len(values):
                    index.setdefault(values[position], []).append(values)
            indexes[position] = index
        return index.get(value, _EMPTY)

    def relations(self) -> Dict[str, FrozenSet[Tuple]]:
        """All relations as an immutable snapshot."""
        return {name: self.relation(name) for name in self._relations}

    def cardinality(self, predicate: str) -> int:
        """Number of tuples currently in a relation (0 if absent).

        O(1); this is the statistic the join planner's smallest-first
        heuristic reads (:mod:`repro.datalog.engine.planner`).
        """
        relation = self._relations.get(predicate)
        return len(relation) if relation is not None else 0

    def predicates(self) -> FrozenSet[str]:
        """Names of the non-empty relations."""
        return frozenset(name for name, tuples in self._relations.items() if tuples)

    def contains(self, predicate: str, values: Tuple) -> bool:
        """True if the given tuple belongs to the relation."""
        return tuple(values) in self._relations.get(predicate, ())

    def facts(self) -> Iterator[Atom]:
        """Iterate over all facts as ground atoms."""
        for name in sorted(self._relations):
            for values in sorted(self._relations[name], key=repr):
                yield ground_atom(name, values)

    def active_domain(self) -> FrozenSet:
        """All domain elements occurring in some tuple."""
        domain = set()
        for tuples in self._relations.values():
            for values in tuples:
                domain.update(values)
        return frozenset(domain)

    def fact_count(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(tuples) for tuples in self._relations.values())

    # ------------------------------------------------------------------
    # Serialization (snapshots)
    # ------------------------------------------------------------------
    _SERIAL_MAGIC = b"RPDB1"

    def to_bytes(self, *, allow_pickle: bool = True) -> bytes:
        """Serialize all relations into a compact, self-contained byte string.

        The format is the value codec above wrapped in a magic header:
        relations become a ``{name: (tuple, ...)}`` mapping with tuples in a
        deterministic order, so identical databases always serialize to
        identical bytes (snapshot checksums stay comparable).  The server's
        snapshot layer is the intended consumer — it passes
        ``allow_pickle=False`` so persisted bytes never embed pickles;
        ``from_bytes`` restores an equal database with cold acceleration
        structures.
        """
        out = bytearray(self._SERIAL_MAGIC)
        payload: Dict[str, Tuple] = {
            name: tuple(sorted(tuples, key=repr))
            for name, tuples in sorted(self._relations.items())
            if tuples
        }
        pack_value(payload, out, allow_pickle=allow_pickle)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes, *, allow_pickle: bool = True) -> "Database":
        """Inverse of :meth:`to_bytes`; raises ``ValueError`` on corrupt input."""
        if not data.startswith(cls._SERIAL_MAGIC):
            raise ValueError("not a serialized Database (bad magic header)")
        payload, offset = unpack_value(
            data, len(cls._SERIAL_MAGIC), allow_pickle=allow_pickle
        )
        if offset != len(data):
            raise ValueError("trailing bytes after serialized Database")
        if not isinstance(payload, dict):
            raise ValueError("corrupt serialized Database payload")
        database = cls()
        for name, tuples in payload.items():
            database._relations[name] = {tuple(values) for values in tuples}
        return database

    def restrict(self, predicates: Iterable[str]) -> "Database":
        """Return a database containing only the named relations."""
        names = set(predicates)
        return Database(
            {name: set(tuples) for name, tuples in self._relations.items() if name in names}
        )

    def rename(self, mapping: Mapping[str, str]) -> "Database":
        """Return a database with relations renamed according to *mapping*.

        Whole relations are moved per predicate (two source relations may
        merge under one target name) rather than re-added fact by fact.
        """
        renamed = Database()
        for name, tuples in self._relations.items():
            new_name = mapping.get(name, name)
            target = renamed._relations.get(new_name)
            if target is None:
                renamed._relations[new_name] = set(tuples)
            else:
                target.update(tuples)
        return renamed

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        mine = {name: tuples for name, tuples in self._relations.items() if tuples}
        theirs = {name: tuples for name, tuples in other._relations.items() if tuples}
        return mine == theirs

    def __hash__(self):  # pragma: no cover - databases are mutable
        raise TypeError("Database objects are mutable and unhashable")

    def __contains__(self, fact: Atom) -> bool:
        return self.contains(fact.predicate, fact.as_fact_tuple())

    def __len__(self) -> int:
        return self.fact_count()

    def __repr__(self) -> str:
        counts = ", ".join(
            f"{name}:{len(tuples)}" for name, tuples in sorted(self._relations.items())
        )
        return f"Database({counts})"


class OverlayDatabase(Database):
    """A copy-on-write view over a base database.

    Reads see the union of the base and the overlay's local facts; writes
    only ever touch the local side, and a fact already present in the base
    is never duplicated locally (so cardinalities stay additive).  Creating
    an overlay is O(1) — no relation is copied — which is what lets a
    prepared query execute thousands of times per second over a large EDB:
    each execution's working set is a fresh overlay instead of a deep copy.

    Contract: the base database must not be mutated while the overlay is in
    use (the prepared execution path guarantees this by keying its caches
    on :attr:`Database.version` and rebuilding on change).  Engines only
    ever add facts to their working set, so the overlay does not support
    removing base relations.
    """

    def __init__(self, base: Database):
        super().__init__()
        self._base = base

    @property
    def base(self) -> Database:
        """The database this overlay reads through to."""
        return self._base

    @property
    def layout(self) -> str:
        """Overlays inherit the base's layout (the engines key off this)."""
        return self._base.layout

    def columnar_store(self):
        """The overlay's local mirror, interning through the base's table.

        Sharing the base's :class:`~repro.datalog.columnar.InternTable`
        is what lets a prepared query's seed facts intern through the
        overlay: their codes land in the same space as the base EDB's, so
        batch joins across base and local parts compare plain ints.
        """
        if self._columnar is None:
            from repro.datalog.columnar.store import ColumnarStore

            self._columnar = ColumnarStore(self, table=self._base.columnar_store().table)
        return self._columnar

    def columnar_parts(self, predicate: str):
        base_parts = self._base.columnar_parts(predicate)
        if not self._relations.get(predicate):
            return base_parts
        return base_parts + self.columnar_store().parts(predicate)

    # ------------------------------------------------------------------
    # Mutation (local side only)
    # ------------------------------------------------------------------
    def add_fact(self, predicate: str, values: Tuple) -> bool:
        values = tuple(values)
        if self._base.contains(predicate, values):
            return False
        return super().add_fact(predicate, values)

    def add_facts(self, facts: Iterable) -> int:
        return self._add_grouped(_group_facts(facts))

    def update(self, other: Database) -> None:
        """Add all facts of *other* to the local side, grouped per predicate.

        Like :meth:`Database.update` this bumps :attr:`version` at most once
        per call — the engines run ``working.update(delta)`` every fixpoint
        round over prepared-query overlays, where a per-fact bump would
        invalidate snapshots once per derived fact.
        """
        self._add_grouped(other._relations)

    def _add_grouped(self, grouped: Mapping[str, Set[Tuple]]) -> int:
        """Grouped insert dropping base duplicates; input sets never retained.

        Like the base implementation, empty groups are skipped so no
        phantom empty local relations appear.
        """
        added = 0
        for predicate, tuples in grouped.items():
            if not tuples:
                continue
            local = self._relations.get(predicate)
            fresh = (tuples - local) if local else tuples
            if fresh and self._base.cardinality(predicate):
                fresh = {
                    values
                    for values in fresh
                    if not self._base.contains(predicate, values)
                }
            if not fresh:
                # Everything was a base (or local) duplicate: leave no
                # phantom empty local relation behind.
                continue
            if local is None:
                local = self._relations[predicate] = set()
            local.update(fresh)
            added += len(fresh)
            self._note_added_bulk(predicate, fresh)
        if added:
            self._version += 1
        return added

    def remove_relation(self, predicate: str) -> None:
        raise TypeError("an OverlayDatabase cannot remove relations of its base")

    def remove_fact(self, predicate: str, values: Tuple) -> bool:
        values = tuple(values)
        if self._base.contains(predicate, values):
            raise TypeError(
                f"an OverlayDatabase cannot retract {predicate}{values!r}: the "
                "fact lives in the base database (materialize() the overlay, "
                "or retract from the base itself)"
            )
        return super().remove_fact(predicate, values)

    def _remove_grouped(self, grouped: Mapping[str, Set[Tuple]]) -> int:
        for predicate, tuples in grouped.items():
            for values in tuples:
                if self._base.contains(predicate, values):
                    raise TypeError(
                        f"an OverlayDatabase cannot retract {predicate}{values!r}: "
                        "the fact lives in the base database (materialize() the "
                        "overlay, or retract from the base itself)"
                    )
        return super()._remove_grouped(grouped)

    # ------------------------------------------------------------------
    # Access (union of base and local)
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        return self._base.version + self._version

    def relation(self, predicate: str) -> FrozenSet[Tuple]:
        local = self._relations.get(predicate)
        if not local:
            return self._base.relation(predicate)
        snapshot = self._snapshots.get(predicate)
        if snapshot is None:
            base = self._base.relation(predicate)
            snapshot = (base | local) if base else frozenset(local)
            self._snapshots[predicate] = snapshot
        return snapshot

    def relation_view(self, predicate: str):
        local = self._relations.get(predicate)
        if not local:
            return self._base.relation_view(predicate)
        if not self._base.cardinality(predicate):
            return local
        return _MembershipUnion(local, self._base.relation_view(predicate))

    def probe(self, predicate: str, position: int, value) -> Sequence[Tuple]:
        local = self._relations.get(predicate)
        if not local:
            return self._base.probe(predicate, position, value)
        mine = super().probe(predicate, position, value)
        if not self._base.cardinality(predicate):
            return mine
        theirs = self._base.probe(predicate, position, value)
        if not theirs:
            return mine
        if not mine:
            return theirs
        return tuple(theirs) + tuple(mine)

    def relations(self) -> Dict[str, FrozenSet[Tuple]]:
        names = set(self._relations) | set(self._base._relations)
        return {name: self.relation(name) for name in names}

    def cardinality(self, predicate: str) -> int:
        # Local facts are disjoint from the base by construction (add_fact
        # refuses duplicates), so the counts are additive.
        local = self._relations.get(predicate)
        return self._base.cardinality(predicate) + (len(local) if local else 0)

    def predicates(self) -> FrozenSet[str]:
        return self._base.predicates() | super().predicates()

    def contains(self, predicate: str, values: Tuple) -> bool:
        return super().contains(predicate, values) or self._base.contains(predicate, values)

    def facts(self) -> Iterator[Atom]:
        for name in sorted(set(self._relations) | set(self._base._relations)):
            for values in sorted(self.relation(name), key=repr):
                yield ground_atom(name, values)

    def active_domain(self) -> FrozenSet:
        return self._base.active_domain() | super().active_domain()

    def fact_count(self) -> int:
        return self._base.fact_count() + super().fact_count()

    def materialize(self) -> Database:
        """Flatten the overlay into an independent plain :class:`Database`."""
        return Database({name: set(tuples) for name, tuples in self.relations().items()})

    def restrict(self, predicates: Iterable[str]) -> Database:
        names = set(predicates)
        present = (set(self._relations) | set(self._base._relations)) & names
        return Database({name: set(self.relation(name)) for name in present})

    def rename(self, mapping: Mapping[str, str]) -> Database:
        return self.materialize().rename(mapping)

    def copy(self) -> Database:
        """A fresh fork of the base while unwritten; a deep copy afterwards.

        Engines call ``database.copy()`` once to obtain their working set;
        for a pristine overlay that is O(1), which is the whole point.
        """
        if not any(self._relations.values()):
            return OverlayDatabase(self._base)
        return self.materialize()

    def __eq__(self, other) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        flattened = other.materialize() if isinstance(other, OverlayDatabase) else other
        return self.materialize() == flattened

    def __hash__(self):  # pragma: no cover - databases are mutable
        raise TypeError("Database objects are mutable and unhashable")

    def __repr__(self) -> str:
        local = sum(len(tuples) for tuples in self._relations.values())
        return f"OverlayDatabase(base={self._base!r}, local_facts={local})"
